//! A minimal, deterministic, dependency-free stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The smtsim workspace must build and test **offline** (no crates.io
//! access), so the property suites link against this shim instead of
//! the real crate. It implements exactly the API subset those suites
//! use — `proptest!`, `prop_assert*`, `prop_assume!`, `prop_oneof!`,
//! integer/float range strategies, tuples, `prop_map`,
//! `collection::vec`, `sample::select` and `any::<T>()` — with three
//! deliberate simplifications:
//!
//! * **No shrinking.** A failing case reports the generated values via
//!   the ordinary `assert!` panic message.
//! * **Fixed deterministic seeding.** Every test function draws from a
//!   splitmix64 stream with a constant seed, so failures reproduce
//!   exactly and CI runs are stable.
//! * **Smaller default case count** (64 vs. proptest's 256); override
//!   per block with `ProptestConfig::with_cases`.
//!
//! Swap the workspace dev-dependency back to the real crate if network
//! access returns and shrinking is wanted; the suites compile against
//! either.

/// Per-block runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! The deterministic random source behind every strategy.

    /// splitmix64: tiny, fast, and plenty for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// The fixed-seed generator used by the `proptest!` macro.
        pub fn deterministic() -> Self {
            TestRng(0x9E37_79B9_7F4A_7C15)
        }

        /// Seeds an independent stream (used by nested generators).
        pub fn with_seed(seed: u64) -> Self {
            TestRng(seed)
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n = 0` yields 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform draw in `[0.0, 1.0)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies: the `Strategy` trait and the
    //! combinators the suites use.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of an associated type from the test RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A boxed generator alternative inside a [`Union`].
    type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<UnionArm<T>>,
    }

    impl<T> Union<T> {
        /// An empty union; populate with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds an alternative.
        pub fn or<S>(mut self, s: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
        {
            self.options.push(Box::new(move |rng| s.generate(rng)));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(
                !self.options.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            let i = rng.below(self.options.len() as u64) as usize;
            (self.options[i])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vectors of `element` with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty list");
        Select { items }
    }

    /// The strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the suites name.

    /// The `prop::` alias (`prop::sample::select`, …).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property-test functions: each listed `fn` runs its body
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                let _ = __case;
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                $body
            }
        }
    )*};
}

/// Like `assert!`, inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($tt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between strategy arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($arm))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::deterministic();
            crate::collection::vec((0u64..1000, any::<bool>()), 5..20).generate(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn select_and_oneof_cover_all_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let s = crate::sample::select(vec![1u8, 2, 3]);
        let u = prop_oneof![Just(10u8), Just(20u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3, 10, 20]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 0u64..50, v in prop::collection::vec(0u32..9, 0..6)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_ne!(x, 13);
            prop_assert_eq!(v.iter().filter(|&&e| e < 9).count(), v.len());
        }
    }
}
