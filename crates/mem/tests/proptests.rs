//! Property tests for the memory hierarchy: timing sanity, coalescing,
//! LRU containment and determinism under arbitrary access patterns.

use proptest::prelude::*;
use smtsim_mem::{Cache, CacheConfig, Hierarchy, MemConfig, Mshr};

fn arb_geometry() -> impl Strategy<Value = CacheConfig> {
    (0u32..4, 1usize..5, 0u32..3).prop_map(|(sets_log, assoc, line_log)| {
        let line = 32u64 << line_log;
        let sets = 4usize << sets_log;
        CacheConfig {
            size: line * sets as u64 * assoc as u64,
            assoc,
            line,
            hit_lat: 1,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fill_then_peek_always_hits(cfg in arb_geometry(), addrs in proptest::collection::vec(0u64..1 << 24, 1..64)) {
        let mut c = Cache::new(cfg);
        // The most recently filled line is always resident (LRU can
        // never evict the line just inserted).
        for &a in &addrs {
            c.fill(a);
            prop_assert!(c.peek(a), "just-filled {a:#x} must be resident");
        }
    }

    #[test]
    fn lru_set_never_overflows(cfg in arb_geometry(), addrs in proptest::collection::vec(0u64..1 << 20, 1..200)) {
        let mut c = Cache::new(cfg);
        let mut resident: Vec<u64> = Vec::new();
        for &a in &addrs {
            if c.fill(a).is_none() {
                // No eviction: either line already present or a free way.
            }
            let la = c.line_addr(a);
            if !resident.contains(&la) {
                resident.push(la);
            }
            resident.retain(|&l| c.peek(l));
            // Residency per set can never exceed associativity.
            let mut per_set = std::collections::HashMap::new();
            for &l in &resident {
                *per_set.entry((l / cfg.line) % (cfg.num_sets() as u64)).or_insert(0usize) += 1;
            }
            for (_, n) in per_set {
                prop_assert!(n <= cfg.assoc);
            }
        }
    }

    #[test]
    fn load_completion_is_after_request(addrs in proptest::collection::vec(0u64..1 << 26, 1..100)) {
        let mut h = Hierarchy::icpp08();
        let mut now = 0u64;
        for &a in &addrs {
            let r = h.load(a, now);
            prop_assert!(r.complete_at > now, "completion must be in the future");
            prop_assert!(r.l2_miss_detected_at <= r.complete_at || !r.l2_miss);
            if r.l2_miss {
                prop_assert!(r.l1_miss, "an L2 miss implies an L1 miss");
            }
            now += 3;
        }
    }

    #[test]
    fn same_line_requests_coalesce(base in 0u64..1 << 26, offsets in proptest::collection::vec(0u64..128, 2..8)) {
        let mut h = Hierarchy::icpp08();
        let line = base & !127;
        let first = h.load(line, 0);
        prop_assume!(first.l2_miss);
        for (i, &o) in offsets.iter().enumerate() {
            let r = h.load(line + o, 2 + i as u64);
            // Outstanding-line accesses complete exactly with the fill.
            prop_assert_eq!(r.complete_at, first.complete_at);
        }
    }

    #[test]
    fn hierarchy_is_deterministic(addrs in proptest::collection::vec(0u64..1 << 24, 1..100)) {
        let run = |addrs: &[u64]| {
            let mut h = Hierarchy::icpp08();
            addrs
                .iter()
                .enumerate()
                .map(|(i, &a)| h.load(a, i as u64 * 2).complete_at)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }

    #[test]
    fn mshr_occupancy_never_exceeds_capacity(cap in 1usize..16, reqs in proptest::collection::vec((0u64..1 << 16, 1u64..2000), 1..64)) {
        let mut m = Mshr::new(cap);
        let mut now = 0;
        for (line, dur) in reqs {
            let line = line << 7;
            if m.lookup(line, now).is_none() {
                let start = m.earliest_slot(now);
                m.insert(line, start + dur, start);
                prop_assert!(m.occupancy(start) <= cap);
            }
            now += 7;
        }
    }

    #[test]
    fn warm_data_makes_loads_hit(addrs in proptest::collection::vec(0u64..1 << 22, 1..64)) {
        let mut h = Hierarchy::icpp08();
        for &a in &addrs {
            h.warm_data(a, false);
        }
        // The most recently warmed line must hit (earlier ones may have
        // been evicted by conflicts).
        let last = *addrs.last().unwrap();
        let r = h.load(last, 0);
        prop_assert!(!r.l1_miss, "warmed {last:#x} must hit");
    }

    #[test]
    fn transfer_cycles_scale_with_line(line_log in 2u32..10) {
        let c = MemConfig::icpp08();
        let line = 1u64 << line_log;
        prop_assert_eq!(c.transfer_cycles(line), line.div_ceil(8) * 2);
    }
}
