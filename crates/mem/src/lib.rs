//! # smtsim-mem
//!
//! Cache hierarchy, MSHRs and memory-bus timing for the two-level-ROB
//! reproduction (Loew & Ponomarev, ICPP 2008). Implements the Table 1
//! memory system: split 1-cycle L1 caches, a 10-cycle unified 2 MB L2,
//! and a 64-bit memory bus with 500-cycle first-chunk / 2-cycle
//! interchunk timing.
//!
//! The model is query-driven (no event queue): the core asks for an
//! access at a given cycle and receives the completion time, with MSHR
//! coalescing, MSHR capacity limits, and bus serialization of line
//! transfers all folded into the answer. See [`Hierarchy`].

pub mod cache;
pub mod hierarchy;
pub mod mshr;

pub use cache::{Cache, CacheConfig, CacheStats, Evicted};
pub use hierarchy::{AccessResult, Hierarchy, HierarchyStats, MemConfig};
pub use mshr::Mshr;

/// Simulation time in core clock cycles.
pub type Cycle = u64;
