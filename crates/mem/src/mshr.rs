//! Miss-status holding registers: track outstanding line fills so that
//! misses to the same line coalesce and memory-level parallelism is
//! bounded by the MSHR capacity.

use crate::Cycle;

/// One outstanding fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    line_addr: u64,
    fill_done: Cycle,
}

/// A fixed-capacity set of outstanding line fills.
///
/// Entries whose fill time has passed are expired lazily; the structure
/// therefore needs no tick. Capacity limits the number of *concurrent*
/// fills — the knob that bounds exploitable MLP.
#[derive(Clone, Debug)]
pub struct Mshr {
    entries: Vec<Entry>,
    capacity: usize,
    /// Peak simultaneous occupancy observed (for statistics).
    peak: usize,
    /// Total primary misses registered.
    pub primary: u64,
    /// Total secondary (coalesced) misses.
    pub secondary: u64,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Mshr {
            entries: Vec::with_capacity(capacity),
            capacity,
            peak: 0,
            primary: 0,
            secondary: 0,
        }
    }

    /// Drops entries that completed at or before `now`.
    fn expire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.fill_done > now);
    }

    /// If `line_addr` is already being fetched at `now`, returns its
    /// completion time (a secondary miss).
    pub fn lookup(&mut self, line_addr: u64, now: Cycle) -> Option<Cycle> {
        self.expire(now);
        let hit = self
            .entries
            .iter()
            .find(|e| e.line_addr == line_addr)
            .map(|e| e.fill_done);
        if hit.is_some() {
            self.secondary += 1;
        }
        hit
    }

    /// Earliest time at or after `now` when a new entry can be
    /// allocated (immediately if below capacity, otherwise when the
    /// earliest outstanding fill retires).
    pub fn earliest_slot(&mut self, now: Cycle) -> Cycle {
        self.expire(now);
        if self.entries.len() < self.capacity {
            now
        } else {
            self.entries
                .iter()
                .map(|e| e.fill_done)
                .min()
                .expect("full implies non-empty")
        }
    }

    /// Registers a new outstanding fill completing at `fill_done`.
    ///
    /// # Panics
    /// Panics (debug) if called while at capacity; callers must use
    /// [`Mshr::earliest_slot`] to find an admissible start time first.
    pub fn insert(&mut self, line_addr: u64, fill_done: Cycle, now: Cycle) {
        self.expire(now);
        debug_assert!(self.entries.len() < self.capacity, "MSHR overflow");
        self.entries.push(Entry {
            line_addr,
            fill_done,
        });
        self.primary += 1;
        self.peak = self.peak.max(self.entries.len());
    }

    /// Number of fills outstanding at `now`.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.entries.len()
    }

    /// Peak simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_same_line() {
        let mut m = Mshr::new(4);
        m.insert(0x100, 530, 0);
        assert_eq!(m.lookup(0x100, 10), Some(530));
        assert_eq!(m.lookup(0x200, 10), None);
        assert_eq!(m.primary, 1);
        assert_eq!(m.secondary, 1);
    }

    #[test]
    fn entries_expire() {
        let mut m = Mshr::new(2);
        m.insert(0x100, 100, 0);
        assert_eq!(m.lookup(0x100, 99), Some(100));
        assert_eq!(m.lookup(0x100, 100), None, "expired at fill time");
    }

    #[test]
    fn capacity_limits_and_frees() {
        let mut m = Mshr::new(2);
        m.insert(0x100, 500, 0);
        m.insert(0x200, 600, 0);
        assert_eq!(m.earliest_slot(10), 500, "must wait for earliest fill");
        assert_eq!(m.earliest_slot(500), 500, "slot free once expired");
        m.insert(0x300, 900, 500);
        assert_eq!(m.occupancy(500), 2);
    }

    #[test]
    fn occupancy_and_peak() {
        let mut m = Mshr::new(8);
        m.insert(0x0, 100, 0);
        m.insert(0x80, 120, 0);
        m.insert(0x100, 140, 0);
        assert_eq!(m.occupancy(0), 3);
        assert_eq!(m.occupancy(130), 1);
        assert_eq!(m.peak(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0);
    }
}
