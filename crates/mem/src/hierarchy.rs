//! The full memory hierarchy of Table 1: split L1 I/D caches, a unified
//! L2, MSHRs, and a chunked memory bus.
//!
//! The model is *query-driven*: the pipeline calls
//! [`Hierarchy::load`] / [`Hierarchy::ifetch`] / [`Hierarchy::store_commit`]
//! with the current cycle and receives completion times. Lines are
//! installed eagerly while an MSHR entry marks them unavailable until
//! their fill completes, which preserves timing correctness without an
//! event queue. Bus contention serializes the data-transfer portion of
//! each fill; the DRAM-access portion (`first_chunk`) overlaps freely,
//! which is what lets multiple outstanding misses overlap — the
//! memory-level parallelism the paper's second-level ROB exploits.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::Mshr;
use crate::Cycle;
use smtsim_obs::TraceEvent;

/// Main-memory and bus timing (Table 1: "64 bit wide, 500 cycle first
/// chunk access, 2 cycle interchunk access").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Cycles from request to the first chunk arriving.
    pub first_chunk: Cycle,
    /// Cycles between subsequent chunks.
    pub inter_chunk: Cycle,
    /// Bus width in bytes per chunk.
    pub bus_bytes: u64,
    /// Number of MSHR entries (outstanding L2 miss lines).
    pub mshr_entries: usize,
    /// Model writeback bus traffic for dirty evictions.
    pub model_writebacks: bool,
}

impl MemConfig {
    /// The paper's Table 1 configuration. The MSHR count is not given in
    /// the paper; 16 outstanding misses is the M-Sim-era default that
    /// comfortably exceeds what a 32-entry ROB can generate while
    /// bounding what a 416-entry window can.
    pub fn icpp08() -> Self {
        MemConfig {
            first_chunk: 500,
            inter_chunk: 2,
            bus_bytes: 8,
            mshr_entries: 16,
            model_writebacks: true,
        }
    }

    /// Bus occupancy of transferring one line of `line_bytes`.
    pub fn transfer_cycles(&self, line_bytes: u64) -> Cycle {
        line_bytes.div_ceil(self.bus_bytes) * self.inter_chunk
    }
}

/// Result of a load or instruction-fetch access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the data is available to dependents.
    pub complete_at: Cycle,
    /// The access missed in L1.
    pub l1_miss: bool,
    /// The access missed in the L2 (the paper's "last level cache
    /// miss" — the trigger for second-level ROB allocation).
    pub l2_miss: bool,
    /// Cycle at which the L2 miss is *detected* (known to the core);
    /// only meaningful when `l2_miss`.
    pub l2_miss_detected_at: Cycle,
}

/// Aggregate hierarchy statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    /// Demand loads issued.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Instruction fetch accesses.
    pub ifetches: u64,
    /// Loads that missed the L2.
    pub load_l2_misses: u64,
    /// Total load-to-use latency accumulated (for averages).
    pub total_load_latency: u64,
    /// Cycles the memory bus spent transferring data.
    pub bus_busy_cycles: u64,
}

impl HierarchyStats {
    /// Average load latency in cycles.
    pub fn avg_load_latency(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.total_load_latency as f64 / self.loads as f64
        }
    }
}

/// The Table 1 memory hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    mshr: Mshr,
    mem: MemConfig,
    /// Earliest cycle the bus can start a new transfer.
    bus_free: Cycle,
    stats: HierarchyStats,
    /// When true, fills append [`TraceEvent`]s to `trace` (drained by
    /// the simulator once per cycle). Off by default: the tracing
    /// branch is a single predictable-false test on the fill path.
    tracing: bool,
    trace: Vec<(Cycle, TraceEvent)>,
}

impl Hierarchy {
    /// Builds a hierarchy from cache geometries and memory timing.
    pub fn new(l1i: CacheConfig, l1d: CacheConfig, l2: CacheConfig, mem: MemConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(l1i),
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            mshr: Mshr::new(mem.mshr_entries),
            mem,
            bus_free: 0,
            stats: HierarchyStats::default(),
            tracing: false,
            trace: Vec::new(),
        }
    }

    /// Enables or disables fill tracing (see [`Hierarchy::drain_trace`]).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
        if !enabled {
            self.trace.clear();
        }
    }

    /// Drains the buffered trace events accumulated since the last
    /// drain (always empty when tracing is disabled).
    pub fn drain_trace(&mut self) -> Vec<(Cycle, TraceEvent)> {
        std::mem::take(&mut self.trace)
    }

    /// The paper's full Table 1 hierarchy.
    pub fn icpp08() -> Self {
        Hierarchy::new(
            CacheConfig::l1i_icpp08(),
            CacheConfig::l1d_icpp08(),
            CacheConfig::l2_icpp08(),
            MemConfig::icpp08(),
        )
    }

    /// Statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// L1 I-cache statistics.
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// L1 D-cache statistics.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Outstanding L2 miss fills at `now`.
    pub fn outstanding_misses(&mut self, now: Cycle) -> usize {
        self.mshr.occupancy(now)
    }

    /// Peak outstanding L2 misses observed (realized MLP).
    pub fn peak_outstanding(&self) -> usize {
        self.mshr.peak()
    }

    /// Handles an L2 miss for the line containing `addr`, requested at
    /// `req_time`. Returns the fill completion time.
    fn memory_fill(&mut self, addr: u64, req_time: Cycle) -> Cycle {
        let line_addr = self.l2.line_addr(addr);
        // Coalesce with an outstanding fill of the same line.
        if let Some(done) = self.mshr.lookup(line_addr, req_time) {
            return done;
        }
        // Wait for an MSHR slot, then for the DRAM access, then for the
        // bus to transfer the line.
        let start = self.mshr.earliest_slot(req_time);
        let data_ready = start + self.mem.first_chunk;
        let transfer = self.mem.transfer_cycles(self.l2.config().line);
        let transfer_start = data_ready.max(self.bus_free);
        let fill_done = transfer_start + transfer;
        self.bus_free = fill_done;
        self.stats.bus_busy_cycles += transfer;
        if self.tracing {
            self.trace.push((
                req_time,
                TraceEvent::MemFillScheduled {
                    line_addr,
                    complete_at: fill_done,
                },
            ));
        }
        // `start` is when the MSHR slot frees; inserting "at" that time
        // keeps occupancy within capacity.
        self.mshr.insert(line_addr, fill_done, start);
        // Eager install: the MSHR entry keeps the line "not yet valid"
        // until fill_done, so intermediate accesses still see the miss.
        if let Some(ev) = self.l2.fill(addr) {
            if ev.dirty && self.mem.model_writebacks {
                let wb_start = self.bus_free;
                let wb = self.mem.transfer_cycles(self.l2.config().line);
                self.bus_free = wb_start + wb;
                self.stats.bus_busy_cycles += wb;
            }
        }
        fill_done
    }

    /// Common L1-miss path: probes L2 at `l2_time`, going to memory on a
    /// miss. Returns `(complete_at, l2_miss, l2_detect)`.
    fn l2_access(&mut self, addr: u64, l2_time: Cycle) -> (Cycle, bool, Cycle) {
        let l2_lat = self.l2.config().hit_lat;
        let detect = l2_time + l2_lat;
        let outstanding = self.mshr.lookup(self.l2.line_addr(addr), l2_time).is_some();
        if self.l2.probe(addr) && !outstanding {
            (detect, false, detect)
        } else {
            // Either a true miss or a line still in flight: both are
            // "L2 misses" from the core's perspective (data not there).
            let done = self.memory_fill(addr, detect);
            (done, true, detect)
        }
    }

    /// A demand load to `addr` issued at `now` (post address
    /// generation). Returns completion and miss information.
    pub fn load(&mut self, addr: u64, now: Cycle) -> AccessResult {
        self.stats.loads += 1;
        let l1_lat = self.l1d.config().hit_lat;
        // Lines are installed eagerly at miss time; an outstanding MSHR
        // entry means the data has not actually arrived yet, so the
        // access is a secondary miss regardless of what L1 says.
        if let Some(done) = self.mshr.lookup(self.l2.line_addr(addr), now) {
            self.stats.load_l2_misses += 1;
            self.stats.total_load_latency += done.max(now) - now;
            return AccessResult {
                complete_at: done,
                l1_miss: true,
                l2_miss: true,
                l2_miss_detected_at: now + l1_lat,
            };
        }
        if self.l1d.probe(addr) {
            let done = now + l1_lat;
            self.stats.total_load_latency += l1_lat;
            return AccessResult {
                complete_at: done,
                l1_miss: false,
                l2_miss: false,
                l2_miss_detected_at: done,
            };
        }
        let (complete_at, l2_miss, detect) = self.l2_access(addr, now + l1_lat);
        self.l1d.fill(addr);
        if l2_miss {
            self.stats.load_l2_misses += 1;
        }
        self.stats.total_load_latency += complete_at - now;
        AccessResult {
            complete_at,
            l1_miss: true,
            l2_miss,
            l2_miss_detected_at: detect,
        }
    }

    /// An instruction fetch of the line containing `pc` at `now`.
    pub fn ifetch(&mut self, pc: u64, now: Cycle) -> AccessResult {
        self.stats.ifetches += 1;
        let l1_lat = self.l1i.config().hit_lat;
        if let Some(done) = self.mshr.lookup(self.l2.line_addr(pc), now) {
            return AccessResult {
                complete_at: done,
                l1_miss: true,
                l2_miss: true,
                l2_miss_detected_at: now + l1_lat,
            };
        }
        if self.l1i.probe(pc) {
            return AccessResult {
                complete_at: now + l1_lat,
                l1_miss: false,
                l2_miss: false,
                l2_miss_detected_at: now + l1_lat,
            };
        }
        let (complete_at, l2_miss, detect) = self.l2_access(pc, now + l1_lat);
        self.l1i.fill(pc);
        AccessResult {
            complete_at,
            l1_miss: true,
            l2_miss,
            l2_miss_detected_at: detect,
        }
    }

    /// A store retiring from the store buffer at `now`. Write-allocate:
    /// a missing line is fetched (consuming MSHR/bus bandwidth) and
    /// marked dirty; nothing waits on the result.
    pub fn store_commit(&mut self, addr: u64, now: Cycle) {
        self.stats.stores += 1;
        if self.mshr.lookup(self.l2.line_addr(addr), now).is_some() {
            // Line already being fetched; the store buffer merges into
            // the arriving line. Mark it dirty for eviction modeling.
            self.l1d.mark_dirty(addr);
            return;
        }
        if self.l1d.probe(addr) {
            self.l1d.mark_dirty(addr);
            // Keep L2 coherent-ish for dirtiness on eviction modeling.
            return;
        }
        let l1_lat = self.l1d.config().hit_lat;
        let (_, _, _) = self.l2_access(addr, now + l1_lat);
        self.l1d.fill(addr);
        self.l1d.mark_dirty(addr);
    }

    /// Does a load of `addr` at `now` hit in the L1 D-cache? Pure
    /// (no state change); used by load-hit prediction verification.
    pub fn peek_l1d(&self, addr: u64) -> bool {
        self.l1d.peek(addr)
    }

    /// Functional warm-up access: installs the line in L1-D and L2
    /// without timing, MSHRs, bus traffic or statistics. Used to
    /// pre-warm caches before timed simulation, as SimPoint-style
    /// checkpoints would be.
    pub fn warm_data(&mut self, addr: u64, write: bool) {
        if !self.l2.peek(addr) {
            self.l2.fill(addr);
        }
        if !self.l1d.peek(addr) {
            self.l1d.fill(addr);
        }
        if write {
            self.l1d.mark_dirty(addr);
        }
    }

    /// Functional warm-up of the instruction path.
    pub fn warm_inst(&mut self, pc: u64) {
        if !self.l2.peek(pc) {
            self.l2.fill(pc);
        }
        if !self.l1i.peek(pc) {
            self.l1i.fill(pc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::icpp08()
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut m = h();
        let first = m.load(0x1000, 0);
        assert!(first.l1_miss && first.l2_miss);
        // Unloaded miss: 1 (L1) + 10 (L2) + 500 + 32 = 543.
        assert_eq!(first.complete_at, 543);
        assert_eq!(first.l2_miss_detected_at, 11);
        let again = m.load(0x1000, first.complete_at + 1);
        assert!(!again.l1_miss);
        assert_eq!(again.complete_at, first.complete_at + 2);
    }

    #[test]
    fn l2_hit_latency() {
        let mut m = h();
        let a = m.load(0x2000, 0);
        // Evict from L1 by filling conflicting lines (L1D: 256 sets,
        // 4-way, 32B lines → set stride 8 KiB).
        for i in 1..=4u64 {
            m.load(0x2000 + i * 8192, a.complete_at + i);
        }
        let t = 10_000;
        let r = m.load(0x2000, t);
        assert!(r.l1_miss && !r.l2_miss, "{r:?}");
        assert_eq!(r.complete_at, t + 1 + 10);
    }

    #[test]
    fn same_line_misses_coalesce() {
        let mut m = h();
        let a = m.load(0x4000, 0);
        let b = m.load(0x4004, 2); // same 128B L2 line, while in flight
        assert!(b.l2_miss, "line is not yet valid");
        assert_eq!(b.complete_at, a.complete_at, "secondary miss coalesces");
    }

    #[test]
    fn independent_misses_overlap() {
        let mut m = h();
        let a = m.load(0x10_0000, 0);
        let b = m.load(0x20_0000, 1);
        // Second miss completes ~one transfer later, not one full
        // memory latency later: MLP.
        assert!(b.complete_at < a.complete_at + 100, "{a:?} {b:?}");
        assert!(b.complete_at > a.complete_at, "bus serializes transfers");
    }

    #[test]
    fn mshr_capacity_serializes_excess() {
        let mut cfg = MemConfig::icpp08();
        cfg.mshr_entries = 2;
        let mut m = Hierarchy::new(
            CacheConfig::l1i_icpp08(),
            CacheConfig::l1d_icpp08(),
            CacheConfig::l2_icpp08(),
            cfg,
        );
        let a = m.load(0x10_0000, 0);
        let b = m.load(0x20_0000, 0);
        let c = m.load(0x30_0000, 0);
        assert!(b.complete_at < a.complete_at + 100);
        // Third miss had to wait for an MSHR slot.
        assert!(c.complete_at >= a.complete_at + 500, "{a:?} {b:?} {c:?}");
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut m = h();
        let a = m.ifetch(0x100, 0);
        assert!(a.l1_miss);
        let b = m.ifetch(0x104, a.complete_at + 1);
        assert!(!b.l1_miss, "same 64B line");
        assert_eq!(b.complete_at, a.complete_at + 2);
    }

    #[test]
    fn store_write_allocates_and_dirties() {
        let mut m = h();
        m.store_commit(0x9000, 0);
        assert!(m.peek_l1d(0x9000));
        let s = m.stats();
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn load_after_fill_completes_is_hit() {
        let mut m = h();
        let a = m.load(0x5000, 0);
        let r = m.load(0x5008, a.complete_at);
        assert!(!r.l1_miss, "line valid at fill_done, same L1 line");
    }

    #[test]
    fn stats_track_misses() {
        let mut m = h();
        m.load(0x10_0000, 0);
        m.load(0x10_0000, 600);
        let s = m.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.load_l2_misses, 1);
        assert!(s.avg_load_latency() > 1.0);
        assert!(s.bus_busy_cycles >= 32);
    }

    #[test]
    fn peak_outstanding_tracks_mlp() {
        let mut m = h();
        for i in 0..8u64 {
            m.load(0x100_0000 + i * 0x1_0000, i);
        }
        assert!(m.peak_outstanding() >= 8);
        assert_eq!(m.outstanding_misses(100_000), 0);
    }

    #[test]
    fn transfer_cycles_math() {
        let c = MemConfig::icpp08();
        assert_eq!(c.transfer_cycles(128), 32);
        assert_eq!(c.transfer_cycles(64), 16);
        assert_eq!(c.transfer_cycles(4), 2);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut m = h();
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let r = m.load(0x100_0000 + (i * 7919) % (1 << 20), i * 3);
                acc = acc.wrapping_mul(31).wrapping_add(r.complete_at);
            }
            acc
        };
        assert_eq!(run(), run());
    }
}
