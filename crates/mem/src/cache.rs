//! Set-associative cache with true-LRU replacement.
//!
//! The cache stores *presence* only (tags + state bits); simulated
//! programs have no data values. Geometry is fully configurable; the
//! Table 1 geometries are provided by constructors on
//! [`CacheConfig`].

use crate::Cycle;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Hit latency in cycles.
    pub hit_lat: Cycle,
}

impl CacheConfig {
    /// Table 1 L1 I-cache: 64 KB, 2-way, 64 B lines, 1-cycle hit.
    pub fn l1i_icpp08() -> Self {
        CacheConfig {
            size: 64 << 10,
            assoc: 2,
            line: 64,
            hit_lat: 1,
        }
    }

    /// Table 1 L1 D-cache: 32 KB, 4-way, 32 B lines, 1-cycle hit.
    pub fn l1d_icpp08() -> Self {
        CacheConfig {
            size: 32 << 10,
            assoc: 4,
            line: 32,
            hit_lat: 1,
        }
    }

    /// Table 1 unified L2: 2 MB, 8-way, 128 B lines, 10-cycle hit.
    pub fn l2_icpp08() -> Self {
        CacheConfig {
            size: 2 << 20,
            assoc: 8,
            line: 128,
            hit_lat: 10,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.size / self.line) as usize / self.assoc
    }

    /// Validates the geometry (power-of-two line and set count, nonzero
    /// associativity).
    pub fn validate(&self) -> Result<(), String> {
        if !self.line.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        if self.assoc == 0 {
            return Err("associativity must be nonzero".into());
        }
        if !self.size.is_multiple_of(self.line * self.assoc as u64) {
            return Err("size must be a multiple of line*assoc".into());
        }
        let sets = self.num_sets();
        if sets == 0 || !sets.is_power_of_two() {
            return Err("set count must be a nonzero power of two".into());
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic use stamp for true-LRU.
    stamp: u64,
}

/// Information about a line evicted by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// First byte address of the evicted line.
    pub line_addr: u64,
    /// Whether the line was dirty (needs writeback bus traffic).
    pub dirty: bool,
}

/// Per-cache access statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probe calls.
    pub accesses: u64,
    /// Probes that found the line.
    pub hits: u64,
    /// Lines installed.
    pub fills: u64,
    /// Valid lines evicted by fills.
    pub evictions: u64,
    /// Dirty lines evicted (writeback traffic).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Miss count (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; 0 if no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache directory.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>, // sets * assoc, row-major by set
    set_mask: u64,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache; panics on invalid geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache geometry");
        let sets = cfg.num_sets();
        Cache {
            ways: vec![Way::default(); sets * cfg.assoc],
            set_mask: sets as u64 - 1,
            line_shift: cfg.line.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// First byte address of the line containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        (((addr >> self.line_shift) & self.set_mask) as usize) * self.cfg.assoc
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift >> self.set_mask.count_ones()
    }

    /// Looks `addr` up; on hit, updates LRU and returns `true`.
    pub fn probe(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        self.clock += 1;
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        for w in &mut self.ways[base..base + self.cfg.assoc] {
            if w.valid && w.tag == tag {
                w.stamp = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        false
    }

    /// Looks `addr` up without disturbing LRU or statistics.
    pub fn peek(&self, addr: u64) -> bool {
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.ways[base..base + self.cfg.assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Installs the line containing `addr`, evicting the LRU way if the
    /// set is full. Returns the eviction victim, if any. If the line is
    /// already present this refreshes its LRU stamp instead.
    pub fn fill(&mut self, addr: u64) -> Option<Evicted> {
        self.clock += 1;
        self.stats.fills += 1;
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        let assoc = self.cfg.assoc;
        // Already present?
        for w in &mut self.ways[base..base + assoc] {
            if w.valid && w.tag == tag {
                w.stamp = self.clock;
                return None;
            }
        }
        // Free way?
        let clock = self.clock;
        if let Some(w) = self.ways[base..base + assoc].iter_mut().find(|w| !w.valid) {
            *w = Way {
                tag,
                valid: true,
                dirty: false,
                stamp: clock,
            };
            return None;
        }
        // Evict LRU.
        let victim_idx = (base..base + assoc)
            .min_by_key(|&i| self.ways[i].stamp)
            .expect("assoc > 0");
        let victim = self.ways[victim_idx];
        let victim_set = (addr >> self.line_shift) & self.set_mask;
        let line_addr =
            ((victim.tag << self.set_mask.count_ones()) | victim_set) << self.line_shift;
        self.stats.evictions += 1;
        if victim.dirty {
            self.stats.dirty_evictions += 1;
        }
        self.ways[victim_idx] = Way {
            tag,
            valid: true,
            dirty: false,
            stamp: clock,
        };
        Some(Evicted {
            line_addr,
            dirty: victim.dirty,
        })
    }

    /// Marks the line containing `addr` dirty, if present. Returns
    /// whether the line was found.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        for w in &mut self.ways[base..base + self.cfg.assoc] {
            if w.valid && w.tag == tag {
                w.dirty = true;
                return true;
            }
        }
        false
    }

    /// Invalidates the line containing `addr`, if present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        for w in &mut self.ways[base..base + self.cfg.assoc] {
            if w.valid && w.tag == tag {
                w.valid = false;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets, 2-way, 64B lines = 512B.
        Cache::new(CacheConfig {
            size: 512,
            assoc: 2,
            line: 64,
            hit_lat: 1,
        })
    }

    #[test]
    fn table1_geometries_validate() {
        for c in [
            CacheConfig::l1i_icpp08(),
            CacheConfig::l1d_icpp08(),
            CacheConfig::l2_icpp08(),
        ] {
            c.validate().unwrap();
        }
        assert_eq!(CacheConfig::l1d_icpp08().num_sets(), 256);
        assert_eq!(CacheConfig::l2_icpp08().num_sets(), 2048);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.probe(0x1000));
        assert_eq!(c.fill(0x1000), None);
        assert!(c.probe(0x1000));
        assert!(c.probe(0x1004)); // same line
        assert!(!c.probe(0x1040)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 sets * 64B).
        let (a, b, d) = (0x0000, 0x0100, 0x0200);
        c.fill(a);
        c.fill(b);
        c.probe(a); // a most-recent
        let ev = c.fill(d).expect("must evict");
        assert_eq!(ev.line_addr, b, "LRU way (b) must be evicted");
        assert!(c.peek(a) && c.peek(d) && !c.peek(b));
    }

    #[test]
    fn eviction_reports_dirty() {
        let mut c = tiny();
        c.fill(0x0000);
        assert!(c.mark_dirty(0x0000));
        c.fill(0x0100);
        let ev = c.fill(0x0200).unwrap();
        assert_eq!(ev.line_addr, 0x0000);
        assert!(ev.dirty);
    }

    #[test]
    fn refill_of_present_line_is_no_eviction() {
        let mut c = tiny();
        c.fill(0x0000);
        assert_eq!(c.fill(0x0000), None);
        assert_eq!(c.stats().fills, 2);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn peek_does_not_touch_lru_or_stats() {
        let mut c = tiny();
        c.fill(0x0000);
        c.fill(0x0100);
        let before = c.stats();
        assert!(c.peek(0x0000));
        assert_eq!(c.stats(), before);
        // Peek must not refresh LRU: 0x0000 is still LRU, so it gets
        // evicted next.
        let ev = c.fill(0x0200).unwrap();
        assert_eq!(ev.line_addr, 0x0000);
    }

    #[test]
    fn mark_dirty_missing_line() {
        let mut c = tiny();
        assert!(!c.mark_dirty(0x4000));
    }

    #[test]
    fn invalidate_works() {
        let mut c = tiny();
        c.fill(0x0000);
        assert!(c.invalidate(0x0000));
        assert!(!c.peek(0x0000));
        assert!(!c.invalidate(0x0000));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.probe(0x0);
        c.fill(0x0);
        c.probe(0x0);
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = tiny();
        assert_eq!(c.line_addr(0x107f), 0x1040);
        assert_eq!(c.line_addr(0x1040), 0x1040);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        // 4 sets: addresses 0x00, 0x40, 0x80, 0xC0 map to different sets.
        for a in [0x00u64, 0x40, 0x80, 0xC0] {
            c.fill(a);
        }
        for a in [0x00u64, 0x40, 0x80, 0xC0] {
            assert!(c.peek(a));
        }
    }

    #[test]
    fn eviction_reconstructs_correct_address() {
        let mut c = tiny();
        let addr = 0xDEAD_C0C0u64 & !0x3F; // arbitrary line
        c.fill(addr);
        // Fill two more lines in the same set to force eviction of addr.
        let stride = 4 * 64; // sets * line
        c.fill(addr + stride);
        let ev = c.fill(addr + 2 * stride).unwrap();
        assert_eq!(ev.line_addr, addr);
    }
}
