//! In-order functional reference executor.
//!
//! Walks a `smtsim-isa` [`Program`] exactly as the architectural
//! contract demands — one instruction at a time, in program order — and
//! folds each step through the shared value model
//! ([`crate::record::ArchState`]) to produce the canonical commit
//! stream every pipeline configuration must reproduce.
//!
//! The walk semantics are a deliberate *reimplementation* of
//! `smtsim_workload::Executor` (loop branches from per-site trip
//! counters, biased branches from a pure `(seed ^ site, instance)`
//! hash, effective addresses by advancing per-stream state), so the
//! differential cross-checks the generator's executor as well as the
//! pipeline. Only [`StreamState`] is reused directly: address streams
//! are data, not control.

use crate::record::{ArchState, CommitRecord};
use smtsim_isa::{BlockId, BranchBehavior, InstRole, Program};
use smtsim_workload::rng::mix64;
use smtsim_workload::{StreamState, Workload};
use std::sync::Arc;

/// Per-branch-site dynamic state (sites are blocks: a branch can only
/// terminate a block).
#[derive(Clone, Debug, Default)]
struct Site {
    loop_count: u32,
    instances: u64,
}

/// The in-order reference machine for one thread.
#[derive(Clone, Debug)]
pub struct Reference {
    wl: Arc<Workload>,
    seed: u64,
    block: BlockId,
    idx: usize,
    seq: u64,
    streams: Vec<StreamState>,
    sites: Vec<Site>,
    state: ArchState,
}

impl Reference {
    /// Positions the reference at the program entry. `seed` must match
    /// the per-thread executor seed the simulator derives (`sim_seed +
    /// thread`), or biased-branch directions will differ by design.
    #[must_use]
    pub fn new(wl: Arc<Workload>, seed: u64) -> Self {
        let streams = vec![StreamState::default(); wl.streams.len()];
        let sites = vec![Site::default(); wl.program.num_blocks()];
        Reference {
            block: wl.program.entry(),
            idx: 0,
            seq: 0,
            streams,
            sites,
            seed,
            state: ArchState::new(),
            wl,
        }
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.wl.program
    }

    /// Resolves the instruction at the current position: effective
    /// address for memory ops, direction for branches, successor
    /// position. Mirrors `Executor::next_inst` step-for-step.
    fn resolve(&mut self) -> (u64, u64, bool) {
        let program = &self.wl.program;
        let block = self.block;
        let idx = self.idx;
        let st = &program.block(block).insts[idx];
        let pc = program.pc_of(block, idx);

        let mut mem_addr = 0u64;
        let mut taken = false;
        match st.role {
            InstRole::Mem { stream } => {
                let desc = &self.wl.streams[stream.0 as usize];
                mem_addr = self.streams[stream.0 as usize].next(desc);
            }
            InstRole::Branch { behavior, .. } => {
                let site = &mut self.sites[block.0 as usize];
                taken = match behavior {
                    BranchBehavior::Always => true,
                    BranchBehavior::Loop { trip } => {
                        site.loop_count += 1;
                        if site.loop_count < trip {
                            true
                        } else {
                            site.loop_count = 0;
                            false
                        }
                    }
                    BranchBehavior::Biased { taken_pm } => {
                        let inst = site.instances;
                        site.instances += 1;
                        mix64(self.seed ^ (block.0 as u64) << 17, inst) % 1000 < u64::from(taken_pm)
                    }
                };
            }
            InstRole::None => {}
        }

        let (nb, nidx) = if taken {
            let Some((_, target)) = st.branch_info() else {
                unreachable!("taken implies branch")
            };
            (target, 0)
        } else if idx + 1 < program.block(block).insts.len() {
            (block, idx + 1)
        } else {
            (program.block(block).fallthrough, 0)
        };
        self.block = nb;
        self.idx = nidx;
        (pc, mem_addr, taken)
    }

    /// Advances the walk by `n` instructions *without* folding values —
    /// the canonical stream's value fold starts at the first observed
    /// commit, so functional warmup (which the pipeline runs untraced)
    /// must advance control/stream/branch-site state only.
    pub fn skip(&mut self, n: u64) {
        for _ in 0..n {
            self.resolve();
            self.seq += 1;
        }
    }

    /// Executes one instruction and returns its canonical record.
    pub fn step(&mut self) -> CommitRecord {
        let (pc, mem_addr, taken) = self.resolve();
        let seq = self.seq;
        self.seq += 1;
        let program = &self.wl.program;
        match self.state.apply(program, seq, pc, mem_addr, taken) {
            Ok(r) => r,
            Err(e) => unreachable!("reference walk produced inconsistent facts: {e}"),
        }
    }

    /// Convenience: the canonical stream of `n` records after skipping
    /// `skip` warmup instructions.
    #[must_use]
    pub fn stream(wl: Arc<Workload>, seed: u64, skip: u64, n: usize) -> Vec<CommitRecord> {
        let mut r = Reference::new(wl, seed);
        r.skip(skip);
        (0..n).map(|_| r.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_workload::{build, Executor, WorkloadProfile};

    fn wl(seed: u64) -> Arc<Workload> {
        Arc::new(build(
            &WorkloadProfile::test_profile(),
            seed,
            0x1000,
            0x100_0000,
        ))
    }

    #[test]
    fn walk_matches_the_generator_executor() {
        // The independent reimplementation must agree with
        // `smtsim_workload::Executor` on every dynamic fact.
        let w = wl(7);
        let mut reference = Reference::new(w.clone(), 3);
        let mut exec = Executor::new(w, 3);
        for _ in 0..20_000 {
            let d = exec.next_inst();
            let r = reference.step();
            assert_eq!(
                (r.seq, r.pc, r.mem_addr, r.taken),
                (d.seq, d.pc, d.mem_addr, d.taken)
            );
        }
    }

    #[test]
    fn skip_preserves_alignment() {
        let w = wl(9);
        let mut a = Reference::new(w.clone(), 5);
        a.skip(1234);
        let mut exec = Executor::new(w, 5);
        for _ in 0..1234 {
            exec.next_inst();
        }
        for _ in 0..5_000 {
            let d = exec.next_inst();
            let r = a.step();
            assert_eq!(
                (r.seq, r.pc, r.mem_addr, r.taken),
                (d.seq, d.pc, d.mem_addr, d.taken)
            );
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let a = Reference::stream(wl(11), 2, 100, 3000);
        let b = Reference::stream(wl(11), 2, 100, 3000);
        assert_eq!(a, b);
        let c = Reference::stream(wl(11), 3, 100, 3000);
        assert_ne!(a, c, "executor seed must perturb the stream");
    }
}
