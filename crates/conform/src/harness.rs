//! The differential harness: every scheme × `Baseline_32/128` over one
//! workload set, all commit streams equal to the in-order reference.
//!
//! Beyond stream equality the harness enforces two timing-side
//! invariants that commit streams cannot observe (they are what make
//! the mutation self-test possible — a timing-only bug like an
//! off-by-one DoD scan window never corrupts architectural state):
//!
//! * every `DodSampled { source: CounterAtFill }` value is at most
//!   [`DOD_WINDOW`] — the counter scans the first-level window minus
//!   the load itself, so a larger value means the scan walked out of
//!   bounds;
//! * the static-DoD oracle records zero violations when bound tables
//!   are installed.
//!
//! Failures carry the first divergent commit and, where a thread/tag is
//! implicated, the enclosing L2-miss episode reconstructed from the
//! same trace ([`EpisodeReconstructor`]).

use crate::capture::{capture_streams, CaptureError};
use crate::record::CommitRecord;
use crate::reference::Reference;
use smtsim_analysis::{DodAnalysis, L1_WINDOW};
use smtsim_obs::{episode_line, Cycle, DodSource, EpisodeReconstructor, TraceEvent, TraceLog};
use smtsim_pipeline::{DodBounds, MachineConfig, Simulator, StopCondition, DOD_WINDOW};
use smtsim_rob2::{RobConfig, TwoLevelConfig};
use smtsim_workload::Workload;
use std::fmt;
use std::sync::Arc;

/// The configuration matrix the differential runs: both baselines and
/// all four second-level allocation schemes at their paper operating
/// points.
#[must_use]
pub fn conform_configs() -> Vec<RobConfig> {
    vec![
        RobConfig::Baseline(32),
        RobConfig::Baseline(128),
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)),
        RobConfig::TwoLevel(TwoLevelConfig::cdr_rob(15)),
        RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
    ]
}

/// A passing differential: how much evidence was accumulated.
#[derive(Clone, Debug)]
pub struct ConformReport {
    /// Labels of the configurations compared.
    pub configs: Vec<String>,
    /// Total commit records compared against the reference.
    pub commits_compared: u64,
}

/// Why the differential failed. Every variant names the configuration
/// whose run surfaced the defect; variants about a specific commit or
/// sample carry the enclosing L2-miss episode when one exists.
#[derive(Clone, Debug)]
pub enum ConformFailure {
    /// The simulator itself failed (deadlock, invariant violation, …).
    Sim {
        /// Configuration label.
        config: String,
        /// Rendered simulator error.
        error: String,
    },
    /// The commit stream was structurally corrupt before comparison.
    StreamCorrupt {
        /// Configuration label.
        config: String,
        /// The capture-layer defect.
        error: CaptureError,
        /// Enclosing episode (JSON line), if reconstructable.
        episode: Option<String>,
    },
    /// A fill-time DoD sample exceeded the first-level scan window.
    DodSampleOutOfRange {
        /// Configuration label.
        config: String,
        /// Thread the sample belongs to.
        thread: usize,
        /// ROB tag of the triggering load.
        tag: u64,
        /// The out-of-range sampled value.
        value: u32,
        /// Cycle the sample was traced at.
        cycle: Cycle,
        /// Enclosing episode (JSON line), if reconstructable.
        episode: Option<String>,
    },
    /// The static-DoD oracle recorded violations.
    OracleViolations {
        /// Configuration label.
        config: String,
        /// Number of violations recorded in `SimStats::dod_oracle`.
        violations: u64,
    },
    /// A committed record differed from the in-order reference.
    CommitDivergence {
        /// Configuration label.
        config: String,
        /// Thread whose stream diverged.
        thread: usize,
        /// Index of the first divergent commit in the thread's stream.
        index: usize,
        /// What the reference executed at that index.
        expected: CommitRecord,
        /// What the pipeline committed at that index.
        actual: CommitRecord,
        /// ROB tag of the divergent commit.
        tag: u64,
        /// Enclosing episode (JSON line), if reconstructable.
        episode: Option<String>,
    },
}

impl fmt::Display for ConformFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let episode_suffix = |ep: &Option<String>| match ep {
            Some(line) => format!("\n  episode context: {line}"),
            None => "\n  episode context: none (no L2-miss episode on this thread)".to_owned(),
        };
        match self {
            ConformFailure::Sim { config, error } => {
                write!(f, "[{config}] simulator failed: {error}")
            }
            ConformFailure::StreamCorrupt {
                config,
                error,
                episode,
            } => {
                write!(f, "[{config}] {error}{}", episode_suffix(episode))
            }
            ConformFailure::DodSampleOutOfRange {
                config,
                thread,
                tag,
                value,
                cycle,
                episode,
            } => write!(
                f,
                "[{config}] fill-time DoD sample out of range: thread {thread} tag {tag} \
                 sampled {value} > window {DOD_WINDOW} at cycle {cycle}{}",
                episode_suffix(episode)
            ),
            ConformFailure::OracleViolations { config, violations } => write!(
                f,
                "[{config}] static-DoD oracle recorded {violations} violation(s)"
            ),
            ConformFailure::CommitDivergence {
                config,
                thread,
                index,
                expected,
                actual,
                tag,
                episode,
            } => write!(
                f,
                "[{config}] commit stream diverged from reference: thread {thread} \
                 commit #{index} (tag {tag})\n  expected: {expected:?}\n  actual:   {actual:?}{}",
                episode_suffix(episode)
            ),
        }
    }
}

/// The enclosing (or nearest preceding) L2-miss episode for a
/// thread/tag, rendered as its canonical JSON line.
fn episode_context(events: &[(Cycle, TraceEvent)], thread: usize, tag: u64) -> Option<String> {
    let episodes = EpisodeReconstructor::from_events(events);
    episodes
        .iter()
        .filter(|e| e.thread == thread && e.tag <= tag)
        .max_by_key(|e| e.tag)
        .or_else(|| {
            episodes
                .iter()
                .filter(|e| e.thread == thread)
                .min_by_key(|e| e.tag)
        })
        .map(episode_line)
}

/// The paper machine sized to `n` hardware threads.
fn machine_for(n: usize) -> MachineConfig {
    let mut cfg = MachineConfig::icpp08();
    cfg.num_threads = n;
    cfg.fetch_threads = n.min(2);
    cfg
}

/// Runs the full differential over one workload set: every
/// configuration from [`conform_configs`] on `wls`, all canonical
/// commit streams equal to the in-order reference, DoD samples in
/// range, zero oracle violations.
///
/// `seed` seeds the simulator (thread `t`'s executor derives
/// `seed + t`, and the reference mirrors that); `budget` is the
/// `AnyThreadCommitted` stop condition; `warmup` functional
/// instructions per thread run untraced before cycle 0.
///
/// # Errors
/// The first [`ConformFailure`] encountered, boxed (the variant is
/// large); configurations are checked in matrix order.
pub fn check_workloads(
    wls: &[Arc<Workload>],
    seed: u64,
    budget: u64,
    warmup: u64,
) -> Result<ConformReport, Box<ConformFailure>> {
    let bounds: Vec<DodBounds> = wls
        .iter()
        .map(|w| DodBounds::new(DodAnalysis::compute(&w.program, L1_WINDOW).max_map()))
        .collect();

    // Reference streams grow lazily to the longest stream any
    // configuration commits; records are position-stable so prefix
    // comparison against a longer reference is sound.
    let mut refs: Vec<Reference> = wls
        .iter()
        .enumerate()
        .map(|(t, w)| {
            let mut r = Reference::new(w.clone(), seed.wrapping_add(t as u64));
            r.skip(warmup);
            r
        })
        .collect();
    let mut ref_streams: Vec<Vec<CommitRecord>> = vec![Vec::new(); wls.len()];

    let mut report = ConformReport {
        configs: Vec::new(),
        commits_compared: 0,
    };

    for rob in conform_configs() {
        let config = rob.label();
        let sim = Simulator::builder(machine_for(wls.len()), wls.to_vec(), rob.build(), seed)
            .dod_bounds(bounds.clone())
            .warmup(warmup)
            .tracer(TraceLog::new())
            .build();
        let mut sim = match sim {
            Ok(s) => s,
            Err(e) => {
                return Err(Box::new(ConformFailure::Sim {
                    config,
                    error: e.to_string(),
                }))
            }
        };
        let run_err = sim.try_run(StopCondition::AnyThreadCommitted(budget)).err();
        let violations = sim.stats().dod_oracle.violations;
        let events = sim.into_tracer().into_events();
        if let Some(e) = run_err {
            return Err(Box::new(ConformFailure::Sim {
                config,
                error: e.to_string(),
            }));
        }

        // Timing-side invariant: fill-time DoD samples never exceed the
        // first-level scan window.
        for &(cycle, ev) in &events {
            if let TraceEvent::DodSampled {
                thread,
                tag,
                value,
                source: DodSource::CounterAtFill,
            } = ev
            {
                if value as usize > DOD_WINDOW {
                    let episode = episode_context(&events, thread, tag);
                    return Err(Box::new(ConformFailure::DodSampleOutOfRange {
                        config,
                        thread,
                        tag,
                        value,
                        cycle,
                        episode,
                    }));
                }
            }
        }
        if violations > 0 {
            return Err(Box::new(ConformFailure::OracleViolations {
                config,
                violations,
            }));
        }

        let streams = match capture_streams(&events, wls) {
            Ok(s) => s,
            Err(error) => {
                let episode = episode_context(&events, error.thread, error.tag);
                return Err(Box::new(ConformFailure::StreamCorrupt {
                    config,
                    error: *error,
                    episode,
                }));
            }
        };

        for (t, stream) in streams.iter().enumerate() {
            while ref_streams[t].len() < stream.records.len() {
                let r = refs[t].step();
                ref_streams[t].push(r);
            }
            for (i, (actual, expected)) in stream.records.iter().zip(&ref_streams[t]).enumerate() {
                if actual != expected {
                    let tag = stream.tags[i];
                    let episode = episode_context(&events, t, tag);
                    return Err(Box::new(ConformFailure::CommitDivergence {
                        config,
                        thread: t,
                        index: i,
                        expected: *expected,
                        actual: *actual,
                        tag,
                        episode,
                    }));
                }
            }
            report.commits_compared += stream.records.len() as u64;
        }
        report.configs.push(config);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_workload::{mix, Mix};

    fn mix_workloads(idx: usize, seed: u64) -> Vec<Arc<Workload>> {
        mix(idx)
            .instantiate(seed)
            .into_iter()
            .map(Arc::new)
            .collect()
    }

    #[test]
    fn differential_passes_on_a_memory_bound_mix() {
        // Mix 1 is the paper's most memory-bound pairing — the hardest
        // case for second-level tenure bookkeeping.
        let wls = mix_workloads(1, 42);
        let report = check_workloads(&wls, 42, 2_000, 0).unwrap();
        assert_eq!(report.configs.len(), conform_configs().len());
        assert!(report.commits_compared > 0);
    }

    #[test]
    fn differential_covers_warmup() {
        let wls = mix_workloads(2, 7);
        check_workloads(&wls, 7, 1_500, 5_000).unwrap();
    }

    #[test]
    fn thread_space_matches_mix_convention() {
        // The harness relies on per-thread disjoint address spaces the
        // same way `Mix::instantiate` lays them out.
        assert_eq!(Mix::THREAD_SPACE, 1 << 32);
    }
}
