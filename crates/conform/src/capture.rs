//! Canonicalizes a traced pipeline run into per-thread commit streams.
//!
//! The pipeline emits one [`TraceEvent::Commit`] per retired
//! instruction carrying its resolved dynamic facts (PC, effective
//! address, branch direction). Replaying those facts in commit order
//! through the static program and the shared value model
//! ([`crate::record::ArchState`]) yields the same canonical
//! [`CommitRecord`] form the reference executor produces — plus a layer
//! of structural cross-checks (gapless sequence numbers, destination
//! registers that match the static program) applied during the replay.

use crate::record::{ArchState, CommitRecord};
use smtsim_obs::{Cycle, TraceEvent};
use smtsim_workload::Workload;
use std::fmt;
use std::sync::Arc;

/// The canonical commit stream of one hardware thread, with the ROB tag
/// of each commit kept alongside for episode correlation (tags are
/// microarchitectural, so they stay out of [`CommitRecord`] equality).
#[derive(Clone, Debug, Default)]
pub struct CapturedStream {
    /// Canonical records in commit order.
    pub records: Vec<CommitRecord>,
    /// `tags[i]` is the ROB tag of `records[i]`.
    pub tags: Vec<u64>,
}

/// A structural defect found while canonicalizing a trace — the stream
/// is corrupt before any differential comparison happens.
#[derive(Clone, Debug)]
pub struct CaptureError {
    /// Thread whose stream is corrupt.
    pub thread: usize,
    /// Index into the thread's commit stream.
    pub index: usize,
    /// ROB tag of the offending commit.
    pub tag: u64,
    /// Cycle the commit was traced at.
    pub cycle: Cycle,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrupt commit stream: thread {} commit #{} (tag {}, cycle {}): {}",
            self.thread, self.index, self.tag, self.cycle, self.detail
        )
    }
}

/// Replays the `Commit` events of a traced run into canonical
/// per-thread streams (one entry per hardware thread, in thread order).
///
/// # Errors
/// Returns the first structural defect: a sequence-number gap, a PC
/// outside the thread's program, dynamic facts inconsistent with the
/// static instruction (address/taken flags), or a destination-register
/// mismatch between the event and the static program.
pub fn capture_streams(
    events: &[(Cycle, TraceEvent)],
    wls: &[Arc<Workload>],
) -> Result<Vec<CapturedStream>, Box<CaptureError>> {
    let mut streams: Vec<CapturedStream> = vec![CapturedStream::default(); wls.len()];
    let mut states: Vec<ArchState> = vec![ArchState::new(); wls.len()];
    let mut last_seq: Vec<Option<u64>> = vec![None; wls.len()];

    for &(cycle, ev) in events {
        let TraceEvent::Commit {
            thread,
            tag,
            seq,
            pc,
            dst,
            mem_addr,
            taken,
        } = ev
        else {
            continue;
        };
        let index = streams[thread].records.len();
        let fail = |detail: String| {
            Box::new(CaptureError {
                thread,
                index,
                tag,
                cycle,
                detail,
            })
        };
        if let Some(prev) = last_seq[thread] {
            if seq != prev + 1 {
                return Err(fail(format!("sequence hole: seq {seq} after seq {prev}")));
            }
        }
        last_seq[thread] = Some(seq);
        let record = states[thread]
            .apply(&wls[thread].program, seq, pc, mem_addr, taken)
            .map_err(&fail)?;
        if record.dst != dst {
            return Err(fail(format!(
                "destination mismatch: pipeline committed dst {dst}, static program says {}",
                record.dst
            )));
        }
        streams[thread].records.push(record);
        streams[thread].tags.push(tag);
    }
    Ok(streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Reference;
    use smtsim_pipeline::{FixedRob, MachineConfig, Simulator, StopCondition, TraceLog};
    use smtsim_workload::{build, WorkloadProfile};

    fn wl(seed: u64) -> Arc<Workload> {
        Arc::new(build(
            &WorkloadProfile::test_profile(),
            seed,
            0x1_0000,
            0x1000_0000,
        ))
    }

    #[test]
    fn captured_stream_matches_reference() {
        let w = wl(7);
        let sim_seed = 42u64;
        let mut sim = Simulator::builder(
            MachineConfig::icpp08_single(),
            vec![w.clone()],
            Box::new(FixedRob::new(32)),
            sim_seed,
        )
        .tracer(TraceLog::new())
        .build()
        .unwrap();
        sim.run(StopCondition::AnyThreadCommitted(3_000));
        let events = sim.into_tracer().into_events();
        let streams = capture_streams(&events, std::slice::from_ref(&w)).unwrap();
        assert!(streams[0].records.len() >= 3_000);
        let expected = Reference::stream(w, sim_seed, 0, streams[0].records.len());
        assert_eq!(streams[0].records, expected);
    }

    #[test]
    fn sequence_hole_is_reported() {
        let w = wl(7);
        let canon = Reference::stream(w.clone(), 1, 0, 2);
        let ev = |seq: u64, r: &crate::record::CommitRecord| TraceEvent::Commit {
            thread: 0,
            tag: seq,
            seq,
            pc: r.pc,
            dst: r.dst,
            mem_addr: r.mem_addr,
            taken: r.taken,
        };
        // Second commit skips seq 1 — the replay must flag the hole
        // before even consulting the static program.
        let events = vec![(1, ev(0, &canon[0])), (2, ev(2, &canon[1]))];
        let err = capture_streams(&events, &[w]).unwrap_err();
        assert!(err.detail.contains("sequence hole"), "{err}");
    }
}
