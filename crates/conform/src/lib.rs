//! # smtsim-conform
//!
//! Differential conformance oracle for the two-level-ROB reproduction:
//! proves that every second-level allocation scheme (R-ROB, Relaxed
//! R-ROB, CDR-ROB, P-ROB) is *timing-only* — it changes when
//! instructions commit, never what they compute.
//!
//! Three pieces (DESIGN.md §12):
//!
//! * [`reference`] — a small in-order functional executor over
//!   `smtsim-isa` programs producing the canonical per-thread commit
//!   stream (PC, destination register, value fingerprint, memory
//!   effects). It reimplements the `smtsim-workload` executor semantics
//!   independently, so it cross-checks the generator as well as the
//!   pipeline.
//! * [`capture`] — turns any traced `Simulator` run (the
//!   `TraceEvent::Commit` stream) into the same canonical form by
//!   replaying the committed `(pc, mem_addr, taken)` sequence through
//!   the static program.
//! * [`harness`] — runs every scheme × `Baseline_32/128` on the same
//!   workload set and asserts all commit streams are pairwise equal and
//!   equal to the reference, reporting the first divergent commit with
//!   episode context from `EpisodeReconstructor`. It also enforces two
//!   timing-side invariants that commit streams cannot see: every
//!   `CounterAtFill` DoD sample stays within the first-level window,
//!   and the static-DoD oracle records zero violations.
//!
//! [`fuzz`] drives the harness with seeded, machine-generated
//! multi-threaded workloads (pointer-chase, streaming, high/low-DoD
//! shapes via the `crates/workload` builders), filtered through
//! `smtsim-analysis` lints, with failing cases shrunk by halving basic
//! blocks. A committed corpus under `tests/corpus/` replays fully
//! offline.

pub mod capture;
pub mod fuzz;
pub mod harness;
pub mod record;
pub mod reference;

pub use capture::{capture_streams, CaptureError, CapturedStream};
pub use fuzz::{
    case_profiles, case_workloads, parse_case, render_case, run_case, run_fresh_cases, run_specs,
    shrink_once, CaseSpec, CaseVerdict, Fuzzer,
};
pub use harness::{check_workloads, conform_configs, ConformFailure, ConformReport};
pub use record::{ArchState, CommitRecord};
pub use reference::Reference;
