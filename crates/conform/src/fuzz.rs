//! Seeded program fuzzer: machine-generated multi-threaded workloads
//! for the differential harness.
//!
//! Each case derives four [`WorkloadProfile`]s (one per hardware
//! thread) from a pure hash of the case seed, drawn from four shape
//! families — pointer-chase, streaming, dense-shadow (high DoD) and
//! sparse (low-miss) — with every knob perturbed inside its valid
//! range, so generated profiles pass [`WorkloadProfile::validate`] by
//! construction. Built workloads are additionally filtered through the
//! `smtsim-analysis` well-formedness lints; a case whose program lints
//! with errors is *skipped* (a generator bug, not a pipeline one).
//!
//! Failures shrink by halving basic blocks (block-size range, segment
//! count, loop trip) while the failure reproduces, and the smallest
//! failing case is reported. Cases serialize to `key=value` text files
//! so a committed corpus under `tests/corpus/` replays fully offline —
//! same [`CaseSpec`] → byte-identical programs and verdicts.

use crate::harness::{check_workloads, ConformFailure};
use smtsim_analysis::{has_errors, lint_workload};
use smtsim_workload::rng::mix64;
use smtsim_workload::{build, IlpClass, Rng, Workload, WorkloadProfile};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Hardware threads per fuzz case (the paper machine).
pub const FUZZ_THREADS: usize = 4;
/// Commit budget per configuration in a fuzz run (kept modest: each
/// case runs the full six-configuration matrix).
pub const FUZZ_BUDGET: u64 = 1_500;
/// Maximum shrink steps attempted on a failing case.
pub const MAX_SHRINK: u32 = 6;

/// Domain-separation salt for deriving case seeds.
const CASE_SALT: u64 = 0xF0CC_5EED_A5A5_5A5A;

/// One fuzz case, fully determined by its fields: the profiles, the
/// programs and the harness verdict are pure functions of a spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaseSpec {
    /// Seed for profile generation, program build and the simulator.
    pub seed: u64,
    /// `AnyThreadCommitted` budget per configuration.
    pub budget: u64,
    /// Shrink steps applied (each halves block sizes, segment count and
    /// loop trip).
    pub shrink: u32,
}

impl CaseSpec {
    /// The `i`-th fresh case of a fuzz run seeded with `base`.
    #[must_use]
    pub fn fresh(base: u64, i: u64) -> Self {
        CaseSpec {
            seed: mix64(base ^ CASE_SALT, i),
            budget: FUZZ_BUDGET,
            shrink: 0,
        }
    }
}

/// Outcome of one fuzz case.
#[derive(Clone, Debug)]
pub enum CaseVerdict {
    /// The differential held over every configuration.
    Pass {
        /// Commit records compared across the matrix.
        commits: u64,
    },
    /// The generated program failed the `smtsim-analysis` lints and was
    /// never simulated.
    Skipped {
        /// The first lint finding, rendered.
        reason: String,
    },
    /// The differential failed; `shrunk` is the smallest spec that
    /// still reproduces (its failure is the one carried here).
    Fail {
        /// The failure of the *shrunk* case.
        failure: Box<ConformFailure>,
        /// Smallest reproducing spec.
        shrunk: CaseSpec,
    },
}

/// Fixed shape-family names (profiles need `&'static str` names).
const SHAPE_NAMES: [&str; 4] = ["fuzz-chase", "fuzz-stream", "fuzz-dense", "fuzz-sparse"];

/// Derives one profile of shape family `shape` (0..4) from `r`. All
/// knobs stay inside [`WorkloadProfile::validate`]'s envelope.
fn gen_profile(shape: usize, r: &mut Rng) -> WorkloadProfile {
    let load_frac_pm = (150 + r.below(200)) as u16;
    let store_frac_pm = (50 + r.below(100)) as u16;
    let branch_frac_pm = (80 + r.below(80)) as u16;
    let lo = 3 + r.below(6) as usize;
    let hi = lo + r.below(10) as usize;
    WorkloadProfile {
        name: SHAPE_NAMES[shape],
        class: match shape {
            3 => IlpClass::High,
            2 => IlpClass::Mid,
            _ => IlpClass::Low,
        },
        load_frac_pm,
        store_frac_pm,
        branch_frac_pm,
        fp_frac_pm: r.below(500) as u16,
        longlat_frac_pm: r.below(150) as u16,
        dod_mean: 2.0 + r.below(10) as f64,
        dod_cap: 8 + r.below(24) as u32,
        dense_frac_pm: if shape == 2 {
            (400 + r.below(400)) as u16
        } else {
            r.below(300) as u16
        },
        dod_gap: 1.0 + r.below(8) as f64,
        chain_frac_pm: (200 + r.below(600)) as u16,
        miss_load_frac_pm: if shape == 3 {
            r.below(100) as u16
        } else {
            (150 + r.below(250)) as u16
        },
        chase_frac_pm: if shape == 0 {
            (600 + r.below(400)) as u16
        } else {
            r.below(200) as u16
        },
        stream_frac_pm: if shape == 1 {
            (600 + r.below(400)) as u16
        } else {
            r.below(400) as u16
        },
        footprint: 1u64 << (20 + r.below(4)),
        hot_footprint: 1u64 << (10 + r.below(4)),
        branch_bias_pm: (700 + r.below(300)) as u16,
        avg_trip: 4 + r.below(28) as u32,
        block_size: (lo, hi),
        num_segments: 2 + r.below(3) as usize,
    }
}

/// One shrink step: halve the program's basic-block structure.
#[must_use]
pub fn shrink_once(p: &WorkloadProfile) -> WorkloadProfile {
    let lo = (p.block_size.0 / 2).max(1);
    let hi = (p.block_size.1 / 2).max(lo);
    WorkloadProfile {
        block_size: (lo, hi),
        num_segments: (p.num_segments / 2).max(1),
        avg_trip: (p.avg_trip / 2).max(1),
        ..p.clone()
    }
}

/// The four per-thread profiles of a case (shrink steps applied).
#[must_use]
pub fn case_profiles(spec: &CaseSpec) -> Vec<WorkloadProfile> {
    let mut rng = Rng::new(mix64(spec.seed, 0x5EED));
    (0..FUZZ_THREADS)
        .map(|t| {
            let mut r = rng.split(t as u64);
            let shape = r.below(4) as usize;
            let mut p = gen_profile(shape, &mut r);
            for _ in 0..spec.shrink {
                p = shrink_once(&p);
            }
            p
        })
        .collect()
}

/// Builds the case's workloads with the `Mix::instantiate` address
/// layout (disjoint 4 GiB windows per thread). Returns the first lint
/// error instead when the generated program is malformed.
///
/// # Errors
/// The rendered first `Error`-severity lint finding.
pub fn case_workloads(spec: &CaseSpec) -> Result<Vec<Arc<Workload>>, String> {
    let profiles = case_profiles(spec);
    debug_assert!(profiles.iter().all(|p| p.validate().is_ok()));
    let mut wls = Vec::with_capacity(FUZZ_THREADS);
    for (t, p) in profiles.iter().enumerate() {
        let base = (t as u64) << 32;
        let wl = build(
            p,
            spec.seed.wrapping_add(t as u64),
            base + 0x1_0000,
            base + 0x1000_0000,
        );
        let findings = lint_workload(&wl);
        if has_errors(&findings) {
            let first = findings
                .iter()
                .map(|f| format!("{f:?}"))
                .next()
                .unwrap_or_default();
            return Err(format!("thread {t} program lints with errors: {first}"));
        }
        wls.push(Arc::new(wl));
    }
    Ok(wls)
}

/// Runs one case end to end: build, lint-filter, differential, and on
/// failure shrink while the failure reproduces.
#[must_use]
pub fn run_case(spec: &CaseSpec) -> CaseVerdict {
    let wls = match case_workloads(spec) {
        Ok(w) => w,
        Err(reason) => return CaseVerdict::Skipped { reason },
    };
    match check_workloads(&wls, spec.seed, spec.budget, 0) {
        Ok(report) => CaseVerdict::Pass {
            commits: report.commits_compared,
        },
        Err(mut failure) => {
            let mut smallest = *spec;
            for step in 1..=MAX_SHRINK {
                let candidate = CaseSpec {
                    shrink: spec.shrink + step,
                    ..*spec
                };
                let Ok(wls) = case_workloads(&candidate) else {
                    break; // shrinking linted the program away
                };
                match check_workloads(&wls, candidate.seed, candidate.budget, 0) {
                    Err(f) => {
                        failure = f;
                        smallest = candidate;
                    }
                    Ok(_) => break, // shrunk past the failure
                }
            }
            CaseVerdict::Fail {
                failure,
                shrunk: smallest,
            }
        }
    }
}

/// Runs `cases` fresh cases from `base` seed across `jobs` worker
/// threads (0 = one per available core, 1 = serial). Results are
/// merged by case index, so the output is identical at any job count.
#[must_use]
pub fn run_fresh_cases(base: u64, cases: u64, jobs: usize) -> Vec<(CaseSpec, CaseVerdict)> {
    let specs: Vec<CaseSpec> = (0..cases).map(|i| CaseSpec::fresh(base, i)).collect();
    run_specs(&specs, jobs)
}

/// Runs an explicit list of specs with the same deterministic-merge
/// contract as [`run_fresh_cases`].
#[must_use]
pub fn run_specs(specs: &[CaseSpec], jobs: usize) -> Vec<(CaseSpec, CaseVerdict)> {
    let workers = match jobs {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
    .min(specs.len().max(1));
    let slots: Mutex<Vec<Option<CaseVerdict>>> = Mutex::new(vec![None; specs.len()]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let verdict = run_case(&specs[i]);
                if let Ok(mut guard) = slots.lock() {
                    guard[i] = Some(verdict);
                }
            });
        }
    });
    let slots = slots.into_inner().unwrap_or_default();
    specs
        .iter()
        .copied()
        .zip(slots)
        .map(|(s, v)| {
            (
                s,
                v.unwrap_or_else(|| CaseVerdict::Skipped {
                    reason: "worker panicked before recording a verdict".to_owned(),
                }),
            )
        })
        .collect()
}

/// Serializes a spec as the corpus `key=value` format.
#[must_use]
pub fn render_case(spec: &CaseSpec) -> String {
    format!(
        "seed={}\nbudget={}\nshrink={}\n",
        spec.seed, spec.budget, spec.shrink
    )
}

/// Parses the corpus `key=value` format (`#` lines are comments).
///
/// # Errors
/// Describes the malformed or missing key.
pub fn parse_case(text: &str) -> Result<CaseSpec, String> {
    let mut seed = None;
    let mut budget = None;
    let mut shrink = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("malformed corpus line: {line:?}"));
        };
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad value for {key}: {e}"))?;
        match key.trim() {
            "seed" => seed = Some(value),
            "budget" => budget = Some(value),
            "shrink" => shrink = Some(value as u32),
            other => return Err(format!("unknown corpus key {other:?}")),
        }
    }
    Ok(CaseSpec {
        seed: seed.ok_or("corpus case is missing `seed`")?,
        budget: budget.ok_or("corpus case is missing `budget`")?,
        shrink: shrink.unwrap_or(0),
    })
}

/// Placeholder type so the module-level docs can reference the fuzzer
/// as one unit; all functionality is free functions.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fuzzer;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_profiles_are_always_valid() {
        for i in 0..200 {
            let spec = CaseSpec::fresh(99, i);
            for p in case_profiles(&spec) {
                p.validate().unwrap();
            }
        }
    }

    #[test]
    fn case_generation_is_deterministic() {
        let a = case_profiles(&CaseSpec::fresh(5, 3));
        let b = case_profiles(&CaseSpec::fresh(5, 3));
        assert_eq!(a, b);
        let c = case_profiles(&CaseSpec::fresh(5, 4));
        assert_ne!(a, c);
    }

    #[test]
    fn shrink_halves_block_structure() {
        let p = WorkloadProfile::test_profile();
        let s = shrink_once(&p);
        assert_eq!(s.block_size, (3, 7));
        assert_eq!(s.num_segments, 1);
        assert_eq!(s.avg_trip, 8);
        // Repeated shrinking bottoms out at the minimum valid shape.
        let mut q = p;
        for _ in 0..10 {
            q = shrink_once(&q);
            q.validate().unwrap();
        }
        assert_eq!(q.block_size, (1, 1));
    }

    #[test]
    fn corpus_round_trips() {
        let spec = CaseSpec {
            seed: 0xDEAD_BEEF,
            budget: 1_234,
            shrink: 2,
        };
        assert_eq!(parse_case(&render_case(&spec)).unwrap(), spec);
        assert!(parse_case("seed=1\nbudget=x\n").is_err());
        assert!(parse_case("budget=5\n").is_err());
        let commented = "# a comment\nseed=7\nbudget=9\n";
        assert_eq!(
            parse_case(commented).unwrap(),
            CaseSpec {
                seed: 7,
                budget: 9,
                shrink: 0
            }
        );
    }

    #[test]
    fn fresh_cases_pass_the_differential() {
        // A tiny always-on smoke: two fresh cases, serial.
        let results = run_fresh_cases(42, 2, 1);
        for (spec, verdict) in results {
            match verdict {
                CaseVerdict::Pass { commits } => assert!(commits > 0),
                CaseVerdict::Skipped { .. } => {}
                CaseVerdict::Fail { failure, shrunk } => {
                    panic!("case {spec:?} failed (shrunk to {shrunk:?}): {failure}")
                }
            }
        }
    }

    #[test]
    fn parallel_and_serial_verdicts_agree() {
        let serial = run_fresh_cases(7, 3, 1);
        let parallel = run_fresh_cases(7, 3, 3);
        assert_eq!(serial.len(), parallel.len());
        for ((sa, va), (sb, vb)) in serial.iter().zip(&parallel) {
            assert_eq!(sa, sb);
            assert_eq!(format!("{va:?}"), format!("{vb:?}"));
        }
    }
}
