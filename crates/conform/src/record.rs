//! Canonical commit records and the architectural value model.
//!
//! The ISA is value-free by design (the timing model never needs data
//! values), so the conformance oracle *defines* the architectural value
//! semantics: every result is a deterministic 64-bit fingerprint folded
//! from the instruction's PC, op class, source-register fingerprints
//! and resolved memory address / branch direction, with store→load
//! forwarding through a per-thread fingerprint memory. Two executions
//! that commit the same instructions in the same order with the same
//! resolved addresses and directions produce identical fingerprints;
//! any divergence in the walk poisons every downstream value.
//!
//! Both sides of the differential — the in-order [`crate::reference`]
//! executor and the pipeline-stream [`crate::capture`] replay — fold
//! through the same [`ArchState::apply`], so a record mismatch always
//! means the *inputs* (the committed walk) diverged, never the folding.

use smtsim_isa::{ArchReg, InstRole, OpClass, Program};
use smtsim_workload::rng::mix64;
use std::collections::BTreeMap;

/// Domain-separation salts for the fingerprint folds.
const MEM_INIT_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
const STORE_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// One committed instruction in canonical architectural form.
///
/// Equality of two `CommitRecord` streams is the conformance property:
/// it covers program order (`seq`), control flow (`pc`, `taken`), the
/// data-flow result (`dst`, `value`) and memory effects (`mem_addr`,
/// `store_data`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Architectural sequence number (gapless per thread).
    pub seq: u64,
    /// Static PC of the instruction.
    pub pc: u64,
    /// Destination register as `flat_index() + 1`, or 0 for none.
    pub dst: u32,
    /// Fingerprint written to `dst` (0 when there is no destination).
    pub value: u64,
    /// Effective address for loads/stores, 0 otherwise.
    pub mem_addr: u64,
    /// Fingerprint written to memory (0 unless the op is a store).
    pub store_data: u64,
    /// Resolved branch direction (false for non-branches).
    pub taken: bool,
}

/// Per-thread architectural state of the value model: one fingerprint
/// per architectural register plus a sparse fingerprint memory.
#[derive(Clone, Debug, Default)]
pub struct ArchState {
    regs: BTreeMap<usize, u64>,
    mem: BTreeMap<u64, u64>,
}

impl ArchState {
    /// Fresh state: every register reads as 0, every memory location
    /// reads as a pure hash of its address.
    #[must_use]
    pub fn new() -> Self {
        ArchState::default()
    }

    fn read_reg(&self, r: ArchReg) -> u64 {
        if r.is_zero() {
            return 0;
        }
        self.regs.get(&r.flat_index()).copied().unwrap_or(0)
    }

    fn read_mem(&self, addr: u64) -> u64 {
        self.mem
            .get(&addr)
            .copied()
            .unwrap_or_else(|| mix64(MEM_INIT_SALT, addr))
    }

    /// Folds one committed instruction into the state and returns its
    /// canonical record. `pc`, `mem_addr` and `taken` are the resolved
    /// dynamic facts; everything else comes from the static program.
    ///
    /// # Errors
    /// Returns a description when the dynamic facts are inconsistent
    /// with the static program: a PC outside the program, a memory
    /// address on a non-memory op (or none on a memory op), or a taken
    /// flag on a non-branch.
    pub fn apply(
        &mut self,
        program: &Program,
        seq: u64,
        pc: u64,
        mem_addr: u64,
        taken: bool,
    ) -> Result<CommitRecord, String> {
        let Some((block, idx)) = program.locate(pc) else {
            return Err(format!("committed pc {pc:#x} is outside the program"));
        };
        let st = &program.block(block).insts[idx];
        match st.role {
            InstRole::Mem { .. } => {
                if mem_addr == 0 {
                    return Err(format!(
                        "memory op at pc {pc:#x} committed without an address"
                    ));
                }
            }
            InstRole::Branch { .. } => {}
            InstRole::None => {
                if mem_addr != 0 {
                    return Err(format!(
                        "non-memory op at pc {pc:#x} carries address {mem_addr:#x}"
                    ));
                }
                if taken {
                    return Err(format!("non-branch op at pc {pc:#x} committed as taken"));
                }
            }
        }

        let mut h = mix64(pc, st.op as u64);
        for src in st.srcs.iter().flatten() {
            h = mix64(h, self.read_reg(*src));
        }

        let mut store_data = 0u64;
        let value_input = match st.role {
            InstRole::Mem { .. } if st.op == OpClass::Load => self.read_mem(mem_addr),
            InstRole::Mem { .. } => {
                store_data = mix64(h ^ STORE_SALT, mem_addr);
                self.mem.insert(mem_addr, store_data);
                mem_addr
            }
            InstRole::Branch { .. } => u64::from(taken),
            InstRole::None => 0,
        };

        let (dst, value) = match st.dst {
            Some(r) => {
                let v = mix64(h, value_input);
                if !r.is_zero() {
                    self.regs.insert(r.flat_index(), v);
                }
                (r.flat_index() as u32 + 1, v)
            }
            None => (0, 0),
        };

        Ok(CommitRecord {
            seq,
            pc,
            dst,
            value,
            mem_addr,
            store_data,
            taken,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_workload::{build, WorkloadProfile};

    #[test]
    fn folding_is_deterministic() {
        let wl = build(&WorkloadProfile::test_profile(), 7, 0x1000, 0x100_0000);
        let mut exec = smtsim_workload::Executor::new(std::sync::Arc::new(wl), 3);
        let program = exec.program().clone();
        let mut a = ArchState::new();
        let mut b = ArchState::new();
        for _ in 0..2000 {
            let d = exec.next_inst();
            let ra = a.apply(&program, d.seq, d.pc, d.mem_addr, d.taken).unwrap();
            let rb = b.apply(&program, d.seq, d.pc, d.mem_addr, d.taken).unwrap();
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn values_depend_on_history() {
        // Perturbing one earlier memory address must change some later
        // load value (the fold has memory).
        let wl = std::sync::Arc::new(build(
            &WorkloadProfile::test_profile(),
            7,
            0x1000,
            0x100_0000,
        ));
        let mut exec = smtsim_workload::Executor::new(wl, 3);
        let program = exec.program().clone();
        let insts: Vec<_> = (0..2000).map(|_| exec.next_inst()).collect();
        let mut a = ArchState::new();
        let mut b = ArchState::new();
        let mut diverged = false;
        let mut perturbed = false;
        for d in &insts {
            let ra = a.apply(&program, d.seq, d.pc, d.mem_addr, d.taken).unwrap();
            let addr = if !perturbed && d.mem_addr != 0 {
                perturbed = true;
                d.mem_addr ^ 0x40
            } else {
                d.mem_addr
            };
            let rb = b.apply(&program, d.seq, d.pc, addr, d.taken).unwrap();
            if ra != rb {
                diverged = true;
            }
        }
        assert!(
            perturbed && diverged,
            "address perturbation must surface in records"
        );
    }

    #[test]
    fn rejects_pc_outside_program() {
        let wl = build(&WorkloadProfile::test_profile(), 7, 0x1000, 0x100_0000);
        let mut s = ArchState::new();
        assert!(s.apply(&wl.program, 0, 0x2, 0, false).is_err());
    }
}
