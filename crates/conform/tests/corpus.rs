//! Replays the committed fuzz corpus (`tests/corpus/*.case` at the
//! workspace root) through the differential harness, fully offline.
//!
//! Every committed case must either pass the differential or be
//! deterministically skipped by the generator lints — a `Fail` verdict
//! on a committed case is a regression.

use smtsim_conform::{parse_case, run_case, CaseVerdict};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn committed_corpus_passes_the_differential() {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} must exist: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "corpus dir {} holds no .case files",
        dir.display()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let spec = parse_case(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        match run_case(&spec) {
            CaseVerdict::Pass { commits } => {
                assert!(
                    commits > 0,
                    "{}: passed but compared nothing",
                    path.display()
                );
            }
            CaseVerdict::Skipped { reason } => {
                panic!(
                    "{}: committed corpus cases must simulate, but lints skipped it: {reason}",
                    path.display()
                );
            }
            CaseVerdict::Fail { failure, shrunk } => {
                panic!(
                    "{}: differential regression (shrunk to {shrunk:?}):\n{failure}",
                    path.display()
                );
            }
        }
    }
}
