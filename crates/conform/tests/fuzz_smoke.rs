//! Slow-tests-gated fresh-fuzz smoke: a handful of machine-generated
//! cases from a seed the committed corpus does not use must pass the
//! full differential, and the verdicts must be a pure function of the
//! base seed — identical at any worker count.
#![cfg(feature = "slow-tests")]

use smtsim_conform::{run_fresh_cases, CaseVerdict};

const BASE: u64 = 7;
const CASES: u64 = 3;

#[test]
fn fresh_cases_pass_and_are_job_count_invariant() {
    let serial = run_fresh_cases(BASE, CASES, 1);
    assert_eq!(serial.len(), CASES as usize);
    for (spec, verdict) in &serial {
        match verdict {
            CaseVerdict::Pass { commits } => {
                assert!(*commits > 0, "case seed={} compared no commits", spec.seed);
            }
            CaseVerdict::Skipped { reason } => {
                panic!("case seed={} skipped: {reason}", spec.seed);
            }
            CaseVerdict::Fail { failure, .. } => {
                panic!("case seed={} failed:\n{failure}", spec.seed);
            }
        }
    }
    let parallel = run_fresh_cases(BASE, CASES, 2);
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "fuzz verdicts must not depend on the worker count"
    );
}
