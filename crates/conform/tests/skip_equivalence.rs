//! Proves event-driven cycle skipping is *timing-transparent*: for
//! every conformance configuration × workload set, a run with skipping
//! enabled and a run with it disabled finish at the same cycle with
//! byte-identical statistics and identical trace-event streams.
//!
//! This is the behavioral half of the cycle-skip soundness argument
//! (DESIGN.md §15): the skip engine claims to replicate, in closed
//! form, exactly the accounting the skipped quiet cycles would have
//! performed — stall counters, occupancy sums, round-robin cursors,
//! synthesized stall/occupancy trace records — and to never skip a
//! cycle on which any stage would have acted. Equality of the full
//! event stream (not just the commit stream) over the paper mixes and
//! the committed fuzz corpus is the strongest observable consequence
//! of that claim.

use smtsim_analysis::{DodAnalysis, L1_WINDOW};
use smtsim_conform::{case_workloads, conform_configs, parse_case};
use smtsim_obs::{Cycle, TraceEvent, TraceLog};
use smtsim_pipeline::{DodBounds, MachineConfig, Simulator, StopCondition};
use smtsim_rob2::RobConfig;
use smtsim_workload::{mix, Workload};
use std::path::PathBuf;
use std::sync::Arc;

const SEED: u64 = 42;

/// One full traced run; returns (final cycle, stats rendering, events).
fn run_once(
    wls: &[Arc<Workload>],
    rob: &RobConfig,
    budget: u64,
    warmup: u64,
    skip: bool,
) -> (Cycle, String, Vec<(Cycle, TraceEvent)>) {
    let bounds: Vec<DodBounds> = wls
        .iter()
        .map(|w| DodBounds::new(DodAnalysis::compute(&w.program, L1_WINDOW).max_map()))
        .collect();
    let mut cfg = MachineConfig::icpp08();
    cfg.num_threads = wls.len();
    cfg.fetch_threads = wls.len().min(2);
    let mut sim = Simulator::builder(cfg, wls.to_vec(), rob.build(), SEED)
        .dod_bounds(bounds)
        .warmup(warmup)
        .cycle_skip(skip)
        .tracer(TraceLog::new())
        .build()
        .expect("valid configuration");
    sim.try_run(StopCondition::AnyThreadCommitted(budget))
        .expect("run completes");
    let cycle = sim.cycle();
    let stats = format!("{:?}", sim.stats());
    (cycle, stats, sim.into_tracer().into_events())
}

/// Asserts skip-on ≡ skip-off over one workload set for every
/// conformance configuration.
fn assert_equivalent(label: &str, wls: &[Arc<Workload>], budget: u64, warmup: u64) {
    for rob in conform_configs() {
        let config = rob.label();
        let (c_on, s_on, e_on) = run_once(wls, &rob, budget, warmup, true);
        let (c_off, s_off, e_off) = run_once(wls, &rob, budget, warmup, false);
        assert_eq!(
            c_on, c_off,
            "{label} / {config}: final cycle diverges with skipping on"
        );
        assert_eq!(
            s_on, s_off,
            "{label} / {config}: statistics diverge with skipping on"
        );
        assert_eq!(
            e_on.len(),
            e_off.len(),
            "{label} / {config}: event-stream length diverges with skipping on"
        );
        for (i, (a, b)) in e_on.iter().zip(&e_off).enumerate() {
            assert_eq!(
                a, b,
                "{label} / {config}: event stream diverges at index {i}"
            );
        }
    }
}

#[test]
fn paper_mixes_are_skip_equivalent() {
    // The determinism gate's mix set: one from each contention class
    // exercised there (see xtask DETERMINISM_DEFAULTS).
    for idx in [1usize, 2, 9] {
        let wls: Vec<Arc<Workload>> = mix(idx)
            .instantiate(SEED)
            .into_iter()
            .map(Arc::new)
            .collect();
        assert_equivalent(&format!("mix {idx}"), &wls, 3_000, 1_000);
    }
}

#[test]
fn fuzz_corpus_is_skip_equivalent() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} must exist: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus dir holds no .case files");
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let spec = parse_case(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        let wls = case_workloads(&spec)
            .unwrap_or_else(|e| panic!("{}: corpus case must build: {e}", path.display()));
        let label = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        assert_equivalent(&label, &wls, 2_000, 0);
    }
}
