//! Mutation self-test: proves the conformance oracle has teeth.
//!
//! The `seeded-dod-bug` feature plants an off-by-one in the pipeline's
//! DoD scan window (`cfg_dod_window` returns `DOD_WINDOW + 1`). The bug
//! is deliberately *timing-only* — commit streams stay architecturally
//! perfect — so only the harness's fill-sample bound can expose it.
//! With the feature enabled the differential must fail on that bound,
//! reporting the first offending sample with its episode context; with
//! the feature disabled the identical run must be clean.

use smtsim_conform::check_workloads;
use smtsim_workload::{build, IlpClass, Workload, WorkloadProfile};
use std::sync::Arc;

/// Pinned triggering workload, crafted so a full scan window behind a
/// missing load holds *zero* executed entries at fill time:
///
/// * every missing load is a pointer chase with a dense dependence
///   shadow — the dependents cannot execute before the fill by
///   construction;
/// * misses are sparse (one load in five), so a single chase shadow
///   owns its window instead of colliding with the next serialized
///   chase;
/// * every independent filler is an unpipelined long-latency FP op
///   (`fp_frac`/`longlat_frac` at 1000), so fillers backlog behind the
///   scarce FP units for longer than the L2 miss and are still
///   unexecuted when the fill samples the counter.
///
/// With the correct window (31) the sample saturates at 31; the seeded
/// window of 32 then produces an impossible sample of 32 on
/// `Baseline_128`, which the harness bound rejects.
fn trigger_workloads() -> Vec<Arc<Workload>> {
    let profile = WorkloadProfile {
        name: "mutation-trigger",
        class: IlpClass::Low,
        load_frac_pm: 200,
        store_frac_pm: 0,
        branch_frac_pm: 0,
        fp_frac_pm: 1000,
        longlat_frac_pm: 1000,
        dod_mean: 40.0,
        dod_cap: 64,
        dense_frac_pm: 1000,
        dod_gap: 0.5,
        chain_frac_pm: 1000,
        miss_load_frac_pm: 200,
        chase_frac_pm: 1000,
        stream_frac_pm: 500,
        footprint: 1 << 26,
        hot_footprint: 8 << 10,
        branch_bias_pm: 900,
        avg_trip: 64,
        block_size: (80, 120),
        num_segments: 2,
    };
    vec![Arc::new(build(&profile, 42, 0x1_0000, 0x1000_0000))]
}

const TRIGGER_SEED: u64 = 42;
const TRIGGER_BUDGET: u64 = 4_000;

#[cfg(feature = "seeded-dod-bug")]
#[test]
fn seeded_bug_is_detected_with_episode_context() {
    use smtsim_conform::ConformFailure;
    use smtsim_pipeline::DOD_WINDOW;

    let err = check_workloads(&trigger_workloads(), TRIGGER_SEED, TRIGGER_BUDGET, 0)
        .expect_err("the seeded off-by-one must trip the fill-sample bound");
    match *err {
        ConformFailure::DodSampleOutOfRange {
            value, ref episode, ..
        } => {
            assert!(
                value as usize > DOD_WINDOW,
                "reported sample {value} must exceed the window {DOD_WINDOW}"
            );
            let context = episode.as_deref().unwrap_or_default();
            assert!(
                context.contains("\"tag\""),
                "failure must carry episode context, got: {context:?}"
            );
        }
        ref other => panic!("expected an out-of-range DoD sample, got: {other}"),
    }
}

#[cfg(not(feature = "seeded-dod-bug"))]
#[test]
fn harness_is_clean_without_the_seeded_bug() {
    // Identical workload/seed/budget as the detection test: the only
    // difference is the feature, so a pass here plus a failure there
    // isolates the planted bug as the cause.
    let report = check_workloads(&trigger_workloads(), TRIGGER_SEED, TRIGGER_BUDGET, 0)
        .expect("differential must be clean without the seeded bug");
    assert!(report.commits_compared > 0);
}
