//! Stress tests: long mixed runs with per-interval invariant checking,
//! covering the squash-heavy paths (mispredict recovery, FLUSH replay)
//! and the commit-order integrity assertion.

use smtsim_pipeline::{DcraConfig, FetchPolicyKind, FixedRob, MachineConfig, Simulator};
use smtsim_workload::{mix, Workload};
use std::sync::Arc;

fn stressed(policy: FetchPolicyKind, mix_idx: usize, rob: usize, seed: u64) -> Simulator {
    let mut cfg = MachineConfig::icpp08();
    cfg.fetch_policy = policy;
    let wls = mix(mix_idx)
        .instantiate(seed)
        .into_iter()
        .map(Arc::new)
        .collect();
    Simulator::new(cfg, wls, Box::new(FixedRob::new(rob)), seed)
}

/// Steps `sim` for `cycles`, validating invariants every `interval`.
fn run_checked(sim: &mut Simulator, cycles: u64, interval: u64) {
    for c in 0..cycles {
        sim.step();
        if c % interval == 0 {
            if let Some(v) = sim.check_invariants() {
                panic!("invariant violated at cycle {}: {v}", sim.cycle());
            }
        }
    }
    if let Some(v) = sim.check_invariants() {
        panic!("invariant violated at end: {v}");
    }
}

#[test]
fn branchy_mix_under_icount_stays_consistent() {
    // parser/vpr/gzip mispredict constantly: the wrong-path fetch and
    // rename-rollback machinery gets a workout.
    let mut sim = stressed(FetchPolicyKind::Icount, 8, 32, 77);
    run_checked(&mut sim, 60_000, 97);
    let s = sim.stats();
    assert!(s.threads.iter().map(|t| t.mispredicts).sum::<u64>() > 100);
    assert!(s.total_committed() > 5_000);
}

#[test]
fn flush_policy_replay_preserves_the_trace() {
    // FLUSH squashes *correct-path* instructions and refetches them
    // from the replay queue; the commit-order debug assertion (active
    // in this build) proves no dynamic instance is lost or duplicated.
    let mut sim = stressed(FetchPolicyKind::Flush, 2, 32, 11);
    run_checked(&mut sim, 80_000, 101);
    let s = sim.stats();
    assert!(
        s.threads.iter().map(|t| t.squashed).sum::<u64>() > 100,
        "FLUSH must actually flush"
    );
    assert!(s.total_committed() > 3_000);
}

#[test]
fn stall_policy_stays_consistent() {
    let mut sim = stressed(FetchPolicyKind::Stall, 3, 32, 13);
    run_checked(&mut sim, 60_000, 103);
    assert!(sim.stats().total_committed() > 3_000);
}

#[test]
fn big_rob_under_dcra_stays_consistent() {
    let mut sim = stressed(FetchPolicyKind::Dcra(DcraConfig::default()), 1, 128, 17);
    run_checked(&mut sim, 60_000, 97);
    assert!(sim.stats().total_committed() > 3_000);
}

#[test]
fn tiny_structures_still_work() {
    // A deliberately starved machine: 1-wide-ish queues magnify every
    // structural-hazard path.
    let mut cfg = MachineConfig::icpp08();
    cfg.iq_size = 8;
    cfg.lsq_size = 4;
    cfg.fetch_queue = 4;
    cfg.int_regs = 144; // 16 renames per thread
    cfg.fp_regs = 144;
    let wls = mix(5).instantiate(23).into_iter().map(Arc::new).collect();
    let mut sim = Simulator::new(cfg, wls, Box::new(FixedRob::new(16)), 23);
    run_checked(&mut sim, 40_000, 53);
    assert!(sim.stats().total_committed() > 1_000);
}

#[test]
fn single_thread_with_warmup_stays_consistent() {
    let cfg = MachineConfig::icpp08_single();
    let wl = Arc::new(Workload::spec("mcf", 31, 0x1_0000, 0x1000_0000));
    let mut sim = Simulator::builder(cfg, vec![wl], Box::new(FixedRob::new(32)), 31)
        .warmup(30_000)
        .build()
        .expect("single-thread config is valid");
    run_checked(&mut sim, 50_000, 89);
    assert!(sim.stats().threads[0].committed > 1_000);
}

#[test]
fn seed_sweep_never_violates_invariants() {
    // Cheap fuzz: many short runs across seeds and mixes.
    for seed in 0..6u64 {
        for mix_idx in [1usize, 6, 11] {
            let mut sim = stressed(FetchPolicyKind::Icount, mix_idx, 32, seed);
            run_checked(&mut sim, 8_000, 41);
        }
    }
}
