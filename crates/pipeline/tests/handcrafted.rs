//! Handcrafted micro-programs: precise behavioural checks that the
//! synthetic workloads cannot pin down — mispredict recovery on a known
//! branch, store-to-load forwarding on a known pair, load serialization
//! behind unresolved stores, and NOP flow.

use smtsim_isa::{
    ArchReg, BasicBlock, BlockId, BranchBehavior, OpClass, Program, StaticInst, StreamId,
};
use smtsim_pipeline::{FixedRob, MachineConfig, Simulator, StopCondition};
use smtsim_workload::{StreamDesc, Workload, WorkloadProfile};
use std::sync::Arc;

/// Wraps a handcrafted program (plus stream table) into a Workload.
fn workload(program: Program, streams: Vec<StreamDesc>) -> Arc<Workload> {
    Arc::new(Workload {
        profile: WorkloadProfile::test_profile(),
        program,
        streams,
        static_missing_loads: 0,
        static_loads: 0,
        static_missing_dod: 0,
    })
}

fn machine(wl: Arc<Workload>, seed: u64) -> Simulator {
    let cfg = MachineConfig::icpp08_single();
    Simulator::new(cfg, vec![wl], Box::new(FixedRob::new(32)), seed)
}

/// A single hot-slot stream (stride 0) at `base`.
fn one_slot(base: u64) -> Vec<StreamDesc> {
    vec![StreamDesc::Hot {
        base,
        footprint: 8,
        stride: 0,
    }]
}

#[test]
fn pure_alu_loop_reaches_high_ipc() {
    // Independent single-cycle ALU ops in a tight predictable loop: the
    // machine should sustain several IPC (bounded by fetch group
    // breaks at the back edge).
    let r = |i: u8| ArchReg::int(i);
    let mut insts: Vec<StaticInst> = (1..=12)
        .map(|i| StaticInst::compute(OpClass::IntAlu, r(i), [None, None]))
        .collect();
    insts.push(StaticInst::branch(
        Some(r(1)),
        BranchBehavior::Loop { trip: 1 << 30 },
        BlockId(0),
    ));
    let p = Program::new(
        "alu-loop",
        vec![BasicBlock::new(insts, BlockId(0))],
        BlockId(0),
        0x1000,
    );
    let mut sim = machine(workload(p, vec![]), 1);
    let stats = sim.run(StopCondition::Cycles(10_000));
    let ipc = stats.threads[0].ipc(10_000);
    assert!(
        ipc > 2.0,
        "independent ALU loop should exceed 2 IPC, got {ipc}"
    );
}

#[test]
fn serial_dependency_chain_is_one_ipc_bound() {
    // r1 = alu(r1) chains serialize completely: IPC ≤ 1 regardless of
    // width.
    let r1 = ArchReg::int(1);
    let mut insts: Vec<StaticInst> = (0..12)
        .map(|_| StaticInst::compute(OpClass::IntAlu, r1, [Some(r1), None]))
        .collect();
    insts.push(StaticInst::branch(
        Some(r1),
        BranchBehavior::Loop { trip: 1 << 30 },
        BlockId(0),
    ));
    let p = Program::new(
        "chain-loop",
        vec![BasicBlock::new(insts, BlockId(0))],
        BlockId(0),
        0x1000,
    );
    let mut sim = machine(workload(p, vec![]), 1);
    let stats = sim.run(StopCondition::Cycles(10_000));
    let ipc = stats.threads[0].ipc(10_000);
    assert!(ipc <= 1.05, "serial chain cannot exceed 1 IPC, got {ipc}");
    assert!(ipc > 0.5, "chain should still retire steadily, got {ipc}");
}

#[test]
fn unbiased_branch_mispredicts_and_recovers() {
    // A 50/50 branch is unpredictable: mispredict rate near 50 %, with
    // squashes and full recovery (progress continues).
    // A real diamond: the 50/50 branch either skips block 1 (taken →
    // block 2) or falls into it, so direction changes the fetch path.
    let r1 = ArchReg::int(1);
    let b0 = BasicBlock::new(
        vec![
            StaticInst::compute(OpClass::IntAlu, r1, [None, None]),
            StaticInst::branch(
                Some(r1),
                BranchBehavior::Biased { taken_pm: 500 },
                BlockId(2),
            ),
        ],
        BlockId(1),
    );
    let b1 = BasicBlock::new(
        vec![StaticInst::nop(), StaticInst::nop(), StaticInst::nop()],
        BlockId(2),
    );
    let b2 = BasicBlock::new(
        vec![
            StaticInst::nop(),
            StaticInst::branch(None, BranchBehavior::Always, BlockId(0)),
        ],
        BlockId(0),
    );
    let p = Program::new("coinflip", vec![b0, b1, b2], BlockId(0), 0x1000);
    let mut sim = machine(workload(p, vec![]), 7);
    let stats = sim.run(StopCondition::AnyThreadCommitted(8_000));
    let t = &stats.threads[0];
    let rate = t.mispredict_rate();
    assert!(
        (0.25..=0.75).contains(&rate),
        "50/50 branch should mispredict ~half the time, got {rate}"
    );
    assert!(t.squashed > 100, "mispredicts must squash wrong-path work");
    assert!(t.committed >= 8_000, "machine must keep making progress");
    if let Some(v) = sim.check_invariants() {
        panic!("invariants violated after recovery storm: {v}");
    }
}

#[test]
fn store_load_pair_forwards() {
    // store [slot] ; load [slot] — every load forwards from the
    // in-flight store (same 8-byte chunk, stride-0 stream).
    let r = |i: u8| ArchReg::int(i);
    let insts = vec![
        StaticInst::compute(OpClass::IntAlu, r(2), [None, None]),
        StaticInst::store(Some(r(2)), Some(r(3)), StreamId(0)),
        StaticInst::load(r(4), Some(r(3)), StreamId(0)),
        StaticInst::compute(OpClass::IntAlu, r(5), [Some(r(4)), None]),
        StaticInst::branch(
            Some(r(5)),
            BranchBehavior::Loop { trip: 1 << 30 },
            BlockId(0),
        ),
    ];
    let p = Program::new(
        "fwd",
        vec![BasicBlock::new(insts, BlockId(0))],
        BlockId(0),
        0x1000,
    );
    let mut sim = machine(workload(p, one_slot(0x10_0000)), 3);
    let stats = sim.run(StopCondition::AnyThreadCommitted(5_000));
    let t = &stats.threads[0];
    assert!(t.loads > 500);
    assert!(
        t.forwarded_loads * 10 >= t.loads * 8,
        "most loads should forward: {} of {}",
        t.forwarded_loads,
        t.loads
    );
}

#[test]
fn loads_wait_for_older_store_addresses() {
    // A store whose address operand comes off a long-latency divide
    // delays the younger load (conservative disambiguation): IPC is
    // div-latency bound.
    let r = |i: u8| ArchReg::int(i);
    let insts = vec![
        StaticInst::compute(OpClass::IntDiv, r(2), [Some(r(2)), None]),
        StaticInst::store(Some(r(1)), Some(r(2)), StreamId(0)),
        StaticInst::load(r(4), Some(r(3)), StreamId(0)),
        StaticInst::branch(
            Some(r(4)),
            BranchBehavior::Loop { trip: 1 << 30 },
            BlockId(0),
        ),
    ];
    let p = Program::new(
        "disamb",
        vec![BasicBlock::new(insts, BlockId(0))],
        BlockId(0),
        0x1000,
    );
    let mut sim = machine(workload(p, one_slot(0x10_0000)), 3);
    let stats = sim.run(StopCondition::Cycles(20_000));
    // 4 instructions per ~20-cycle divide ⇒ IPC ≈ 0.2; anything near 1
    // would mean loads bypassed the unresolved store.
    let ipc = stats.threads[0].ipc(20_000);
    assert!(
        ipc < 0.45,
        "load must wait for the store's address: IPC {ipc}"
    );
}

#[test]
fn nops_commit_without_issue_resources() {
    let mut insts: Vec<StaticInst> = (0..10).map(|_| StaticInst::nop()).collect();
    insts.push(StaticInst::branch(
        None,
        BranchBehavior::Loop { trip: 1 << 30 },
        BlockId(0),
    ));
    let p = Program::new(
        "nops",
        vec![BasicBlock::new(insts, BlockId(0))],
        BlockId(0),
        0x1000,
    );
    let mut sim = machine(workload(p, vec![]), 1);
    let stats = sim.run(StopCondition::AnyThreadCommitted(5_000));
    let t = &stats.threads[0];
    assert!(t.committed >= 5_000);
    // Only the loop branches needed the IQ; issued counts them alone.
    assert!(
        t.issued < t.committed / 5,
        "NOPs must not issue: {}",
        t.issued
    );
}

#[test]
fn fp_divide_throughput_matches_unit_occupancy() {
    // Independent FP divides: 4 unpipelined units × 12-cycle occupancy
    // ⇒ at most one divide per 3 cycles.
    let f = |i: u8| ArchReg::fp(i);
    let mut insts: Vec<StaticInst> = (1..=8)
        .map(|i| StaticInst::compute(OpClass::FpDiv, f(i), [None, None]))
        .collect();
    insts.push(StaticInst::branch(
        Some(ArchReg::int(1)),
        BranchBehavior::Loop { trip: 1 << 30 },
        BlockId(0),
    ));
    let p = Program::new(
        "divs",
        vec![BasicBlock::new(insts, BlockId(0))],
        BlockId(0),
        0x1000,
    );
    let mut sim = machine(workload(p, vec![]), 1);
    let stats = sim.run(StopCondition::Cycles(12_000));
    let divides = stats.threads[0].committed as f64 * 8.0 / 9.0;
    let per_cycle = divides / 12_000.0;
    assert!(
        per_cycle < 4.0 / 12.0 * 1.15,
        "FP divide throughput {per_cycle:.3} exceeds 4 units / 12-cycle occupancy"
    );
}
