//! End-to-end tests of the SMT pipeline substrate.

use smtsim_pipeline::{
    DcraConfig, FetchPolicyKind, FixedRob, MachineConfig, Simulator, StopCondition,
};
use smtsim_workload::{mix, Workload};
use std::sync::Arc;

fn single(bench: &str, seed: u64) -> Simulator {
    let cfg = MachineConfig::icpp08_single();
    let wl = Arc::new(Workload::spec(bench, seed, 0x1_0000, 0x1000_0000));
    Simulator::new(cfg, vec![wl], Box::new(FixedRob::new(32)), seed)
}

fn quad(mix_idx: usize, rob: usize, policy: FetchPolicyKind, seed: u64) -> Simulator {
    let mut cfg = MachineConfig::icpp08();
    cfg.fetch_policy = policy;
    let wls = mix(mix_idx)
        .instantiate(seed)
        .into_iter()
        .map(Arc::new)
        .collect();
    Simulator::new(cfg, wls, Box::new(FixedRob::new(rob)), seed)
}

#[test]
fn single_thread_commits_and_makes_progress() {
    let mut sim = single("gzip", 1);
    let stats = sim.run(StopCondition::AnyThreadCommitted(20_000));
    assert!(stats.threads[0].committed >= 20_000);
    let ipc = stats.threads[0].ipc(stats.cycles);
    assert!(ipc > 0.3, "gzip IPC too low: {ipc}");
    assert!(ipc < 8.0, "IPC cannot exceed machine width: {ipc}");
}

#[test]
fn high_ilp_beats_memory_bound_single_thread() {
    let run = |b: &str| {
        let mut sim = single(b, 3);
        let s = sim.run(StopCondition::AnyThreadCommitted(30_000));
        s.threads[0].ipc(s.cycles)
    };
    let swim = run("swim");
    let mcf_like = run("art");
    assert!(
        swim > 2.0 * mcf_like,
        "execution-bound swim ({swim}) should far outrun memory-bound art ({mcf_like})"
    );
}

#[test]
fn memory_bound_thread_sees_l2_misses() {
    let mut sim = single("art", 5);
    let stats = sim.run(StopCondition::AnyThreadCommitted(30_000));
    let t = &stats.threads[0];
    assert!(
        t.l2_misses > 50,
        "art must miss the L2 ({} misses)",
        t.l2_misses
    );
    assert!(t.loads > 1_000);
    // Misses per kilo-instruction should be material for a Low-class
    // benchmark.
    let mpki = t.l2_misses as f64 * 1000.0 / t.committed as f64;
    assert!(mpki > 3.0, "art MPKI {mpki}");
}

#[test]
fn cache_friendly_thread_mostly_hits() {
    // Warm-up (code + hot regions) dominates short runs; at 100k
    // commits the residual rate must be far below the memory-bound
    // benchmarks' (compare `memory_bound_thread_sees_l2_misses`).
    let mut sim = single("bzip2", 5);
    let stats = sim.run(StopCondition::AnyThreadCommitted(100_000));
    let t = &stats.threads[0];
    let mpki = t.l2_misses as f64 * 1000.0 / t.committed as f64;
    assert!(mpki < 12.0, "bzip2 MPKI {mpki} too high");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sim = single("parser", 11);
        let s = sim.run(StopCondition::AnyThreadCommitted(10_000));
        (
            s.cycles,
            s.threads[0].committed,
            s.threads[0].mispredicts,
            s.threads[0].l2_misses,
            s.threads[0].squashed,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn branch_predictor_learns_loops() {
    let mut sim = single("swim", 7);
    sim.run(StopCondition::AnyThreadCommitted(30_000));
    let acc = sim.branch_accuracy();
    assert!(acc > 0.85, "loop-dominated swim should predict well: {acc}");
}

#[test]
fn mispredicts_occur_and_recover() {
    let mut sim = single("parser", 13);
    let stats = sim.run(StopCondition::AnyThreadCommitted(20_000));
    let t = &stats.threads[0];
    assert!(
        t.mispredicts > 10,
        "branchy parser must mispredict sometimes"
    );
    assert!(t.squashed > 0, "mispredicts must squash wrong-path work");
    assert!(
        t.wrong_path_fetched > 0,
        "wrong-path fetch must inject instructions"
    );
}

#[test]
fn four_thread_mix_runs_all_threads() {
    let mut sim = quad(1, 32, FetchPolicyKind::Icount, 21);
    let stats = sim.run(StopCondition::AnyThreadCommitted(10_000));
    for (i, t) in stats.threads.iter().enumerate() {
        assert!(t.committed > 500, "thread {i} starved: {}", t.committed);
    }
    assert!(stats.throughput_ipc() > 0.2);
}

#[test]
fn dcra_runs_mixes() {
    let mut sim = quad(9, 32, FetchPolicyKind::Dcra(DcraConfig::default()), 23);
    let stats = sim.run(StopCondition::AnyThreadCommitted(10_000));
    assert!(stats.total_committed() > 20_000);
}

#[test]
fn stall_and_flush_policies_run() {
    for p in [FetchPolicyKind::Stall, FetchPolicyKind::Flush] {
        let mut sim = quad(2, 32, p, 25);
        let stats = sim.run(StopCondition::AnyThreadCommitted(5_000));
        assert!(stats.total_committed() > 5_000, "{p:?}");
    }
}

#[test]
fn round_robin_policy_runs() {
    let mut sim = quad(10, 32, FetchPolicyKind::RoundRobin, 29);
    let stats = sim.run(StopCondition::AnyThreadCommitted(8_000));
    assert!(stats.total_committed() > 16_000);
}

#[test]
fn rob_capacity_bounds_occupancy() {
    let mut sim = single("art", 31);
    sim.run(StopCondition::Cycles(50_000));
    let s = sim.stats();
    // Average ROB occupancy can never exceed the 32-entry cap.
    let avg = s.threads[0].rob_occupancy_sum as f64 / 50_000.0;
    assert!(avg <= 32.0, "avg occupancy {avg}");
    assert!(avg > 5.0, "memory-bound thread should keep its ROB busy");
}

#[test]
fn memory_bound_thread_fills_its_rob() {
    // With a long-latency miss at the head, a 32-entry ROB should be
    // full much of the time (the paper's motivation for the second
    // level).
    let mut sim = single("art", 33);
    sim.run(StopCondition::Cycles(100_000));
    let s = sim.stats();
    assert!(
        s.threads[0].rob_stall_cycles > 10_000,
        "rob stalls: {}",
        s.threads[0].rob_stall_cycles
    );
}

#[test]
fn dod_histogram_sampled_at_fills() {
    let mut sim = single("ammp", 35);
    sim.run(StopCondition::AnyThreadCommitted(30_000));
    let h = &sim.stats().dod_at_fill;
    assert!(h.samples > 50, "expected many fill samples: {}", h.samples);
    // The paper's Figure 1: typical dependent counts are small.
    assert!(h.mean() < 16.0, "mean DoD {}", h.mean());
}

#[test]
fn stop_conditions_respected() {
    let mut sim = single("gzip", 37);
    sim.run(StopCondition::Cycles(1_000));
    assert_eq!(sim.cycle(), 1_000);

    let mut sim2 = single("gzip", 37);
    let s = sim2.run(StopCondition::TotalCommitted(2_000));
    assert!(s.total_committed() >= 2_000);
}

#[test]
fn larger_rob_helps_single_memory_bound_thread() {
    // Single-threaded: no shared-resource contention, so a bigger
    // window should exploit MLP in `art`'s independent-miss streams.
    let ipc = |rob: usize| {
        let cfg = MachineConfig::icpp08_single();
        let wl = Arc::new(Workload::spec("art", 41, 0x1_0000, 0x1000_0000));
        let mut sim = Simulator::new(cfg, vec![wl], Box::new(FixedRob::new(rob)), 41);
        let s = sim.run(StopCondition::AnyThreadCommitted(30_000));
        s.threads[0].ipc(s.cycles)
    };
    let small = ipc(32);
    let big = ipc(128);
    assert!(
        big > small * 1.1,
        "ROB 128 ({big}) should beat ROB 32 ({small}) for one thread"
    );
}

#[test]
fn loadhit_predictor_trained() {
    let mut sim = single("gzip", 43);
    sim.run(StopCondition::AnyThreadCommitted(20_000));
    assert!(sim.loadhit_accuracy() > 0.7);
}

#[test]
fn store_forwarding_happens() {
    let mut sim = single("vortex", 45);
    let stats = sim.run(StopCondition::AnyThreadCommitted(30_000));
    assert!(
        stats.threads[0].forwarded_loads > 0,
        "hot-region loads should sometimes forward from stores"
    );
}

#[test]
fn iq_occupancy_tracked() {
    let mut sim = quad(1, 32, FetchPolicyKind::Icount, 47);
    sim.run(StopCondition::Cycles(50_000));
    let avg = sim.stats().avg_iq_occupancy();
    assert!(avg > 0.5 && avg <= 64.0, "avg IQ occupancy {avg}");
}

#[test]
fn cycle_budget_fires_as_cell_timeout_at_exact_cycle() {
    use smtsim_pipeline::{RunBudget, SimError};
    let mut sim = single("mcf", 3);
    sim.set_run_budget(RunBudget::cycles(1_000));
    match sim.try_run(StopCondition::AnyThreadCommitted(u64::MAX)) {
        Err(SimError::CellTimeout { cycle, detail }) => {
            assert_eq!(cycle, 1_000);
            assert!(detail.contains("cycle budget of 1000"));
        }
        other => panic!("expected CellTimeout, got {other:?}"),
    }
    // Stats stay coherent up to the firing cycle.
    assert_eq!(sim.stats().cycles, 1_000);
}

#[test]
fn cancel_token_terminates_run() {
    use smtsim_pipeline::{CancelToken, RunBudget, SimError};
    let token = CancelToken::new();
    token.cancel(); // pre-cancelled: fires at the first poll point
    let mut sim = single("gzip", 5);
    sim.set_run_budget(RunBudget {
        token: Some(token),
        ..RunBudget::default()
    });
    match sim.try_run(StopCondition::AnyThreadCommitted(u64::MAX)) {
        Err(SimError::CellTimeout { detail, .. }) => {
            assert!(detail.contains("cancelled"));
        }
        other => panic!("expected CellTimeout, got {other:?}"),
    }
}

#[test]
fn unlimited_budget_changes_nothing() {
    let mut a = single("gzip", 9);
    let mut b = single("gzip", 9);
    b.set_run_budget(smtsim_pipeline::RunBudget::unlimited());
    let sa = a.run(StopCondition::AnyThreadCommitted(5_000)).clone();
    let sb = b.run(StopCondition::AnyThreadCommitted(5_000)).clone();
    assert_eq!(format!("{sa:?}"), format!("{sb:?}"));
}
