//! Property tests of the pipeline: accounting invariants and
//! determinism hold for arbitrary benchmark × seed × machine-shape
//! combinations.

use proptest::prelude::*;
use smtsim_pipeline::{FaultPlan, FixedRob, MachineConfig, Simulator, StopCondition};
use smtsim_workload::{spec, Workload};
use std::sync::Arc;

fn arb_bench() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(spec::BENCHMARKS.to_vec())
}

fn run_one(bench: &str, seed: u64, rob: usize, cycles: u64) -> Simulator {
    let cfg = MachineConfig::icpp08_single();
    let wl = Arc::new(Workload::spec(bench, seed, 0x1_0000, 0x1000_0000));
    let mut sim = Simulator::new(cfg, vec![wl], Box::new(FixedRob::new(rob)), seed);
    sim.run(StopCondition::Cycles(cycles));
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn counting_invariants_hold(bench in arb_bench(), seed in 0u64..64, rob in prop::sample::select(vec![8usize, 32, 128])) {
        let sim = run_one(bench, seed, rob, 30_000);
        let t = &sim.stats().threads[0];
        // Conservation: everything fetched is dispatched, squashed
        // while fetched, or still in flight; dispatched ≥ issued ≥ 0;
        // committed ≤ dispatched.
        prop_assert!(t.dispatched <= t.fetched);
        prop_assert!(t.committed <= t.dispatched);
        prop_assert!(t.committed + t.squashed <= t.fetched);
        prop_assert!(t.issued <= t.dispatched);
        // Rate bounds.
        prop_assert!(t.committed <= 8 * 30_000, "cannot exceed commit width");
        prop_assert!(t.l2_misses <= t.loads + t.fetched, "misses bounded by memory ops");
        prop_assert!(t.mispredicts <= t.branches + 64, "mispredicts bounded by branches (+unconds in flight)");
    }

    #[test]
    fn four_thread_invariants_hold(mix_idx in 1usize..=11, seed in 0u64..16) {
        let cfg = MachineConfig::icpp08();
        let wls = smtsim_workload::mix(mix_idx)
            .instantiate(seed)
            .into_iter()
            .map(Arc::new)
            .collect();
        let mut sim = Simulator::new(cfg, wls, Box::new(FixedRob::new(32)), seed);
        sim.run(StopCondition::Cycles(15_000));
        let s = sim.stats();
        for t in &s.threads {
            prop_assert!(t.committed <= t.dispatched);
            prop_assert!(t.issued <= t.dispatched);
        }
        // The shared IQ can never exceed its size on average.
        prop_assert!(s.iq_occupancy_sum <= 64 * 15_000);
        // Progress: at least one thread must commit in 15k cycles.
        prop_assert!(s.total_committed() > 0, "machine must make progress");
    }

    #[test]
    fn simulation_is_deterministic(bench in arb_bench(), seed in 0u64..32) {
        let digest = |sim: &Simulator| {
            let t = &sim.stats().threads[0];
            (t.committed, t.fetched, t.squashed, t.l2_misses, t.mispredicts)
        };
        let a = run_one(bench, seed, 32, 10_000);
        let b = run_one(bench, seed, 32, 10_000);
        prop_assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn warmup_commutes_with_budget(bench in arb_bench(), seed in 0u64..16, warm in prop::sample::select(vec![0u64, 5_000, 20_000])) {
        // Warm-up must never break the machine — the run still commits.
        let cfg = MachineConfig::icpp08_single();
        let wl = Arc::new(Workload::spec(bench, seed, 0x1_0000, 0x1000_0000));
        let mut sim = Simulator::builder(cfg, vec![wl], Box::new(FixedRob::new(32)), seed)
            .warmup(warm)
            .build()
            .expect("single-thread config is valid");
        let stats = sim.run(StopCondition::AnyThreadCommitted(3_000));
        prop_assert!(stats.threads[0].committed >= 3_000);
    }

    #[test]
    fn rob_capacity_is_respected(bench in arb_bench(), rob in prop::sample::select(vec![4usize, 16, 48])) {
        let mut sim = {
            let cfg = MachineConfig::icpp08_single();
            let wl = Arc::new(Workload::spec(bench, 3, 0x1_0000, 0x1000_0000));
            Simulator::new(cfg, vec![wl], Box::new(FixedRob::new(rob)), 3)
        };
        sim.run(StopCondition::Cycles(20_000));
        let avg = sim.stats().threads[0].rob_occupancy_sum as f64 / 20_000.0;
        prop_assert!(avg <= rob as f64 + 1e-9, "avg occupancy {avg} exceeds capacity {rob}");
    }

    #[test]
    fn random_fault_plans_never_panic(
        mix_idx in 1usize..=11,
        seed in 0u64..8,
        fseed in 0u64..1024,
        drop in prop::sample::select(vec![0u32, 1, 7, 64]),
        delay in prop::sample::select(vec![0u32, 1, 5]),
        corrupt in prop::sample::select(vec![0u32, 1, 3]),
        withhold in prop::sample::select(vec![0u32, 1, 2]),
        latch in any::<bool>(),
        starve in any::<bool>(),
    ) {
        // Whatever the plan, the outcome is a clean run or a typed
        // SimError — never a panic or a hang past the watchdog.
        let plan = FaultPlan {
            seed: fseed,
            drop_fill: drop,
            delay_fill: delay,
            delay_cycles: 700,
            corrupt_dod: corrupt,
            withhold_release: withhold,
            capacity_latch: latch,
            capacity_zero_after: starve.then_some(2_000),
        };
        let mut cfg = MachineConfig::icpp08();
        cfg.deadlock_cycles = 3_000;
        cfg.invariant_interval = 256;
        let wls = smtsim_workload::mix(mix_idx)
            .instantiate(seed)
            .into_iter()
            .map(Arc::new)
            .collect();
        let mut sim = Simulator::builder(cfg, wls, Box::new(FixedRob::new(32)), seed)
            .fault_plan(plan)
            .build()
            .expect("Table 1 config is valid");
        match sim.try_run(StopCondition::Cycles(10_000)) {
            Ok(stats) => prop_assert!(stats.total_committed() > 0),
            Err(e) => prop_assert!(!e.kind().is_empty()),
        }
    }

    #[test]
    fn dod_histogram_counts_are_bounded(bench in prop::sample::select(vec!["art", "mcf", "parser", "ammp"]), seed in 0u64..16) {
        let sim = run_one(bench, seed, 32, 40_000);
        let h = &sim.stats().dod_at_fill;
        // 5-bit counter semantics: bins 0..=31 and sum consistent.
        prop_assert_eq!(h.bins().len(), 32);
        prop_assert_eq!(h.bins().iter().sum::<u64>(), h.samples);
        if h.samples > 0 {
            prop_assert!(h.mean() <= 31.0);
        }
    }
}
