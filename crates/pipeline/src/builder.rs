//! Typed construction for [`Simulator`]: one fluent path covering DoD
//! bounds, fault plans, warmup and tracing.
//!
//! Replaces the construct-then-mutate pattern
//! (`Simulator::try_new` + `set_dod_bounds` + `set_fault_plan` +
//! `warmup`) with a builder whose `build()` applies the pieces in a
//! fixed order — construct, install bounds, install the fault plan,
//! functional warmup, then enable tracing — so results are
//! bit-identical to the historical call sequence and warmup never
//! pollutes a collected trace.
//!
//! ```
//! use smtsim_pipeline::{FixedRob, MachineConfig, Simulator, StopCondition};
//! use smtsim_workload::Workload;
//! use std::sync::Arc;
//!
//! let cfg = MachineConfig::icpp08_single();
//! let wl = Arc::new(Workload::spec("gzip", 1, 0x1_0000, 0x1000_0000));
//! let mut sim = Simulator::builder(cfg, vec![wl], Box::new(FixedRob::new(32)), 7)
//!     .warmup(10_000)
//!     .build()
//!     .expect("valid configuration");
//! let stats = sim.run(StopCondition::AnyThreadCommitted(5_000));
//! assert!(stats.threads[0].committed >= 5_000);
//! ```

use crate::budget::RunBudget;
use crate::config::MachineConfig;
use crate::core::Simulator;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::rob_policy::{DodBounds, RobAllocator};
use smtsim_obs::{NoopTracer, Tracer};
use smtsim_workload::Workload;
use std::sync::Arc;

/// Builder for [`Simulator`]; start with
/// [`Simulator::builder`].
pub struct SimulatorBuilder<T: Tracer = NoopTracer> {
    cfg: MachineConfig,
    workloads: Vec<Arc<Workload>>,
    alloc: Box<dyn RobAllocator>,
    seed: u64,
    dod_bounds: Option<Vec<DodBounds>>,
    fault_plan: Option<FaultPlan>,
    warmup_insts: u64,
    budget: RunBudget,
    cycle_skip: bool,
    tracer: T,
}

impl SimulatorBuilder {
    /// Starts a builder over the mandatory pieces (equivalent to the
    /// old `try_new` arguments).
    pub fn new(
        cfg: MachineConfig,
        workloads: Vec<Arc<Workload>>,
        alloc: Box<dyn RobAllocator>,
        seed: u64,
    ) -> Self {
        SimulatorBuilder {
            cfg,
            workloads,
            alloc,
            seed,
            dod_bounds: None,
            fault_plan: None,
            warmup_insts: 0,
            budget: RunBudget::default(),
            cycle_skip: true,
            tracer: NoopTracer,
        }
    }
}

impl<T: Tracer> SimulatorBuilder<T> {
    /// Installs static DoD bound tables, one per hardware thread,
    /// enabling the oracle cross-check at every correct-path L2 fill.
    /// A table-count mismatch surfaces as [`SimError::InvalidConfig`]
    /// from [`SimulatorBuilder::build`].
    #[must_use]
    pub fn dod_bounds(mut self, bounds: Vec<DodBounds>) -> Self {
        self.dod_bounds = Some(bounds);
        self
    }

    /// Installs a deterministic fault-injection plan.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Installs watchdog ceilings ([`RunBudget`]) enforced
    /// cooperatively inside every subsequent `try_run` on the built
    /// simulator; the default budget is unlimited. The warmup phase is
    /// not metered — ceilings apply to timed cycles only.
    #[must_use]
    pub fn run_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Functionally warms caches and predictors with
    /// `insts_per_thread` instructions per thread before any timed
    /// cycle (0 = no warmup).
    #[must_use]
    pub fn warmup(mut self, insts_per_thread: u64) -> Self {
        self.warmup_insts = insts_per_thread;
        self
    }

    /// Enables or disables event-driven cycle skipping (default:
    /// enabled). Skipping is an execution-speed optimization that is
    /// provably timing-transparent — statistics, traces and stop
    /// cycles are identical either way — so the switch exists for
    /// validation harnesses (`SMTSIM_NO_SKIP`) that prove exactly
    /// that, not for tuning results.
    #[must_use]
    pub fn cycle_skip(mut self, enabled: bool) -> Self {
        self.cycle_skip = enabled;
        self
    }

    /// Swaps in a tracer, changing the simulator's type: the default
    /// [`NoopTracer`] compiles every emission site away; a collecting
    /// tracer (e.g. [`smtsim_obs::TraceLog`]) records the structured
    /// event stream. Tracing starts *after* warmup.
    #[must_use]
    pub fn tracer<U: Tracer>(self, tracer: U) -> SimulatorBuilder<U> {
        SimulatorBuilder {
            cfg: self.cfg,
            workloads: self.workloads,
            alloc: self.alloc,
            seed: self.seed,
            dod_bounds: self.dod_bounds,
            fault_plan: self.fault_plan,
            warmup_insts: self.warmup_insts,
            budget: self.budget,
            cycle_skip: self.cycle_skip,
            tracer,
        }
    }

    /// Builds the simulator: validates the configuration, installs the
    /// optional pieces in the canonical order (bounds → fault plan →
    /// warmup) and arms tracing hooks last so warmup leaves no events.
    pub fn build(self) -> Result<Simulator<T>, SimError> {
        let mut sim =
            Simulator::construct(self.cfg, self.workloads, self.alloc, self.seed, self.tracer)?;
        if let Some(bounds) = self.dod_bounds {
            sim.install_dod_bounds(bounds)?;
        }
        if let Some(plan) = self.fault_plan {
            sim.install_fault_plan(plan);
        }
        if self.warmup_insts > 0 {
            sim.run_warmup(self.warmup_insts);
        }
        sim.set_run_budget(self.budget);
        sim.set_cycle_skip(self.cycle_skip);
        if T::ENABLED {
            sim.alloc.set_tracing(true);
            sim.mem.set_tracing(true);
        }
        Ok(sim)
    }
}
