//! Reorder-buffer capacity policy abstraction.
//!
//! The pipeline treats ROB capacity as a per-thread, per-cycle quantity
//! supplied by a [`RobAllocator`]. The plain machine uses [`FixedRob`]
//! (the paper's Baseline_32 / Baseline_128); the paper's contribution —
//! the two-level ROB schemes — lives in the `smtsim-rob2` crate and
//! plugs in through the same trait.
//!
//! The allocator observes the machine through [`RobQuery`], which
//! exposes exactly what the paper's hardware mechanism can see: ROB
//! occupancies, the oldest-instruction identity, and the count of
//! not-yet-executed ("result valid" bit clear) entries behind a given
//! instruction — the low-complexity Degree-of-Dependence counter of
//! §4.1.

use smtsim_isa::ThreadId;
use smtsim_mem::Cycle;
use std::collections::BTreeMap;

/// Entries the paper's 5-bit DoD counter scans: the 32-entry first
/// level minus the missing load itself.
pub const DOD_WINDOW: usize = 31;

/// Static per-load upper bounds on the number of *register-dependent*
/// instructions that can appear within the first [`DOD_WINDOW`] younger
/// instructions of a load, computed offline by the `smtsim-analysis`
/// dependence pass over the workload's program and installed via
/// `SimulatorBuilder::dod_bounds`.
///
/// The pipeline uses the table as an oracle: at every L2 fill it walks
/// the register taint forward from the load over the younger
/// correct-path ROB entries — the *exact* dependent count the hardware
/// DoD counter of §4.1 approximates — and checks it never exceeds the
/// static bound. Note the oracle constrains the exact count, not the
/// hardware counter itself: the counter reads "unexecuted", which also
/// picks up independent instructions stalled behind overlapping misses,
/// so it may legitimately exceed the static dependence bound. The gap
/// between the two is recorded as the counter-error statistics.
#[derive(Clone, Debug, Default)]
pub struct DodBounds {
    max: BTreeMap<u64, u32>,
}

impl DodBounds {
    /// Wraps a `load pc -> static max dependents` table.
    pub fn new(max: BTreeMap<u64, u32>) -> Self {
        DodBounds { max }
    }

    /// The static bound for the load at `pc`, if analyzed.
    pub fn lookup(&self, pc: u64) -> Option<u32> {
        self.max.get(&pc).copied()
    }

    /// Number of loads with a bound.
    pub fn len(&self) -> usize {
        self.max.len()
    }

    /// True when no load has a bound.
    pub fn is_empty(&self) -> bool {
        self.max.is_empty()
    }
}

/// Read-only view of the ROBs offered to allocation policies.
pub trait RobQuery {
    /// Number of threads.
    fn num_threads(&self) -> usize;
    /// Current ROB occupancy of `thread`.
    fn occupancy(&self, thread: ThreadId) -> usize;
    /// Tag of the oldest in-flight instruction, if any.
    fn oldest_tag(&self, thread: ThreadId) -> Option<u64>;
    /// Is `tag` still in flight for `thread`?
    fn in_flight(&self, thread: ThreadId, tag: u64) -> bool;
    /// The paper's DoD counter: scans ROB entries *younger* than `tag`
    /// whose position from the ROB head is below `window`, counting
    /// those with the result-valid bit clear. Returns `None` if `tag`
    /// is no longer in flight.
    fn count_unexecuted_younger(&self, thread: ThreadId, tag: u64, window: usize) -> Option<u32>;
    /// Does `thread` have an in-flight load with a detected,
    /// not-yet-filled L2 miss?
    fn has_pending_l2_miss(&self, thread: ThreadId) -> bool;
}

/// Notification of an L2-miss lifecycle event delivered to the
/// allocator.
#[derive(Clone, Copy, Debug)]
pub struct MissEvent {
    /// Thread owning the load.
    pub thread: ThreadId,
    /// The load's ROB tag.
    pub tag: u64,
    /// The load's PC (for DoD prediction).
    pub pc: u64,
    /// Branch-history snapshot of the thread at the load (for the
    /// path-qualified predictor).
    pub hist: u16,
    /// The load is on a mispredicted (wrong) path.
    pub wrong_path: bool,
}

/// A ROB capacity policy.
pub trait RobAllocator {
    /// Effective ROB capacity for `thread` this cycle. Dispatch stalls
    /// the thread when its occupancy reaches this value.
    fn capacity(&self, thread: ThreadId) -> usize;

    /// Called once per cycle (after writeback, before dispatch) so the
    /// policy can run its timers/rechecks and perform allocations.
    fn tick(&mut self, view: &dyn RobQuery, now: Cycle);

    /// An L2 miss was detected for a load.
    fn on_l2_miss(&mut self, view: &dyn RobQuery, ev: MissEvent, now: Cycle);

    /// The fill for an L2-missing load arrived (the load completes).
    /// `counted_dod` is the hardware count of unexecuted instructions
    /// behind the load at fill time (predictor training data, §4.2).
    fn on_l2_fill(&mut self, view: &dyn RobQuery, ev: MissEvent, counted_dod: u32, now: Cycle);

    /// `thread` squashed all instructions with tags >= `first_tag` at
    /// cycle `now` (so policies can timestamp squash-driven state
    /// transitions, e.g. the start of a tenure drain).
    fn on_squash(&mut self, thread: ThreadId, first_tag: u64, now: Cycle);

    /// Human-readable policy name for reports.
    fn name(&self) -> String;

    /// Total ROB entries a single thread could ever hold (used for
    /// sizing diagnostics); for two-level designs this is L1 + L2.
    fn max_capacity(&self) -> usize;

    /// Upper bound on the *total* ROB entries the machine may hold
    /// across all threads under this policy — the conservation law the
    /// simulator's per-cycle integrity check enforces (Σ occupancy must
    /// never exceed it, even while capacity grants shrink below
    /// occupancy during a drain).
    ///
    /// The default — every thread simultaneously at `max_capacity` —
    /// is exact for fixed partitions; policies that share structure
    /// between threads (a two-level ROB shares its second level)
    /// override it with the tighter physical budget.
    fn conservation_bound(&self, num_threads: usize) -> usize {
        num_threads * self.max_capacity()
    }

    /// Deep self-audit: verify the policy's internal bookkeeping is
    /// consistent with the machine state it has been told about,
    /// returning a description of the first inconsistency. Called by
    /// the simulator's periodic invariant scan
    /// (`MachineConfig::invariant_interval`); `None` = consistent.
    fn audit(&self, _view: &dyn RobQuery) -> Option<String> {
        None
    }

    /// Downcast hook so harnesses can retrieve policy-specific
    /// statistics after a run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Enables or disables event tracing inside the policy. Policies
    /// that emit [`smtsim_obs::TraceEvent`]s buffer them internally
    /// (they cannot reach the simulator's tracer directly — the
    /// allocator is a trait object below the generic); the simulator
    /// drains the buffer once per cycle via
    /// [`RobAllocator::drain_trace`]. Default: tracing unsupported.
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Drains the policy's buffered trace events (empty unless
    /// [`RobAllocator::set_tracing`] enabled buffering).
    fn drain_trace(&mut self) -> Vec<(Cycle, smtsim_obs::TraceEvent)> {
        Vec::new()
    }

    /// Cycle-skip contract: the earliest future cycle at which this
    /// policy's [`RobAllocator::tick`] may do *anything* (allocate,
    /// release, emit a trace event, mutate statistics other than
    /// through [`RobAllocator::on_cycles_skipped`]) given the current
    /// machine state, assuming no event, commit, dispatch, fetch or
    /// squash happens in the meantime. Returning `Some(c)` promises
    /// every tick strictly before `c` is a no-op on a quiescent
    /// machine, licensing the simulator to skip those cycles; return
    /// [`Cycle::MAX`] when tick never acts. The default `None` vetoes
    /// skipping entirely — the conservative answer for policies written
    /// before this hook existed.
    fn skip_quiesce(&self, _view: &dyn RobQuery) -> Option<Cycle> {
        None
    }

    /// The simulator skipped `skipped` quiescent cycles in one jump;
    /// policies with per-cycle accumulators (e.g. a held-extension
    /// cycle counter bumped in `tick`) replicate them here so
    /// statistics match the unskipped execution exactly.
    fn on_cycles_skipped(&mut self, _skipped: u64) {}
}

/// Fixed private per-thread ROBs — the paper's baseline machines
/// (`Baseline_32`, `Baseline_128`).
#[derive(Clone, Debug)]
pub struct FixedRob {
    entries: usize,
}

impl FixedRob {
    /// Creates the baseline policy with `entries` per thread.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        FixedRob { entries }
    }
}

impl RobAllocator for FixedRob {
    fn capacity(&self, _thread: ThreadId) -> usize {
        self.entries
    }

    fn tick(&mut self, _view: &dyn RobQuery, _now: Cycle) {}

    fn on_l2_miss(&mut self, _view: &dyn RobQuery, _ev: MissEvent, _now: Cycle) {}

    fn on_l2_fill(&mut self, _view: &dyn RobQuery, _ev: MissEvent, _dod: u32, _now: Cycle) {}

    fn on_squash(&mut self, _thread: ThreadId, _first_tag: u64, _now: Cycle) {}

    fn name(&self) -> String {
        format!("Baseline_{}", self.entries)
    }

    fn max_capacity(&self) -> usize {
        self.entries
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    /// The baseline's tick never acts: quiescent forever.
    fn skip_quiesce(&self, _view: &dyn RobQuery) -> Option<Cycle> {
        Some(Cycle::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rob_reports_constant_capacity() {
        let f = FixedRob::new(32);
        assert_eq!(f.capacity(0), 32);
        assert_eq!(f.capacity(3), 32);
        assert_eq!(f.max_capacity(), 32);
        assert_eq!(f.name(), "Baseline_32");
    }

    #[test]
    fn fixed_rob_conservation_is_exact_partition() {
        let f = FixedRob::new(32);
        assert_eq!(f.conservation_bound(4), 128);
        assert_eq!(f.conservation_bound(1), 32);
    }

    #[test]
    #[should_panic]
    fn zero_entries_rejected() {
        let _ = FixedRob::new(0);
    }

    #[test]
    fn dod_bounds_lookup() {
        let empty = DodBounds::default();
        assert!(empty.is_empty());
        assert_eq!(empty.lookup(0x100), None);
        let b = DodBounds::new(BTreeMap::from([(0x100u64, 5u32), (0x104, 0)]));
        assert_eq!(b.len(), 2);
        assert_eq!(b.lookup(0x100), Some(5));
        assert_eq!(b.lookup(0x104), Some(0));
        assert_eq!(b.lookup(0x108), None);
    }
}
