//! The SMT out-of-order core: state, construction and the cycle loop.
//!
//! Stage implementations (fetch/dispatch/issue/event handling/commit and
//! squash) live in `stages.rs`; this module owns the data structures,
//! the per-cycle ordering, the [`RobQuery`] view handed to ROB
//! allocation policies, and the run driver.
//!
//! ## Cycle ordering
//!
//! Within a cycle `now`, the core processes, in order: timed events
//! (completions, L2-miss detections, fills), commit, issue, dispatch,
//! fetch, and finally the ROB-policy tick. Later stages observe the
//! effects of earlier ones in the same cycle — the usual
//! reverse-pipeline evaluation that lets results flow through without
//! extra latches.

use crate::config::{FetchPolicyKind, MachineConfig};
use crate::error::{DeadlockSnapshot, HeadSnapshot, SimError, ThreadSnapshot};
use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::fu::FuPool;
use crate::regfile::RegFiles;
use crate::rob_policy::{DodBounds, RobAllocator, RobQuery, DOD_WINDOW};
use crate::soa::{IqSoa, LsqSoa, RobSoa};
use crate::stages::DispatchClass;
use crate::stats::SimStats;
use crate::types::{BranchState, Event, InstRef};
use smtsim_isa::{DynInst, ThreadId};
use smtsim_mem::{Cycle, Hierarchy};
use smtsim_obs::{NoopTracer, TraceEvent, Tracer};
use smtsim_predict::{Btb, Gshare, LoadHitPredictor};
use smtsim_workload::{Executor, Workload};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// A fetched, not-yet-dispatched instruction in a thread's front end.
#[derive(Clone, Debug)]
pub(crate) struct Fetched {
    pub di: DynInst,
    pub wrong_path: bool,
    pub branch: Option<BranchState>,
    /// Earliest dispatch cycle (models decode depth).
    pub ready_at: Cycle,
}

/// Per-hardware-thread state.
pub(crate) struct Thread {
    pub exec: Executor,
    pub rob: RobSoa,
    pub next_tag: u64,
    pub lsq: LsqSoa,
    pub fetch_q: VecDeque<Fetched>,
    /// Correct-path instructions squashed by FLUSH awaiting refetch.
    pub replay_q: VecDeque<DynInst>,
    /// Next PC the front end will fetch (predicted path).
    pub fetch_pc: u64,
    /// Fetching fabricated wrong-path instructions.
    pub in_wrong_path: bool,
    pub wp_counter: u64,
    /// Tag of the unresolved mispredicted branch, if any.
    pub redirect_tag: Option<u64>,
    /// Front end stalled until this cycle (I-miss / redirect penalty).
    pub fetch_stall_until: Cycle,
    /// Wrong-path fetch ran outside the program; wait for resolution.
    pub fetch_halted: bool,
    /// FLUSH policy: fetch gated until this load tag fills.
    pub flush_gate: Option<u64>,
    /// Instructions in decode/rename/IQ (the ICOUNT metric).
    pub icount: usize,
    /// In-flight loads that missed L1-D (DCRA "slow" classification).
    pub pending_l1d: usize,
    /// In-flight loads with a *detected*, unfilled L2 miss.
    pub pending_l2_visible: usize,
    /// Last I-cache line probed (one probe per line transition).
    pub last_fetch_line: u64,
    /// Trace sequence number of the last committed instruction
    /// (commit-order integrity: the committed stream must be the
    /// functional trace, contiguously, in order — wrong-path work and
    /// FLUSH replays must never leak into or punch holes in it).
    pub last_committed_seq: Option<u64>,
}

impl Thread {
    fn new(wl: Arc<Workload>, seed: u64) -> Self {
        let entry_pc = wl.program.pc_of(wl.program.entry(), 0);
        Thread {
            exec: Executor::new(wl, seed),
            rob: RobSoa::with_capacity(512),
            next_tag: 0,
            lsq: LsqSoa::with_capacity(64),
            fetch_q: VecDeque::with_capacity(32),
            replay_q: VecDeque::new(),
            fetch_pc: entry_pc,
            in_wrong_path: false,
            wp_counter: 0,
            redirect_tag: None,
            fetch_stall_until: 0,
            fetch_halted: false,
            flush_gate: None,
            icount: 0,
            pending_l1d: 0,
            pending_l2_visible: 0,
            last_fetch_line: u64::MAX,
            last_committed_seq: None,
        }
    }

    /// The *exact* number of instructions among the first `window` ROB
    /// entries younger than `idx` that transitively depend, through
    /// registers, on the result of the instruction at `idx` — the
    /// quantity the paper's DoD counter (unexecuted entries, §4.1)
    /// approximates.
    ///
    /// The taint walk mirrors `smtsim-analysis`: an instruction is
    /// dependent iff it reads a tainted register; a dependent write
    /// extends the taint, an independent write kills it. Hardwired zero
    /// registers never carry taint. The walk stops at the first
    /// wrong-path entry — its operands are fabricated, and everything
    /// behind it will be squashed.
    pub fn exact_dependents(&self, idx: usize, window: usize) -> u32 {
        let bit = |r: Option<smtsim_isa::ArchReg>| match r {
            Some(r) if !r.is_zero() => 1u64 << r.flat_index(),
            _ => 0u64,
        };
        let mut taint = bit(self.rob.slot(idx).di.dst);
        let mut count = 0u32;
        if taint == 0 {
            return 0;
        }
        let n = window.min(self.rob.len().saturating_sub(idx + 1));
        for j in 0..n {
            let e = self.rob.slot(idx + 1 + j);
            if e.wrong_path {
                break;
            }
            let dependent = e.di.srcs.iter().any(|&s| bit(s) & taint != 0);
            let dst = bit(e.di.dst);
            if dependent {
                count += 1;
                taint |= dst;
            } else {
                taint &= !dst;
                if taint == 0 {
                    break;
                }
            }
        }
        count
    }
}

/// Read-only ROB view handed to [`RobAllocator`] implementations.
pub(crate) struct RobView<'a> {
    pub threads: &'a [Thread],
}

impl RobQuery for RobView<'_> {
    fn num_threads(&self) -> usize {
        self.threads.len()
    }

    fn occupancy(&self, thread: ThreadId) -> usize {
        self.threads[thread].rob.len()
    }

    fn oldest_tag(&self, thread: ThreadId) -> Option<u64> {
        self.threads[thread].rob.front_tag()
    }

    fn in_flight(&self, thread: ThreadId, tag: u64) -> bool {
        self.threads[thread].rob.index_of(tag).is_some()
    }

    fn count_unexecuted_younger(&self, thread: ThreadId, tag: u64, window: usize) -> Option<u32> {
        // The paper's DoD scan: with the `executed` flags held in a
        // per-ROB bitset, counting the result-invalid entries in the
        // window behind the load is a masked popcount over at most two
        // u64 words per (possibly wrapped) segment.
        let th = &self.threads[thread];
        let idx = th.rob.index_of(tag)?;
        Some(th.rob.count_unexecuted(idx + 1, window))
    }

    fn has_pending_l2_miss(&self, thread: ThreadId) -> bool {
        self.threads[thread].pending_l2_visible > 0
    }
}

/// When to stop a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop once any single thread has committed this many instructions
    /// (the paper's criterion: "simulations were stopped after 100
    /// million instructions from any thread had committed").
    AnyThreadCommitted(u64),
    /// Stop once the machine has committed this many instructions in
    /// total.
    TotalCommitted(u64),
    /// Stop after this many cycles.
    Cycles(Cycle),
}

/// How often (in cycles) per-thread ROB occupancy is sampled into the
/// trace when tracing is enabled.
pub(crate) const OCCUPANCY_SAMPLE_INTERVAL: Cycle = 128;

/// Reusable hot-loop scratch buffers: the cycle kernel clears and
/// refills these instead of allocating fresh `Vec`s every cycle
/// (`mem::take` while in use, restored before the stage returns).
#[derive(Default)]
pub(crate) struct Scratch {
    /// Fetch-stage thread ordering.
    pub order: Vec<ThreadId>,
    /// Per-thread DCRA issue-queue caps.
    pub caps: Vec<usize>,
    /// Issue candidates as `(seq, IQ arena slot)` (seq is globally
    /// unique, so sorting the tuples is sorting by age).
    pub cands: Vec<(u64, u32)>,
    /// Squash-path replay collection (front end / ROB).
    pub fetch_replay: Vec<DynInst>,
    pub rob_replay: Vec<DynInst>,
    /// Per-thread dispatch classification for the cycle-skip engine.
    pub classes: Vec<DispatchClass>,
}

/// The cycle-level SMT simulator.
///
/// Generic over its [`Tracer`]: the default [`NoopTracer`] records
/// nothing and monomorphizes every emission site away (the zero-cost
/// path used by all measurement runs); construct with
/// [`SimulatorBuilder::tracer`](crate::SimulatorBuilder::tracer) to
/// collect a structured event stream instead.
pub struct Simulator<T: Tracer = NoopTracer> {
    pub(crate) cfg: MachineConfig,
    pub(crate) threads: Vec<Thread>,
    pub(crate) regs: RegFiles,
    /// Shared issue queue.
    pub(crate) iq: IqSoa,
    /// IQ entries held per thread (DCRA caps / ICOUNT).
    pub(crate) iq_usage: Vec<usize>,
    pub(crate) fu: FuPool,
    pub(crate) mem: Hierarchy,
    pub(crate) gshare: Gshare,
    pub(crate) btb: Btb,
    pub(crate) loadhit: LoadHitPredictor,
    pub(crate) alloc: Box<dyn RobAllocator>,
    pub(crate) events: BinaryHeap<Reverse<Event>>,
    pub(crate) now: Cycle,
    pub(crate) global_seq: u64,
    pub(crate) commit_rr: usize,
    pub(crate) dispatch_rr: usize,
    pub(crate) stats: SimStats,
    pub(crate) last_commit: Cycle,
    /// Fault-injection state (inert by default).
    pub(crate) fault: FaultState,
    /// First integrity violation reported by a stage this cycle; the
    /// stages cannot return `Result` without contorting the hot loops,
    /// so they record the violation here and [`Simulator::try_step`]
    /// surfaces it as [`SimError::InvariantViolation`] at cycle end.
    pub(crate) integrity_violation: Option<String>,
    /// Static DoD bound tables, one per thread (empty = oracle off).
    pub(crate) dod_bounds: Vec<DodBounds>,
    /// Watchdog ceilings for `try_run` (unlimited by default).
    pub(crate) budget: crate::RunBudget,
    /// Event-driven cycle skipping (on by default; timing-identical —
    /// see [`Simulator::try_skip_ahead`]). Disable to cross-check.
    pub(crate) cycle_skip: bool,
    /// Did the cycle just stepped do any work? Cleared at the top of
    /// [`Simulator::try_step`]; set by every stage that pops an event,
    /// commits, finds an issue candidate, dispatches, or may fetch.
    pub(crate) cycle_activity: bool,
    /// Reusable hot-loop buffers (see [`Scratch`]).
    pub(crate) scratch: Scratch,
    /// Structured-event sink (a ZST no-op by default).
    pub(crate) tracer: T,
}

impl Simulator {
    /// Builds a simulator.
    ///
    /// Thin compatibility wrapper over [`Simulator::builder`]; new code
    /// should use the builder, which also covers DoD bounds, fault
    /// plans, warmup and tracing.
    ///
    /// * `workloads` — one per hardware thread (`cfg.num_threads`).
    /// * `alloc` — the ROB capacity policy ([`crate::FixedRob`] for the
    ///   baselines; the two-level schemes come from `smtsim-rob2`).
    /// * `seed` — perturbs executor seeds (thread `t` uses `seed + t`).
    ///
    /// # Panics
    /// Panics on invalid configuration or mismatched workload count;
    /// [`Simulator::try_new`] reports the same conditions as
    /// [`SimError::InvalidConfig`] instead.
    pub fn new(
        cfg: MachineConfig,
        workloads: Vec<Arc<Workload>>,
        alloc: Box<dyn RobAllocator>,
        seed: u64,
    ) -> Self {
        match Self::try_new(cfg, workloads, alloc, seed) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a simulator, reporting structural problems as
    /// [`SimError::InvalidConfig`] instead of panicking.
    ///
    /// Thin compatibility wrapper over [`Simulator::builder`].
    pub fn try_new(
        cfg: MachineConfig,
        workloads: Vec<Arc<Workload>>,
        alloc: Box<dyn RobAllocator>,
        seed: u64,
    ) -> Result<Self, SimError> {
        Self::construct(cfg, workloads, alloc, seed, NoopTracer)
    }

    /// Starts a [`SimulatorBuilder`](crate::SimulatorBuilder) — the
    /// one-stop construction path covering DoD bounds, fault plans,
    /// warmup and tracing.
    pub fn builder(
        cfg: MachineConfig,
        workloads: Vec<Arc<Workload>>,
        alloc: Box<dyn RobAllocator>,
        seed: u64,
    ) -> crate::SimulatorBuilder {
        crate::SimulatorBuilder::new(cfg, workloads, alloc, seed)
    }
}

impl<T: Tracer> Simulator<T> {
    /// Core constructor shared by [`Simulator::try_new`] and the
    /// builder: validates the configuration and assembles the machine
    /// with the given tracer.
    pub(crate) fn construct(
        cfg: MachineConfig,
        workloads: Vec<Arc<Workload>>,
        alloc: Box<dyn RobAllocator>,
        seed: u64,
        tracer: T,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if workloads.len() != cfg.num_threads {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "need one workload per hardware thread: {} workloads for {} threads",
                    workloads.len(),
                    cfg.num_threads
                ),
            });
        }
        let threads: Vec<Thread> = workloads
            .into_iter()
            .enumerate()
            .map(|(t, wl)| Thread::new(wl, seed.wrapping_add(t as u64)))
            .collect();
        let stats = SimStats::new(cfg.num_threads);
        let regs = RegFiles::new(
            cfg.int_regs / cfg.num_threads,
            cfg.fp_regs / cfg.num_threads,
            cfg.num_threads,
            cfg.shared_regs,
        );
        // The IQ's wakeup network hangs one waiter list off every
        // physical register, so the register files are sized first.
        let iq = IqSoa::new(
            cfg.iq_size,
            [
                regs.total(smtsim_isa::RegClass::Int),
                regs.total(smtsim_isa::RegClass::Fp),
            ],
            cfg.num_threads,
        );
        Ok(Simulator {
            regs,
            iq,
            iq_usage: vec![0; cfg.num_threads],
            fu: FuPool::new(&cfg.fu),
            mem: Hierarchy::new(cfg.l1i, cfg.l1d, cfg.l2, cfg.mem),
            gshare: Gshare::icpp08(),
            btb: Btb::icpp08(),
            loadhit: LoadHitPredictor::icpp08(),
            alloc,
            events: BinaryHeap::new(),
            now: 0,
            global_seq: 0,
            commit_rr: 0,
            dispatch_rr: 0,
            stats,
            last_commit: 0,
            fault: FaultState::new(FaultPlan::default(), cfg.num_threads),
            integrity_violation: None,
            dod_bounds: Vec::new(),
            budget: crate::RunBudget::default(),
            cycle_skip: true,
            cycle_activity: true,
            scratch: Scratch::default(),
            tracer,
            threads,
            cfg,
        })
    }

    /// Consumes the simulator, returning its tracer (e.g. to read a
    /// collected [`smtsim_obs::TraceLog`] after a run).
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Installs static DoD bound tables
    /// (via [`SimulatorBuilder::dod_bounds`](crate::SimulatorBuilder::dod_bounds)),
    /// one per hardware thread, enabling the oracle cross-check at every
    /// correct-path L2 fill (see [`DodBounds`]). Violations are always
    /// counted in `SimStats::dod_oracle`; with the `dod-oracle` feature
    /// enabled they additionally fail the cycle as
    /// [`SimError::InvariantViolation`]. A table-count mismatch is
    /// reported as [`SimError::InvalidConfig`].
    pub(crate) fn install_dod_bounds(&mut self, bounds: Vec<DodBounds>) -> Result<(), SimError> {
        if bounds.len() != self.cfg.num_threads {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "need one DoD bound table per hardware thread: {} tables for {} threads",
                    bounds.len(),
                    self.cfg.num_threads
                ),
            });
        }
        self.dod_bounds = bounds;
        Ok(())
    }

    /// Cross-checks one correct-path L2 fill against the static DoD
    /// bound for the load's PC. `counted` is the hardware counter value
    /// over the same first-level window, *before* fault injection.
    pub(crate) fn oracle_check(&mut self, r: InstRef, pc: u64, counted: u32) {
        if self.dod_bounds.is_empty() {
            return;
        }
        let Some(max) = self.dod_bounds[r.thread].lookup(pc) else {
            return;
        };
        let th = &self.threads[r.thread];
        let Some(idx) = th.rob.index_of(r.tag) else {
            return;
        };
        let exact = th.exact_dependents(idx, DOD_WINDOW);
        let o = &mut self.stats.dod_oracle;
        o.checked += 1;
        o.exact_sum += exact as u64;
        o.counter_err_sum += counted.abs_diff(exact) as u64;
        if counted > exact {
            o.counter_overshoot += 1;
        }
        if exact > max {
            o.violations += 1;
            #[cfg(feature = "dod-oracle")]
            self.report_integrity(format!(
                "DoD oracle: load {pc:#x} (t{} tag {}) has {exact} dependent \
                 instructions in its first-level window at fill, exceeding \
                 the static dependence bound {max}",
                r.thread, r.tag
            ));
        }
    }

    /// Installs a fault-injection plan
    /// (via [`SimulatorBuilder::fault_plan`](crate::SimulatorBuilder::fault_plan)).
    /// Call before any timed cycles; the decision counters restart from
    /// zero.
    pub(crate) fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = FaultState::new(plan, self.cfg.num_threads);
    }

    /// Counts of faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.stats
    }

    /// Installs watchdog ceilings for subsequent
    /// [`Simulator::try_run`] calls (see [`crate::RunBudget`]); the
    /// default budget is unlimited. Also available at construction via
    /// [`SimulatorBuilder::run_budget`](crate::SimulatorBuilder::run_budget).
    pub fn set_run_budget(&mut self, budget: crate::RunBudget) {
        self.budget = budget;
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The memory hierarchy (for cache statistics).
    pub fn memory(&self) -> &Hierarchy {
        &self.mem
    }

    /// Branch predictor accuracy observed so far.
    pub fn branch_accuracy(&self) -> f64 {
        self.gshare.accuracy()
    }

    /// Load-hit predictor accuracy observed so far.
    pub fn loadhit_accuracy(&self) -> f64 {
        self.loadhit.accuracy()
    }

    /// The ROB allocation policy's display name.
    pub fn policy_name(&self) -> String {
        self.alloc.name()
    }

    /// The ROB allocation policy (downcast with
    /// [`RobAllocator::as_any`] to read policy-specific statistics).
    pub fn allocator(&self) -> &dyn RobAllocator {
        self.alloc.as_ref()
    }

    /// Enables or disables event-driven cycle skipping (on by default;
    /// timing-identical — see
    /// [`SimulatorBuilder::cycle_skip`](crate::SimulatorBuilder::cycle_skip)).
    pub(crate) fn set_cycle_skip(&mut self, enabled: bool) {
        self.cycle_skip = enabled;
    }

    /// Schedules an event.
    #[inline]
    pub(crate) fn push_event(&mut self, ev: Event) {
        debug_assert!(ev.at >= self.now);
        self.events.push(Reverse(ev));
    }

    /// Functionally warms caches and predictors
    /// (via [`SimulatorBuilder::warmup`](crate::SimulatorBuilder::warmup))
    /// by running `insts_per_thread` instructions of each thread
    /// through the memory directories and predictor tables — no timing,
    /// no statistics. The paper simulates SimPoint regions whose
    /// microarchitectural state is warm; warming before any timed cycle
    /// reproduces that (the `Lab` harness in `smtsim-rob2` does).
    pub(crate) fn run_warmup(&mut self, insts_per_thread: u64) {
        assert_eq!(self.now, 0, "warmup must precede timed simulation");
        for t in 0..self.cfg.num_threads {
            let mut last_line = u64::MAX;
            for _ in 0..insts_per_thread {
                let di = self.threads[t].exec.next_inst();
                let line = di.pc & !(self.cfg.l1i.line - 1);
                if line != last_line {
                    self.mem.warm_inst(di.pc);
                    last_line = line;
                }
                if di.op.is_mem() {
                    let hit = self.mem.peek_l1d(di.mem_addr);
                    self.mem
                        .warm_data(di.mem_addr, di.op == smtsim_isa::OpClass::Store);
                    if di.op == smtsim_isa::OpClass::Load {
                        self.loadhit.update(t, di.pc, hit);
                    }
                }
                if di.op == smtsim_isa::OpClass::BranchCond {
                    let h = self.gshare.history(t);
                    self.gshare.train(di.pc, h, di.taken);
                    self.gshare.set_history(t, (h << 1) | di.taken as u16);
                }
                if di.op.is_branch() && di.taken {
                    self.btb.update(di.pc, di.next_pc);
                }
                // The front end resumes exactly where the functional
                // walk stopped.
                self.threads[t].fetch_pc = di.next_pc;
            }
        }
    }

    /// Advances the machine by one cycle.
    ///
    /// # Panics
    /// Panics if the cycle surfaces a deadlock or an invariant
    /// violation; [`Simulator::try_step`] reports these as [`SimError`]
    /// instead.
    pub fn step(&mut self) {
        if let Err(e) = self.try_step() {
            panic!("{e}");
        }
    }

    /// Advances the machine by one cycle, reporting integrity failures
    /// as typed errors:
    ///
    /// * [`SimError::InvariantViolation`] — a stage observed
    ///   inconsistent machine state, a cheap cross-structure check
    ///   failed (ROB-entry conservation against the policy's physical
    ///   budget, per-thread occupancy bounds), or — every
    ///   `MachineConfig::invariant_interval` cycles — the deep scan
    ///   ([`Simulator::check_invariants`]) or the allocation policy's
    ///   self-audit found a mismatch.
    /// * [`SimError::Deadlock`] — no instruction committed for
    ///   `MachineConfig::deadlock_cycles` cycles; carries a
    ///   [`DeadlockSnapshot`] of per-thread state.
    ///
    /// After an error the machine state is left as-is for post-mortem
    /// inspection; continuing to step is not meaningful.
    pub fn try_step(&mut self) -> Result<(), SimError> {
        self.cycle_activity = false;
        self.process_events();
        self.commit_stage();
        self.issue_stage();
        self.dispatch_stage();
        self.fetch_stage();
        self.policy_tick();
        self.sample_occupancy();
        if T::ENABLED {
            // The allocation policy and the memory hierarchy sit on the
            // far side of trait-object / crate boundaries, so they
            // buffer their events; fold them into the tracer once per
            // cycle, in a fixed order, to keep the stream deterministic.
            for (c, ev) in self.alloc.drain_trace() {
                self.tracer.record(c, ev);
            }
            for (c, ev) in self.mem.drain_trace() {
                self.tracer.record(c, ev);
            }
        }
        self.now += 1;
        if let Some(detail) = self.integrity_violation.take() {
            return Err(SimError::InvariantViolation {
                cycle: self.now,
                detail,
            });
        }
        self.conservation_check()?;
        if self.cfg.invariant_interval > 0 && self.now.is_multiple_of(self.cfg.invariant_interval) {
            if let Some(detail) = self.check_invariants() {
                return Err(SimError::InvariantViolation {
                    cycle: self.now,
                    detail,
                });
            }
            let view = RobView {
                threads: &self.threads,
            };
            if let Some(detail) = self.alloc.audit(&view) {
                return Err(SimError::InvariantViolation {
                    cycle: self.now,
                    detail: format!("policy audit ({}): {detail}", self.alloc.name()),
                });
            }
        }
        if self.now - self.last_commit > self.cfg.deadlock_cycles {
            return Err(SimError::Deadlock {
                snapshot: Box::new(self.deadlock_snapshot()),
            });
        }
        Ok(())
    }

    /// Runs until `stop` is reached; returns the final statistics.
    ///
    /// # Panics
    /// Panics if the run surfaces a deadlock or an invariant violation;
    /// [`Simulator::try_run`] reports these as [`SimError`] instead.
    pub fn run(&mut self, stop: StopCondition) -> &SimStats {
        if let Err(e) = self.try_run(stop) {
            panic!("{e}");
        }
        &self.stats
    }

    /// Runs until `stop` is reached, reporting integrity failures as
    /// typed errors (see [`Simulator::try_step`]). Statistics —
    /// including the cycle count — are coherent up to the failing cycle
    /// in both outcomes, so a sweep can record partial progress of a
    /// poisoned cell.
    pub fn try_run(&mut self, stop: StopCondition) -> Result<&SimStats, SimError> {
        // xtask: allow-wall-clock — SMTSIM_CELL_TIMEOUT watchdog anchor
        let started = std::time::Instant::now();
        loop {
            match stop {
                StopCondition::AnyThreadCommitted(n) => {
                    if self.stats.threads.iter().any(|t| t.committed >= n) {
                        break;
                    }
                }
                StopCondition::TotalCommitted(n) => {
                    if self.stats.total_committed() >= n {
                        break;
                    }
                }
                StopCondition::Cycles(n) => {
                    if self.now >= n {
                        break;
                    }
                }
            }
            if let Err(e) = self.check_budget(&started) {
                self.stats.cycles = self.now;
                return Err(e);
            }
            if let Err(e) = self.try_step() {
                self.stats.cycles = self.now;
                return Err(e);
            }
            if self.cycle_skip && !self.cycle_activity {
                self.try_skip_ahead(stop);
            }
        }
        self.stats.cycles = self.now;
        Ok(&self.stats)
    }

    /// Event-driven cycle skipping: called after a *quiet* cycle (no
    /// event processed, nothing committed, no issue candidate, no
    /// dispatch, no thread allowed to fetch). If the machine is
    /// provably quiescent until some future cycle `T` — no scheduled
    /// event, allocation-policy deadline, fetch wakeup, budget poll,
    /// invariant scan or watchdog deadline lands earlier — replicate
    /// the per-cycle accounting of the intervening cycles in closed
    /// form and advance the clock directly, so the next `try_step`
    /// executes cycle `T` exactly as it would have without the skip.
    ///
    /// Soundness: every input of the per-thread dispatch
    /// classification (fetch-queue head and its `ready_at`, ROB/IQ/LSQ
    /// occupancies, DCRA caps via `pending_l1d`, free registers,
    /// policy capacity) can only change through events, commits,
    /// dispatches, fetches or policy-tick transitions — all of which
    /// are either impossible on a quiet machine or capped below `T`.
    /// Stall counters, occupancy sums, trace stall/occupancy samples
    /// and the commit/dispatch round-robin cursors are replicated
    /// per skipped cycle; budgets and the deadlock watchdog keep their
    /// exact firing cycles because `T` is capped at each deadline.
    fn try_skip_ahead(&mut self, stop: StopCondition) {
        // Active fault plans may mutate per-cycle decision state inside
        // the dispatch gates; never skip under one.
        if self.fault.plan.is_active() {
            return;
        }
        let view = RobView {
            threads: &self.threads,
        };
        // The allocation policy's quiescence horizon: the earliest
        // future cycle at which its `tick` may act (None = opaque
        // policy or pending release work — do not skip).
        let Some(alloc_quiet) = self.alloc.skip_quiesce(&view) else {
            return;
        };
        let mut target = alloc_quiet;
        if let StopCondition::Cycles(n) = stop {
            target = target.min(n);
        }
        if let Some(&Reverse(ev)) = self.events.peek() {
            target = target.min(ev.at);
        }
        if let Some(max) = self.budget.max_cycles {
            target = target.min(max);
        }
        if self.budget.wall_ms.is_some() || self.budget.token.is_some() {
            // Wall-clock / cancellation polls happen when `check_budget`
            // runs at a multiple of BUDGET_POLL_INTERVAL; make every
            // poll cycle a real loop iteration.
            target = target.min(self.now.next_multiple_of(crate::BUDGET_POLL_INTERVAL));
        }
        let iv = self.cfg.invariant_interval;
        // The deep scan runs while stepping cycle c whenever (c + 1)
        // is a multiple of the interval (0 = disabled); that cycle
        // must be stepped normally.
        if let Some(q) = self.now.checked_div(iv) {
            target = target.min((q + 1) * iv - 1);
        }
        // The deadlock watchdog fires while stepping cycle
        // last_commit + deadlock_cycles; step it normally.
        target = target.min(self.last_commit.saturating_add(self.cfg.deadlock_cycles));
        for th in &self.threads {
            if th.fetch_stall_until > self.now {
                target = target.min(th.fetch_stall_until);
            }
            if let Some(f) = th.fetch_q.front() {
                if f.ready_at > self.now {
                    target = target.min(f.ready_at);
                }
            }
        }
        if target <= self.now {
            return;
        }
        // The quiet step observed fetch at the *previous* cycle; a
        // stall that expired exactly at the new `now` makes a thread
        // fetch-eligible this cycle even though nothing above caps the
        // target (its fetch queue may be empty). Fetching is activity,
        // so a fetch-eligible thread means the machine is not
        // quiescent.
        for t in 0..self.cfg.num_threads {
            if self.can_fetch(t) {
                return;
            }
        }

        // Classify every thread's dispatch gate from current state; a
        // thread that could dispatch means the machine is not actually
        // quiescent (e.g. the policy tick just granted capacity), so
        // fall back to normal stepping.
        let n = self.cfg.num_threads;
        let mut caps = std::mem::take(&mut self.scratch.caps);
        let mut classes = std::mem::take(&mut self.scratch.classes);
        self.dcra_caps_into(&mut caps);
        classes.clear();
        for (t, &cap) in caps.iter().enumerate() {
            classes.push(self.classify_dispatch(t, cap));
        }
        if classes.contains(&DispatchClass::Pass) {
            self.scratch.caps = caps;
            self.scratch.classes = classes;
            return;
        }

        // Replicate the per-cycle accounting of cycles [now, target).
        let k = target - self.now;
        for (t, class) in classes.iter().enumerate() {
            if let DispatchClass::Stall(kind) = *class {
                self.bump_stall(t, kind, k);
            }
        }
        self.stats.iq_occupancy_sum += self.iq.len() as u64 * k;
        if self.iq.len() >= self.cfg.iq_size {
            self.stats.iq_full_cycles += k;
        }
        for (t, th) in self.threads.iter().enumerate() {
            self.stats.threads[t].rob_occupancy_sum += th.rob.len() as u64 * k;
        }
        self.alloc.on_cycles_skipped(k);
        if T::ENABLED {
            // Synthesize the exact trace stream the stepped cycles
            // would have produced: dispatch-stage stall records in
            // round-robin visit order, then the occupancy samples.
            for c in self.now..target {
                let start = (self.dispatch_rr + (c - self.now) as usize) % n;
                for j in 0..n {
                    let t = (start + j) % n;
                    if let DispatchClass::Stall(kind) = classes[t] {
                        self.tracer
                            .record(c, TraceEvent::ThreadStall { thread: t, kind });
                    }
                }
                if c.is_multiple_of(OCCUPANCY_SAMPLE_INTERVAL) {
                    for (t, th) in self.threads.iter().enumerate() {
                        let occupancy = u32::try_from(th.rob.len()).unwrap_or(u32::MAX);
                        self.tracer.record(
                            c,
                            TraceEvent::RobOccupancy {
                                thread: t,
                                occupancy,
                            },
                        );
                    }
                }
            }
        }
        self.commit_rr = (self.commit_rr + k as usize % n) % n;
        self.dispatch_rr = (self.dispatch_rr + k as usize % n) % n;
        self.now = target;
        self.scratch.caps = caps;
        self.scratch.classes = classes;
    }

    /// Cooperative watchdog: enforces the [`crate::RunBudget`] ceilings
    /// from inside the cycle loop. The simulated-cycle ceiling is
    /// checked every cycle (it must fire at an exact, reproducible
    /// cycle); the wall-clock and cancellation ceilings are polled
    /// every [`crate::BUDGET_POLL_INTERVAL`] cycles and are documented
    /// as non-deterministic.
    // xtask: allow-wall-clock — wall-clock ceiling is documented non-deterministic
    fn check_budget(&self, started: &std::time::Instant) -> Result<(), SimError> {
        if let Some(max) = self.budget.max_cycles {
            if self.now >= max {
                return Err(SimError::CellTimeout {
                    cycle: self.now,
                    detail: format!("cycle budget of {max} simulated cycles exhausted"),
                });
            }
        }
        if self.now.is_multiple_of(crate::BUDGET_POLL_INTERVAL) {
            if let Some(token) = &self.budget.token {
                if token.is_cancelled() {
                    return Err(SimError::CellTimeout {
                        cycle: self.now,
                        detail: "cancelled by sweep engine".into(),
                    });
                }
            }
            if let Some(ms) = self.budget.wall_ms {
                if started.elapsed().as_millis() >= u128::from(ms) {
                    return Err(SimError::CellTimeout {
                        cycle: self.now,
                        detail: format!("wall-clock budget of {ms} ms exhausted"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Cheap always-on integrity checks: O(threads) per cycle.
    ///
    /// ROB-entry conservation — the machine must never hold more
    /// entries than the policy's physical budget, globally or per
    /// thread. Per-thread occupancy may legally exceed the *current*
    /// capacity grant (capacity shrinks below occupancy while a
    /// two-level extension drains), so the bounds checked here are the
    /// physical maxima, which no correct dispatch sequence can exceed.
    fn conservation_check(&self) -> Result<(), SimError> {
        let mut total = 0usize;
        let per_thread_max = self.alloc.max_capacity();
        for (t, th) in self.threads.iter().enumerate() {
            if th.rob.len() > per_thread_max {
                return Err(SimError::InvariantViolation {
                    cycle: self.now,
                    detail: format!(
                        "t{t}: ROB occupancy {} exceeds the policy's physical maximum {} ({})",
                        th.rob.len(),
                        per_thread_max,
                        self.alloc.name()
                    ),
                });
            }
            total += th.rob.len();
        }
        let bound = self.alloc.conservation_bound(self.cfg.num_threads);
        if total > bound {
            return Err(SimError::InvariantViolation {
                cycle: self.now,
                detail: format!(
                    "ROB-entry conservation: {total} entries in flight exceed the \
                     policy's global budget {bound} ({})",
                    self.alloc.name()
                ),
            });
        }
        Ok(())
    }

    /// Records a stage-observed integrity violation (first one wins);
    /// surfaced by [`Simulator::try_step`] at cycle end.
    #[cold]
    pub(crate) fn report_integrity(&mut self, detail: String) {
        self.integrity_violation.get_or_insert(detail);
    }

    /// The ROB capacity dispatch consults for `thread` this cycle —
    /// the policy's grant, unless a fault plan is lying about it.
    #[inline]
    pub(crate) fn dispatch_capacity(&mut self, t: ThreadId) -> usize {
        let real = self.alloc.capacity(t);
        self.fault.effective_capacity(t, real, self.now)
    }

    /// Runs the ROB policy's per-cycle hook.
    fn policy_tick(&mut self) {
        let view = RobView {
            threads: &self.threads,
        };
        self.alloc.tick(&view, self.now);
    }

    /// Per-cycle statistics sampling.
    fn sample_occupancy(&mut self) {
        self.stats.iq_occupancy_sum += self.iq.len() as u64;
        if self.iq.len() >= self.cfg.iq_size {
            self.stats.iq_full_cycles += 1;
        }
        for (t, th) in self.threads.iter().enumerate() {
            self.stats.threads[t].rob_occupancy_sum += th.rob.len() as u64;
        }
        if T::ENABLED && self.now.is_multiple_of(OCCUPANCY_SAMPLE_INTERVAL) {
            for (t, th) in self.threads.iter().enumerate() {
                let occupancy = u32::try_from(th.rob.len()).unwrap_or(u32::MAX);
                self.tracer.record(
                    self.now,
                    TraceEvent::RobOccupancy {
                        thread: t,
                        occupancy,
                    },
                );
            }
        }
    }

    /// Thread order for fetch this cycle, best candidate first, filled
    /// into the caller's reusable buffer.
    pub(crate) fn fetch_order_into(&self, order: &mut Vec<ThreadId>) {
        let n = self.cfg.num_threads;
        order.clear();
        order.extend(0..n);
        match self.cfg.fetch_policy {
            FetchPolicyKind::RoundRobin => {
                order.rotate_left((self.now as usize) % n);
            }
            // ICOUNT ordering is shared by ICOUNT, DCRA, STALL, FLUSH
            // (the latter differ in gating, not ordering). The sort key
            // is made total by the thread id, so the unstable sort is
            // deterministic.
            _ => {
                order.sort_unstable_by_key(|&t| (self.threads[t].icount, t));
            }
        }
    }

    /// May `t` fetch this cycle under the active policy?
    pub(crate) fn can_fetch(&self, t: ThreadId) -> bool {
        let th = &self.threads[t];
        if th.fetch_halted
            || th.fetch_stall_until > self.now
            || th.fetch_q.len() >= self.cfg.fetch_queue
        {
            return false;
        }
        match self.cfg.fetch_policy {
            FetchPolicyKind::Stall | FetchPolicyKind::Flush => {
                th.pending_l2_visible == 0 && th.flush_gate.is_none()
            }
            _ => true,
        }
    }

    /// Per-thread shared-IQ dispatch caps under DCRA; `usize::MAX` when
    /// DCRA is not active. Register files are per-thread partitions in
    /// this model, so the issue queue is the resource DCRA arbitrates.
    pub(crate) fn dcra_caps_into(&self, caps: &mut Vec<usize>) {
        let n = self.cfg.num_threads;
        caps.clear();
        let FetchPolicyKind::Dcra(dcra) = self.cfg.fetch_policy else {
            caps.resize(n, usize::MAX);
            return;
        };
        // Classification: a thread with an outstanding L1-D miss is
        // memory-demanding ("slow") and receives `slow_share` times the
        // base share of the shared issue queue.
        let s = self.threads.iter().filter(|t| t.pending_l1d > 0).count() as u32;
        let f = n as u32 - s;
        let denom = (f + dcra.slow_share * s).max(1);
        caps.extend((0..n).map(|t| {
            let mult = if self.threads[t].pending_l1d > 0 {
                dcra.slow_share
            } else {
                1
            } as usize;
            (self.cfg.iq_size * mult) / denom as usize
        }));
    }

    /// Verifies cross-structure invariants, returning a description of
    /// the first violation found. Intended for stress tests and
    /// debugging sessions (`None` = consistent); costs O(machine
    /// state), so do not call it every cycle in measurement runs.
    pub fn check_invariants(&self) -> Option<String> {
        // Shared IQ: every entry references an in-flight, unissued,
        // non-NOP instruction; per-thread usage counters agree.
        let mut iq_per_thread = vec![0usize; self.cfg.num_threads];
        for (et, etag) in self.iq.iter() {
            let Some(idx) = self.threads[et].rob.index_of(etag) else {
                return Some(format!("IQ entry t{et} tag {etag} not in flight"));
            };
            if self.threads[et].rob.issued(idx) {
                return Some(format!("issued instruction t{et} tag {etag} still in IQ"));
            }
            iq_per_thread[et] += 1;
        }
        if self.iq.len() > self.cfg.iq_size {
            return Some(format!("IQ overflow: {}", self.iq.len()));
        }
        for (t, &actual_iq) in iq_per_thread.iter().enumerate() {
            if actual_iq != self.iq_usage[t] {
                return Some(format!(
                    "t{t}: iq_usage {} != actual {}",
                    self.iq_usage[t], actual_iq
                ));
            }
            let th = &self.threads[t];
            // ROB: tags strictly increasing; LSQ mirrors the ROB's
            // memory ops in order (checked with a cursor walk — no
            // collection); occupancy within the policy cap is not
            // asserted (capacity may legally shrink below occupancy
            // while a two-level extension drains).
            let mut prev_tag = None;
            let mut lsq_cursor = 0usize;
            for idx in 0..th.rob.len() {
                let tag = th.rob.tag_at(idx);
                if let Some(p) = prev_tag {
                    if tag <= p {
                        return Some(format!("t{t}: ROB tags not increasing at {tag}"));
                    }
                }
                prev_tag = Some(tag);
                if th.rob.slot(idx).di.op.is_mem() {
                    if lsq_cursor >= th.lsq.len() || th.lsq.tag_at(lsq_cursor) != tag {
                        return Some(format!(
                            "t{t}: LSQ out of sync with ROB mem op tag {tag} at LSQ index {lsq_cursor}"
                        ));
                    }
                    lsq_cursor += 1;
                }
                if th.rob.executed(idx) && !th.rob.issued(idx) {
                    return Some(format!("t{t}: executed-but-unissued tag {tag}"));
                }
            }
            if lsq_cursor != th.lsq.len() {
                return Some(format!(
                    "t{t}: LSQ holds {} entries beyond the ROB's {lsq_cursor} mem ops",
                    th.lsq.len()
                ));
            }
            if th.lsq.len() > self.cfg.lsq_size {
                return Some(format!("t{t}: LSQ overflow"));
            }
            // ICOUNT = front-end occupancy + unissued IQ entries.
            let expect_icount = th.fetch_q.len() + actual_iq;
            if th.icount != expect_icount {
                return Some(format!(
                    "t{t}: icount {} != fetch_q {} + iq {}",
                    th.icount,
                    th.fetch_q.len(),
                    iq_per_thread[t]
                ));
            }
        }
        None
    }

    /// Per-stage benchmark hooks (`bench-internals` feature): expose
    /// the stage entry points in `try_step` order so a bench harness
    /// can time each stage inside a faithful cycle loop. Not part of
    /// the supported API.
    #[cfg(feature = "bench-internals")]
    pub fn bench_process_events(&mut self) {
        self.process_events();
    }

    /// Commit stage alone; see [`Simulator::bench_process_events`].
    #[cfg(feature = "bench-internals")]
    pub fn bench_commit_stage(&mut self) {
        self.commit_stage();
    }

    /// Issue/execute stage alone; see
    /// [`Simulator::bench_process_events`].
    #[cfg(feature = "bench-internals")]
    pub fn bench_issue_stage(&mut self) {
        self.issue_stage();
    }

    /// Dispatch/rename stage alone; see
    /// [`Simulator::bench_process_events`].
    #[cfg(feature = "bench-internals")]
    pub fn bench_dispatch_stage(&mut self) {
        self.dispatch_stage();
    }

    /// Fetch stage alone; see [`Simulator::bench_process_events`].
    #[cfg(feature = "bench-internals")]
    pub fn bench_fetch_stage(&mut self) {
        self.fetch_stage();
    }

    /// Runs the end-of-cycle bookkeeping the stage hooks below do not
    /// cover (policy tick, occupancy sampling, trace drains, clock
    /// advance) — the remainder of [`Simulator::try_step`] minus the
    /// integrity surfacing, which per-stage benches do not exercise.
    #[cfg(feature = "bench-internals")]
    pub fn bench_cycle_end(&mut self) {
        self.policy_tick();
        self.sample_occupancy();
        if T::ENABLED {
            for (c, ev) in self.alloc.drain_trace() {
                self.tracer.record(c, ev);
            }
            for (c, ev) in self.mem.drain_trace() {
                self.tracer.record(c, ev);
            }
        }
        self.now += 1;
    }

    /// One masked-popcount DoD scan per thread (behind the oldest
    /// entry), summed — the kernel the paper's counter hardware models.
    #[cfg(feature = "bench-internals")]
    pub fn bench_dod_scan(&self, window: usize) -> u64 {
        let view = RobView {
            threads: &self.threads,
        };
        (0..self.cfg.num_threads)
            .filter_map(|t| {
                let tag = view.oldest_tag(t)?;
                view.count_unexecuted_younger(t, tag, window)
            })
            .map(u64::from)
            .sum()
    }

    /// Captures the diagnostic state the deadlock watchdog reports.
    #[cold]
    fn deadlock_snapshot(&self) -> DeadlockSnapshot {
        DeadlockSnapshot {
            deadlock_cycles: self.cfg.deadlock_cycles,
            now: self.now,
            policy: self.alloc.name(),
            threads: self
                .threads
                .iter()
                .enumerate()
                .map(|(t, th)| ThreadSnapshot {
                    rob_len: th.rob.len(),
                    rob_cap: self.alloc.capacity(t),
                    iq_use: self.iq_usage[t],
                    icount: th.icount,
                    head: (!th.rob.is_empty()).then(|| HeadSnapshot {
                        tag: th.rob.tag_at(0),
                        op: th.rob.slot(0).di.op,
                        issued: th.rob.issued(0),
                        executed: th.rob.executed(0),
                    }),
                    fetch_halted: th.fetch_halted,
                    fetch_stall_until: th.fetch_stall_until,
                    in_wrong_path: th.in_wrong_path,
                    pending_l2: th.pending_l2_visible,
                })
                .collect(),
            iq_len: self.iq.len(),
            iq_size: self.cfg.iq_size,
            int_free_t0: self.regs.free_count(0, smtsim_isa::RegClass::Int),
            fp_free_t0: self.regs.free_count(0, smtsim_isa::RegClass::Fp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::InstState;
    use smtsim_isa::{ArchReg, OpClass};

    /// A thread whose ROB is filled with hand-built entries, bypassing
    /// the pipeline (only the taint walk is under test).
    fn thread_with(entries: Vec<(Option<ArchReg>, [Option<ArchReg>; 2], bool)>) -> Thread {
        let wl = Arc::new(Workload::spec("gzip", 1, 0x1_0000, 0x1000_0000));
        let mut th = Thread::new(wl, 0);
        for (tag, (dst, srcs, wrong_path)) in entries.into_iter().enumerate() {
            th.rob.push_back(InstState {
                tag: tag as u64,
                seq: tag as u64,
                di: DynInst {
                    pc: 0x1_0000 + tag as u64 * 4,
                    seq: tag as u64,
                    op: OpClass::IntAlu,
                    dst,
                    srcs,
                    mem_addr: 0,
                    taken: false,
                    next_pc: 0,
                },
                wrong_path,
                dst_phys: None,
                old_phys: None,
                src_phys: [None, None],
                issued: false,
                executed: false,
                dispatched_at: 0,
                branch: None,
                mem: None,
                dod_hist: 0,
            });
        }
        th
    }

    fn r(i: u8) -> Option<ArchReg> {
        Some(ArchReg::int(i))
    }

    #[test]
    fn exact_dependents_follows_transitive_chain() {
        // load r1; r2 <- r1; r3 <- r2; r4 <- r5 (independent).
        let th = thread_with(vec![
            (r(1), [None, None], false),
            (r(2), [r(1), None], false),
            (r(3), [r(2), None], false),
            (r(4), [r(5), None], false),
        ]);
        assert_eq!(th.exact_dependents(0, DOD_WINDOW), 2);
    }

    #[test]
    fn exact_dependents_kill_ends_dependence() {
        // load r1; r1 <- r6 (overwrite kills the taint); r7 <- r1.
        let th = thread_with(vec![
            (r(1), [None, None], false),
            (r(1), [r(6), None], false),
            (r(7), [r(1), None], false),
        ]);
        assert_eq!(th.exact_dependents(0, DOD_WINDOW), 0);
    }

    #[test]
    fn exact_dependents_ignores_zero_register() {
        // A load whose dst is the hardwired zero has no dependents.
        let th = thread_with(vec![
            (r(31), [None, None], false),
            (r(2), [r(31), None], false),
        ]);
        assert_eq!(th.exact_dependents(0, DOD_WINDOW), 0);
    }

    #[test]
    fn exact_dependents_stops_at_wrong_path() {
        let th = thread_with(vec![
            (r(1), [None, None], false),
            (r(2), [r(1), None], false),
            (r(3), [r(1), None], true), // wrong path: walk stops here
            (r(4), [r(1), None], false),
        ]);
        assert_eq!(th.exact_dependents(0, DOD_WINDOW), 1);
    }

    #[test]
    fn exact_dependents_respects_window() {
        let mut entries = vec![(r(1), [None, None], false)];
        for _ in 0..40 {
            entries.push((r(2), [r(1), None], false));
        }
        let th = thread_with(entries);
        assert_eq!(th.exact_dependents(0, DOD_WINDOW), DOD_WINDOW as u32);
        assert_eq!(th.exact_dependents(0, 5), 5);
    }
}
