//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes a reproducible set of model-level faults —
//! lost or delayed L2-miss completions, corrupted DoD counts, withheld
//! allocator notifications, and lying capacity grants — that exercise
//! the simulator's integrity machinery (the deadlock watchdog and the
//! invariant checker) and the graceful-degradation paths of ROB
//! allocation policies.
//!
//! Faults are *counter-based*, not clock-based: each fault category
//! keeps its own opportunity counter, and the decision for opportunity
//! `k` is a pure hash of `(seed, category, k)`. The same seed and plan
//! therefore produce the same faults at the same points of the
//! instruction stream, independent of wall-clock time or host — the
//! property the determinism suite asserts (same seed + same plan ⇒
//! identical statistics and identical error).
//!
//! All knobs are **1-in-N denominators**: `0` disables the category,
//! `1` fires on every opportunity, `N` fires on a pseudo-random 1/N of
//! opportunities.

use smtsim_isa::ThreadId;
use smtsim_mem::Cycle;

/// Category salts keep the per-category decision streams independent.
const SALT_DROP: u64 = 0x9E6D_41A3_5C17_D2B5;
const SALT_DELAY: u64 = 0x517C_C1B7_2722_0A95;
const SALT_CORRUPT: u64 = 0xB492_B66F_BE98_F273;
const SALT_WITHHOLD: u64 = 0x2545_F491_4F6C_DD1D;

/// splitmix64 finalizer — the same mixer the vendored proptest shim and
/// the workload generators use for cheap, well-distributed hashing.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reproducible fault-injection schedule. The default plan injects
/// nothing and costs one branch per hook.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for all fault decisions (independent of the simulator
    /// seed, so the same workload can be rerun under different fault
    /// streams).
    pub seed: u64,
    /// 1-in-N L2-missing loads whose completion and fill events are
    /// never scheduled: the load hangs forever and the thread starves.
    /// The watchdog must surface this as [`SimError::Deadlock`].
    ///
    /// [`SimError::Deadlock`]: crate::SimError::Deadlock
    pub drop_fill: u32,
    /// 1-in-N L2-missing loads whose completion and fill are pushed
    /// back by [`delay_cycles`](Self::delay_cycles) — a slow DRAM bank,
    /// not a failure; the model must absorb it.
    pub delay_fill: u32,
    /// Extra latency applied by `delay_fill` faults.
    pub delay_cycles: u64,
    /// 1-in-N fill notifications whose hardware DoD count is replaced
    /// with garbage before reaching the allocator — the predictor
    /// trains on noise and the policy must merely lose accuracy, never
    /// correctness.
    pub corrupt_dod: u32,
    /// 1-in-N fill notifications withheld from the allocator entirely
    /// (the `on_l2_fill` upcall is skipped). Two-level policies whose
    /// release condition waits on the trigger's fill must fall back to
    /// their in-flight recheck rather than keep the second level
    /// captive forever.
    pub withhold_release: u32,
    /// Dispatch consults a stuck-at-maximum capacity: once a thread has
    /// seen an extended grant, the lie keeps reporting it after the
    /// policy revokes it, letting occupancy exceed the policy's global
    /// budget. The per-cycle conservation check must catch this as
    /// [`SimError::InvariantViolation`].
    ///
    /// [`SimError::InvariantViolation`]: crate::SimError::InvariantViolation
    pub capacity_latch: bool,
    /// From this cycle on, dispatch sees zero ROB capacity for every
    /// thread — total allocation starvation. The watchdog must surface
    /// it as a deadlock with every thread showing `rob=0`.
    pub capacity_zero_after: Option<Cycle>,
}

impl FaultPlan {
    /// A plan with the given decision seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Does this plan inject anything at all? (Fast path: the default
    /// plan short-circuits every hook.)
    #[inline]
    pub fn is_active(&self) -> bool {
        self.drop_fill != 0
            || self.delay_fill != 0
            || self.corrupt_dod != 0
            || self.withhold_release != 0
            || self.capacity_latch
            || self.capacity_zero_after.is_some()
    }

    #[inline]
    fn fires(&self, salt: u64, counter: u64, denom: u32) -> bool {
        match denom {
            0 => false,
            1 => true,
            n => mix(self.seed ^ salt ^ counter).is_multiple_of(n as u64),
        }
    }
}

/// Counts of faults actually injected — tests assert these to prove a
/// plan exercised the paths it was meant to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Completions/fills never scheduled.
    pub dropped_fills: u64,
    /// Completions/fills pushed back by `delay_cycles`.
    pub delayed_fills: u64,
    /// DoD counts replaced with garbage.
    pub corrupted_dod: u64,
    /// Allocator fill notifications suppressed.
    pub withheld_releases: u64,
}

impl FaultStats {
    /// Total faults injected across all categories.
    pub fn total(&self) -> u64 {
        self.dropped_fills + self.delayed_fills + self.corrupted_dod + self.withheld_releases
    }
}

/// What the injector decided for one L2-missing load at issue time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FillFault {
    /// Schedule normally.
    None,
    /// Never schedule completion or fill.
    Drop,
    /// Schedule both, `delay` cycles late.
    Delay(u64),
}

/// Live injection state owned by the simulator: the immutable plan plus
/// per-category opportunity counters, per-thread capacity latches and
/// the fired-fault statistics.
#[derive(Clone, Debug, Default)]
pub(crate) struct FaultState {
    pub plan: FaultPlan,
    pub stats: FaultStats,
    fills_seen: u64,
    notifies_seen: u64,
    /// Highest capacity grant ever observed per thread (capacity_latch).
    latched: Vec<usize>,
}

impl FaultState {
    pub fn new(plan: FaultPlan, num_threads: usize) -> Self {
        FaultState {
            plan,
            stats: FaultStats::default(),
            fills_seen: 0,
            notifies_seen: 0,
            latched: vec![0; num_threads],
        }
    }

    /// Decision for an L2-missing load about to schedule its
    /// completion/fill events. Drop takes precedence over delay when
    /// both fire on the same opportunity.
    #[inline]
    pub fn on_l2_fill_scheduled(&mut self) -> FillFault {
        if !self.plan.is_active() {
            return FillFault::None;
        }
        let k = self.fills_seen;
        self.fills_seen += 1;
        if self.plan.fires(SALT_DROP, k, self.plan.drop_fill) {
            self.stats.dropped_fills += 1;
            return FillFault::Drop;
        }
        if self.plan.fires(SALT_DELAY, k, self.plan.delay_fill) {
            self.stats.delayed_fills += 1;
            return FillFault::Delay(self.plan.delay_cycles);
        }
        FillFault::None
    }

    /// Decision for a fill notification about to reach the allocator:
    /// possibly corrupt the DoD count, possibly suppress the upcall.
    /// Returns `(counted_dod, deliver)`.
    #[inline]
    pub fn on_fill_notify(&mut self, counted_dod: u32) -> (u32, bool) {
        if !self.plan.is_active() {
            return (counted_dod, true);
        }
        let k = self.notifies_seen;
        self.notifies_seen += 1;
        let mut dod = counted_dod;
        if self.plan.fires(SALT_CORRUPT, k, self.plan.corrupt_dod) {
            self.stats.corrupted_dod += 1;
            // Saturating 5-bit garbage, guaranteed different from the
            // true count.
            dod = (counted_dod ^ (1 + (mix(self.plan.seed ^ k) % 31) as u32)) & 31;
        }
        if self
            .plan
            .fires(SALT_WITHHOLD, k, self.plan.withhold_release)
        {
            self.stats.withheld_releases += 1;
            return (dod, false);
        }
        (dod, true)
    }

    /// The capacity dispatch actually sees, after any capacity lies.
    #[inline]
    pub fn effective_capacity(&mut self, t: ThreadId, real: usize, now: Cycle) -> usize {
        if !self.plan.is_active() {
            return real;
        }
        if let Some(after) = self.plan.capacity_zero_after {
            if now >= after {
                return 0;
            }
        }
        if self.plan.capacity_latch {
            let l = &mut self.latched[t];
            *l = (*l).max(real);
            return *l;
        }
        real
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut st = FaultState::new(plan, 4);
        for _ in 0..100 {
            assert_eq!(st.on_l2_fill_scheduled(), FillFault::None);
            assert_eq!(st.on_fill_notify(7), (7, true));
            assert_eq!(st.effective_capacity(0, 32, 500), 32);
        }
        assert_eq!(st.stats.total(), 0);
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan {
            seed: 99,
            drop_fill: 3,
            delay_fill: 2,
            delay_cycles: 400,
            corrupt_dod: 4,
            withhold_release: 5,
            ..FaultPlan::default()
        };
        let run = |plan: &FaultPlan| {
            let mut st = FaultState::new(plan.clone(), 4);
            let fills: Vec<FillFault> = (0..64).map(|_| st.on_l2_fill_scheduled()).collect();
            let notes: Vec<(u32, bool)> = (0..64).map(|i| st.on_fill_notify(i % 32)).collect();
            (fills, notes, st.stats)
        };
        assert_eq!(run(&plan), run(&plan.clone()));
        let other = FaultPlan {
            seed: 100,
            ..plan.clone()
        };
        assert_ne!(run(&plan).0, run(&other).0);
    }

    #[test]
    fn denominator_one_always_fires() {
        let plan = FaultPlan {
            seed: 1,
            drop_fill: 1,
            ..FaultPlan::default()
        };
        let mut st = FaultState::new(plan, 1);
        for _ in 0..10 {
            assert_eq!(st.on_l2_fill_scheduled(), FillFault::Drop);
        }
        assert_eq!(st.stats.dropped_fills, 10);
    }

    #[test]
    fn rates_are_roughly_one_in_n() {
        let plan = FaultPlan {
            seed: 7,
            drop_fill: 8,
            ..FaultPlan::default()
        };
        let mut st = FaultState::new(plan, 1);
        let fired = (0..8000)
            .filter(|_| st.on_l2_fill_scheduled() == FillFault::Drop)
            .count();
        // 1-in-8 over 8000 trials: expect ~1000, allow wide slack.
        assert!((600..1400).contains(&fired), "fired {fired}");
    }

    #[test]
    fn capacity_zero_after_threshold() {
        let plan = FaultPlan {
            capacity_zero_after: Some(1000),
            ..FaultPlan::default()
        };
        let mut st = FaultState::new(plan, 2);
        assert_eq!(st.effective_capacity(0, 32, 999), 32);
        assert_eq!(st.effective_capacity(0, 32, 1000), 0);
        assert_eq!(st.effective_capacity(1, 32, 5000), 0);
    }

    #[test]
    fn capacity_latch_sticks_at_maximum() {
        let plan = FaultPlan {
            capacity_latch: true,
            ..FaultPlan::default()
        };
        let mut st = FaultState::new(plan, 1);
        assert_eq!(st.effective_capacity(0, 32, 0), 32);
        assert_eq!(st.effective_capacity(0, 384, 1), 384);
        // Policy revokes the extension; the lie keeps reporting it.
        assert_eq!(st.effective_capacity(0, 32, 2), 384);
    }

    #[test]
    fn corrupt_dod_changes_value_within_range() {
        let plan = FaultPlan {
            seed: 3,
            corrupt_dod: 1,
            ..FaultPlan::default()
        };
        let mut st = FaultState::new(plan, 1);
        for true_dod in 0..32 {
            let (dod, deliver) = st.on_fill_notify(true_dod);
            assert!(deliver);
            assert_ne!(dod, true_dod);
            assert!(dod < 32);
        }
        assert_eq!(st.stats.corrupted_dod, 32);
    }
}
