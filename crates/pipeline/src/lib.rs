//! # smtsim-pipeline
//!
//! A cycle-level simultaneous-multithreading (SMT) out-of-order
//! processor model — the M-Sim-equivalent substrate for the two-level
//! reorder buffer reproduction (Loew & Ponomarev, ICPP 2008).
//!
//! The model implements the paper's Table 1 machine: an 8-wide
//! fetch/issue/commit core with per-thread front ends, shared rename
//! register files (224 int + 224 fp), a shared 64-entry issue queue,
//! per-thread 48-entry load/store queues and per-thread reorder buffers
//! whose *capacity is a policy decision* — the hook through which the
//! paper's two-level ROB (crate `smtsim-rob2`) plugs in. Fetch is
//! governed by ICOUNT, DCRA (the paper's baseline), STALL, FLUSH or
//! round-robin policies.
//!
//! ```
//! use smtsim_pipeline::{FixedRob, MachineConfig, Simulator, StopCondition};
//! use smtsim_workload::Workload;
//! use std::sync::Arc;
//!
//! let mut cfg = MachineConfig::icpp08_single();
//! let wl = Arc::new(Workload::spec("gzip", 1, 0x1_0000, 0x1000_0000));
//! let mut sim = Simulator::new(cfg, vec![wl], Box::new(FixedRob::new(32)), 7);
//! let stats = sim.run(StopCondition::AnyThreadCommitted(5_000));
//! assert!(stats.threads[0].committed >= 5_000);
//! ```

// The cycle loop is load-bearing for every experiment in the repo: a
// stray unwrap in a stage turns a model bug into a process abort that
// takes a whole sweep down. Production code must route failures through
// `SimError` / `Simulator::report_integrity`; the few sites where an
// Option is structurally impossible carry a local `#[allow]` with an
// `// invariant:` justification. (Tests are exempt.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod builder;
pub mod config;
pub mod core;
pub mod error;
pub mod fault;
pub mod fu;
pub mod regfile;
pub mod rob_policy;
pub(crate) mod soa;
pub mod stages;
pub mod stats;
pub mod types;

pub use budget::{CancelToken, RunBudget, BUDGET_POLL_INTERVAL};
pub use builder::SimulatorBuilder;
pub use config::{DcraConfig, FetchPolicyKind, MachineConfig};
pub use core::{Simulator, StopCondition};
pub use error::{DeadlockSnapshot, HeadSnapshot, SimError, ThreadSnapshot};
pub use fault::{FaultPlan, FaultStats};
pub use fu::FuPool;
pub use regfile::{PhysReg, RegFiles};
pub use rob_policy::{DodBounds, FixedRob, MissEvent, RobAllocator, RobQuery, DOD_WINDOW};
pub use smtsim_obs::{NoopTracer, TraceEvent, TraceLog, Tracer};
pub use stats::{DodHistogram, DodOracleStats, SimStats, ThreadStats};
pub use types::{InstRef, InstState};
