//! Functional-unit pool: per-group unit occupancy tracking.

use smtsim_isa::{FuGroup, FuTimings, OpClass};
use smtsim_mem::Cycle;

/// Tracks when each functional unit becomes free.
#[derive(Clone, Debug)]
pub struct FuPool {
    timings: FuTimings,
    /// `busy_until[group][unit]` = first cycle the unit can accept work.
    busy_until: [Vec<Cycle>; 5],
    /// Issues per group (statistics).
    pub issues: [u64; 5],
}

impl FuPool {
    /// Builds the pool from unit counts in `timings`.
    pub fn new(timings: &FuTimings) -> Self {
        let busy_until = FuGroup::ALL.map(|g| vec![0; timings.unit_count(g)]);
        FuPool {
            timings: timings.clone(),
            busy_until,
            issues: [0; 5],
        }
    }

    /// Can an op of class `op` start at `now`?
    pub fn can_issue(&self, op: OpClass, now: Cycle) -> bool {
        match op.fu_group() {
            None => true, // NOPs need no unit
            Some(g) => self.busy_until[g.index()].iter().any(|&b| b <= now),
        }
    }

    /// Reserves a unit for `op` starting at `now`; returns the cycle the
    /// *result* is available (`now + total latency`).
    ///
    /// # Panics
    /// Debug-panics if no unit is free ([`FuPool::can_issue`] first).
    // invariant: every caller gates on can_issue in the same cycle, so
    // a free unit must exist; there is no state to unwind if it doesn't.
    #[allow(clippy::expect_used)]
    pub fn issue(&mut self, op: OpClass, now: Cycle) -> Cycle {
        let lat = self.timings.latency(op);
        if let Some(g) = op.fu_group() {
            let gi = g.index();
            let unit = self.busy_until[gi]
                .iter()
                .position(|&b| b <= now)
                .expect("no free unit; call can_issue first"); // xtask: allow-unwrap
            self.busy_until[gi][unit] = now + lat.issue as Cycle;
            self.issues[gi] += 1;
        }
        now + lat.total as Cycle
    }

    /// Latency pair access for callers needing address-generation time.
    pub fn timings(&self) -> &FuTimings {
        &self.timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_unit_accepts_every_cycle() {
        let mut p = FuPool::new(&FuTimings::icpp08());
        for t in 0..10 {
            assert!(p.can_issue(OpClass::IntAlu, t));
            assert_eq!(p.issue(OpClass::IntAlu, t), t + 1);
        }
    }

    #[test]
    fn unpipelined_divider_blocks() {
        let mut timings = FuTimings::icpp08();
        timings.counts[FuGroup::IntMultDiv.index()] = 1; // single unit
        let mut p = FuPool::new(&timings);
        assert_eq!(p.issue(OpClass::IntDiv, 0), 20);
        // Busy for 19 cycles (issue latency).
        assert!(!p.can_issue(OpClass::IntDiv, 5));
        assert!(!p.can_issue(OpClass::IntDiv, 18));
        assert!(p.can_issue(OpClass::IntDiv, 19));
    }

    #[test]
    fn width_limited_by_unit_count() {
        let mut timings = FuTimings::icpp08();
        timings.counts[FuGroup::LdSt.index()] = 2;
        let mut p = FuPool::new(&timings);
        p.issue(OpClass::Load, 0);
        p.issue(OpClass::Store, 0);
        assert!(!p.can_issue(OpClass::Load, 0), "both ports taken");
        assert!(p.can_issue(OpClass::Load, 1), "pipelined: free next cycle");
    }

    #[test]
    fn nop_needs_no_unit() {
        let mut p = FuPool::new(&FuTimings::icpp08());
        assert!(p.can_issue(OpClass::Nop, 0));
        assert_eq!(p.issue(OpClass::Nop, 0), 1);
    }

    #[test]
    fn groups_are_independent() {
        let mut timings = FuTimings::icpp08();
        timings.counts = [1, 1, 1, 1, 1];
        let mut p = FuPool::new(&timings);
        p.issue(OpClass::IntDiv, 0);
        assert!(p.can_issue(OpClass::FpAdd, 0));
        assert!(p.can_issue(OpClass::Load, 0));
    }

    #[test]
    fn issue_counts_accumulate() {
        let mut p = FuPool::new(&FuTimings::icpp08());
        p.issue(OpClass::IntAlu, 0);
        p.issue(OpClass::BranchCond, 0);
        assert_eq!(p.issues[FuGroup::IntAdd.index()], 2);
    }
}
