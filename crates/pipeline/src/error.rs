//! Typed simulation errors.
//!
//! The simulator's integrity machinery — configuration validation, the
//! no-commit-progress watchdog, and the invariant checker — reports
//! failures as [`SimError`] values through [`Simulator::try_step`] /
//! [`Simulator::try_run`] instead of aborting the process. The
//! panicking entry points ([`Simulator::new`], [`Simulator::run`])
//! remain as thin wrappers for callers that treat any model failure as
//! fatal; harnesses that sweep many configurations (the `Lab` in
//! `smtsim-rob2`) use the `try_` forms so one poisoned cell cannot take
//! down a whole experiment.
//!
//! [`Simulator::try_step`]: crate::Simulator::try_step
//! [`Simulator::try_run`]: crate::Simulator::try_run
//! [`Simulator::new`]: crate::Simulator::new
//! [`Simulator::run`]: crate::Simulator::run

use smtsim_isa::OpClass;
use smtsim_mem::Cycle;
use std::fmt;

/// Why a simulation could not continue.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The watchdog saw no instruction commit for
    /// `MachineConfig::deadlock_cycles` consecutive cycles. Carries a
    /// machine-state snapshot for diagnosis.
    Deadlock {
        /// Per-thread and shared-structure state at detection time.
        snapshot: Box<DeadlockSnapshot>,
    },
    /// A cross-structure consistency check failed: the model reached a
    /// state that no correct hardware could be in (conservation,
    /// ordering or synchronization breakage).
    InvariantViolation {
        /// Cycle at which the violation was detected.
        cycle: Cycle,
        /// Which check failed and the observed values.
        detail: String,
    },
    /// The machine configuration or workload set is structurally
    /// invalid; the simulator was never constructed.
    InvalidConfig {
        /// Which constraint was violated.
        reason: String,
    },
    /// A sweep cell panicked. The crash-isolated sweep engine
    /// (`Lab::sweep` in `smtsim-rob2`) catches the unwind, converts it
    /// to this typed error and keeps the remaining cells running; the
    /// cell renders as `n/a` like any other failed cell.
    CellPanic {
        /// The panic payload, when it was a string (the common case).
        reason: String,
    },
    /// The per-cell watchdog budget (`RunBudget`) expired before the
    /// stop condition was reached: the simulated-cycle ceiling or the
    /// wall-clock ceiling was exhausted, or the sweep engine cancelled
    /// the cell through its [`CancelToken`](crate::CancelToken). Like
    /// [`SimError::CellPanic`], the cell renders as `n/a` with a note
    /// and the remaining cells keep running.
    CellTimeout {
        /// Cycle at which the budget check fired.
        cycle: Cycle,
        /// Which ceiling expired and its configured value.
        detail: String,
    },
}

impl SimError {
    /// Short machine-readable kind tag (stable across messages; used by
    /// sweep reports to label failed cells).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock { .. } => "deadlock",
            SimError::InvariantViolation { .. } => "invariant-violation",
            SimError::InvalidConfig { .. } => "invalid-config",
            SimError::CellPanic { .. } => "panic",
            SimError::CellTimeout { .. } => "timeout",
        }
    }

    /// Whether a sweep may retry this cell: transient failure modes
    /// (panic, watchdog timeout, deadlock — the signature of an
    /// injected fault wedging the machine) can succeed on a clean
    /// re-run, while configuration and invariant errors are
    /// deterministic and retrying would only repeat them.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::CellPanic { .. } | SimError::CellTimeout { .. } | SimError::Deadlock { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { snapshot } => write!(f, "{snapshot}"),
            SimError::InvariantViolation { cycle, detail } => {
                write!(f, "invariant violation at cycle {cycle}: {detail}")
            }
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            SimError::CellPanic { reason } => {
                write!(f, "cell panicked: {reason}")
            }
            SimError::CellTimeout { cycle, detail } => {
                write!(f, "cell timed out at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The reorder-buffer head of one thread at deadlock time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeadSnapshot {
    /// ROB tag of the oldest in-flight instruction.
    pub tag: u64,
    /// Its operation class.
    pub op: OpClass,
    /// Has it issued?
    pub issued: bool,
    /// Has it executed (result valid)?
    pub executed: bool,
}

/// One thread's state in a [`DeadlockSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct ThreadSnapshot {
    /// ROB occupancy.
    pub rob_len: usize,
    /// The allocation policy's current capacity grant.
    pub rob_cap: usize,
    /// Shared-IQ entries held.
    pub iq_use: usize,
    /// ICOUNT metric (front end + unissued IQ entries).
    pub icount: usize,
    /// Oldest in-flight instruction, if any.
    pub head: Option<HeadSnapshot>,
    /// Front end halted awaiting a redirect.
    pub fetch_halted: bool,
    /// Front end stalled until this cycle.
    pub fetch_stall_until: Cycle,
    /// Fetching fabricated wrong-path instructions.
    pub in_wrong_path: bool,
    /// Detected, unfilled L2 misses in flight.
    pub pending_l2: usize,
}

/// Machine state captured when the deadlock watchdog fires — everything
/// needed to tell a starved thread from a lost wakeup from a policy
/// that stopped granting capacity.
#[derive(Clone, Debug, PartialEq)]
pub struct DeadlockSnapshot {
    /// The watchdog threshold that fired.
    pub deadlock_cycles: u64,
    /// Cycle at detection.
    pub now: Cycle,
    /// Active ROB-policy name.
    pub policy: String,
    /// Per-thread state.
    pub threads: Vec<ThreadSnapshot>,
    /// Shared-IQ occupancy.
    pub iq_len: usize,
    /// Shared-IQ capacity.
    pub iq_size: usize,
    /// Free integer rename registers visible to thread 0.
    pub int_free_t0: usize,
    /// Free floating-point rename registers visible to thread 0.
    pub fp_free_t0: usize,
}

impl fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock: no commit for {} cycles (now={}, policy={})",
            self.deadlock_cycles, self.now, self.policy
        )?;
        for (t, th) in self.threads.iter().enumerate() {
            writeln!(
                f,
                "  t{t}: rob={}/{} iq_use={} icount={} head={:?} halted={} stall_until={} wrong_path={} pend_l2={}",
                th.rob_len,
                th.rob_cap,
                th.iq_use,
                th.icount,
                th.head.map(|h| (h.tag, h.op, h.issued, h.executed)),
                th.fetch_halted,
                th.fetch_stall_until,
                th.in_wrong_path,
                th.pending_l2,
            )?;
        }
        write!(
            f,
            "  iq={}/{} int_free(t0)={} fp_free(t0)={}",
            self.iq_len, self.iq_size, self.int_free_t0, self.fp_free_t0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> DeadlockSnapshot {
        DeadlockSnapshot {
            deadlock_cycles: 1000,
            now: 1001,
            policy: "Baseline_32".into(),
            threads: vec![ThreadSnapshot {
                rob_len: 32,
                rob_cap: 32,
                iq_use: 4,
                icount: 8,
                head: Some(HeadSnapshot {
                    tag: 17,
                    op: OpClass::Load,
                    issued: true,
                    executed: false,
                }),
                fetch_halted: false,
                fetch_stall_until: 0,
                in_wrong_path: false,
                pending_l2: 1,
            }],
            iq_len: 12,
            iq_size: 64,
            int_free_t0: 3,
            fp_free_t0: 40,
        }
    }

    #[test]
    fn deadlock_display_carries_diagnostics() {
        let e = SimError::Deadlock {
            snapshot: Box::new(snapshot()),
        };
        let msg = e.to_string();
        assert!(msg.contains("no commit for 1000 cycles"));
        assert!(msg.contains("t0: rob=32/32"));
        assert!(msg.contains("pend_l2=1"));
        assert!(msg.contains("iq=12/64"));
        assert_eq!(e.kind(), "deadlock");
    }

    #[test]
    fn invariant_display() {
        let e = SimError::InvariantViolation {
            cycle: 42,
            detail: "t0: ROB occupancy 33 exceeds bound".into(),
        };
        assert!(e.to_string().contains("cycle 42"));
        assert_eq!(e.kind(), "invariant-violation");
    }

    #[test]
    fn cell_panic_display() {
        let e = SimError::CellPanic {
            reason: "mix index 99 out of range 1..=11".into(),
        };
        assert!(e.to_string().contains("cell panicked"));
        assert!(e.to_string().contains("out of range"));
        assert_eq!(e.kind(), "panic");
    }

    #[test]
    fn cell_timeout_display_and_transience() {
        let e = SimError::CellTimeout {
            cycle: 4096,
            detail: "cycle budget of 4096 simulated cycles exhausted".into(),
        };
        assert!(e.to_string().contains("timed out at cycle 4096"));
        assert!(e.to_string().contains("cycle budget"));
        assert_eq!(e.kind(), "timeout");
        assert!(e.is_transient());
        assert!(SimError::CellPanic { reason: "x".into() }.is_transient());
        assert!(!SimError::InvalidConfig { reason: "x".into() }.is_transient());
        assert!(!SimError::InvariantViolation {
            cycle: 1,
            detail: "x".into()
        }
        .is_transient());
    }

    #[test]
    fn invalid_config_display() {
        let e = SimError::InvalidConfig {
            reason: "iq_size must be nonzero".into(),
        };
        assert!(e.to_string().contains("iq_size"));
        assert_eq!(e.kind(), "invalid-config");
    }
}
