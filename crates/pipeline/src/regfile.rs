//! Physical register files, free lists and per-thread rename tables.
//!
//! Each hardware thread owns private physical register files (Table 1:
//! 224 integer + 224 floating point per thread). The paper's analysis
//! singles out the *shared issue queue* as the critical resource and
//! explicitly argues register files can be scaled ("no associative
//! addressing ... easier to implement larger register files"), and its
//! 416-entry two-level windows would be unrealizable against a shared
//! 224-entry pool (4 threads × 32-entry ROBs already hold ~90 renames);
//! we therefore model the register files as per-thread partitions. Each
//! thread pins one physical register per architectural register; the
//! remaining 192 per class bound that thread's in-flight register
//! writers.

use smtsim_isa::{ArchReg, RegClass, ThreadId};

/// A physical register name. The class is implied by which file the
/// register came from; we carry it for checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PhysReg {
    /// Register class.
    pub class: RegClass,
    /// Index within the class's file.
    pub idx: u16,
}

/// One class's physical register storage: per-thread partitions laid
/// out contiguously (thread `t` owns indices `[t*per_thread, (t+1)*per_thread)`).
#[derive(Clone, Debug)]
struct File {
    ready: Vec<bool>,
    /// Free list per thread.
    free: Vec<Vec<u16>>,
    /// Rename allocations currently held per thread (statistics).
    per_thread: Vec<usize>,
    per_thread_total: usize,
}

impl File {
    fn new(per_thread_total: usize, threads: usize, shared: bool) -> Self {
        let free = if shared {
            // One pool: Table 1's register count covers the whole core.
            vec![(0..(per_thread_total * threads) as u16).rev().collect()]
        } else {
            (0..threads)
                .map(|t| {
                    let base = (t * per_thread_total) as u16;
                    (base..base + per_thread_total as u16).rev().collect()
                })
                .collect()
        };
        File {
            ready: vec![false; per_thread_total * threads],
            free,
            per_thread: vec![0; threads],
            per_thread_total,
        }
    }

    #[inline]
    fn pool_of(&self, thread: usize) -> usize {
        if self.free.len() == 1 {
            0
        } else {
            thread
        }
    }
}

/// Both register files plus per-thread rename map tables.
#[derive(Clone, Debug)]
pub struct RegFiles {
    files: [File; 2],
    /// `maps[t][arch.flat_index()]` = current physical mapping.
    maps: Vec<[PhysReg; ArchReg::FLAT_COUNT]>,
}

impl RegFiles {
    /// Builds the register files (`int_regs`/`fp_regs` per thread) and
    /// initializes each thread's map table with freshly pinned, ready
    /// physical registers. With `shared`, the rename pools of all
    /// threads are merged into one core-wide pool of
    /// `int_regs × threads` (ablation of the register-sharing model).
    ///
    /// # Panics
    /// Panics if the files cannot cover the architectural state.
    pub fn new(int_regs: usize, fp_regs: usize, threads: usize, shared: bool) -> Self {
        let mut files = [
            File::new(int_regs, threads, shared),
            File::new(fp_regs, threads, shared),
        ];
        let mut maps = Vec::with_capacity(threads);
        for t in 0..threads {
            let mut map = [PhysReg {
                class: RegClass::Int,
                idx: 0,
            }; ArchReg::FLAT_COUNT];
            for class in RegClass::ALL {
                for a in 0..class.arch_count() {
                    let file = &mut files[class.index()];
                    let pool = file.pool_of(t);
                    // invariant: MachineConfig::validate guarantees the
                    // pool covers every thread's architectural state
                    // before a Simulator (and thus RegFiles) is built.
                    #[allow(clippy::expect_used)]
                    let idx = file.free[pool]
                        .pop() // xtask: allow-unwrap
                        .expect("register file too small for architectural state");
                    file.ready[idx as usize] = true;
                    let arch = match class {
                        RegClass::Int => ArchReg::int(a as u8),
                        RegClass::Fp => ArchReg::fp(a as u8),
                    };
                    map[arch.flat_index()] = PhysReg { class, idx };
                }
            }
            maps.push(map);
        }
        RegFiles { files, maps }
    }

    /// Free registers remaining in `thread`'s rename pool for `class`
    /// (the shared pool when built with `shared`).
    pub fn free_count(&self, thread: ThreadId, class: RegClass) -> usize {
        let f = &self.files[class.index()];
        f.free[f.pool_of(thread)].len()
    }

    /// Rename allocations currently held by `thread` in `class`.
    pub fn usage(&self, thread: ThreadId, class: RegClass) -> usize {
        self.files[class.index()].per_thread[thread]
    }

    /// Current mapping of an architectural register.
    #[inline]
    pub fn map(&self, thread: ThreadId, arch: ArchReg) -> PhysReg {
        self.maps[thread][arch.flat_index()]
    }

    /// Is the physical register's value available?
    #[inline]
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.files[p.class.index()].ready[p.idx as usize]
    }

    /// Marks a physical register ready (producer completed).
    #[inline]
    pub fn set_ready(&mut self, p: PhysReg, ready: bool) {
        self.files[p.class.index()].ready[p.idx as usize] = ready;
    }

    /// Renames a destination: allocates a new physical register, remaps
    /// the architectural register, and returns `(new, old)` — the old
    /// mapping is kept in the ROB entry for commit-time freeing or
    /// squash-time restoration. Returns `None` when the pool is empty
    /// (dispatch must stall).
    pub fn rename_dst(&mut self, thread: ThreadId, arch: ArchReg) -> Option<(PhysReg, PhysReg)> {
        let class = arch.class();
        let file = &mut self.files[class.index()];
        let pool = file.pool_of(thread);
        let idx = file.free[pool].pop()?;
        file.ready[idx as usize] = false;
        file.per_thread[thread] += 1;
        let new = PhysReg { class, idx };
        let old = self.maps[thread][arch.flat_index()];
        self.maps[thread][arch.flat_index()] = new;
        Some((new, old))
    }

    /// Commit-time release: the previous mapping of the committed
    /// instruction's destination becomes unreachable and returns to the
    /// pool. The committing thread's rename usage drops by one (its
    /// allocation is now the pinned architectural mapping).
    pub fn commit_release(&mut self, thread: ThreadId, old: PhysReg) {
        let file = &mut self.files[old.class.index()];
        file.ready[old.idx as usize] = false;
        let pool = file.pool_of(thread);
        file.free[pool].push(old.idx);
        debug_assert!(file.per_thread[thread] > 0);
        file.per_thread[thread] -= 1;
    }

    /// Squash-time undo: restores the architectural mapping to `old`
    /// and frees the squashed instruction's allocation `new`. Must be
    /// applied youngest-first.
    pub fn squash_undo(&mut self, thread: ThreadId, arch: ArchReg, new: PhysReg, old: PhysReg) {
        debug_assert_eq!(self.maps[thread][arch.flat_index()], new, "squash order");
        self.maps[thread][arch.flat_index()] = old;
        let file = &mut self.files[new.class.index()];
        file.ready[new.idx as usize] = false;
        let pool = file.pool_of(thread);
        file.free[pool].push(new.idx);
        debug_assert!(file.per_thread[thread] > 0);
        file.per_thread[thread] -= 1;
    }

    /// Total registers in `class` across all threads.
    pub fn total(&self, class: RegClass) -> usize {
        self.files[class.index()].ready.len()
    }

    /// Per-thread register count in `class`.
    pub fn per_thread(&self, class: RegClass) -> usize {
        self.files[class.index()].per_thread_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rf() -> RegFiles {
        RegFiles::new(224, 224, 4, false)
    }

    #[test]
    fn initial_state_pins_arch_regs() {
        let r = rf();
        // 224 - 32 = 192 free per thread per class.
        for t in 0..4 {
            assert_eq!(r.free_count(t, RegClass::Int), 192);
            assert_eq!(r.free_count(t, RegClass::Fp), 192);
            assert!(r.is_ready(r.map(t, ArchReg::int(5))));
            assert!(r.is_ready(r.map(t, ArchReg::fp(31))));
            assert_eq!(r.usage(t, RegClass::Int), 0);
        }
        assert_eq!(r.total(RegClass::Int), 4 * 224);
        assert_eq!(r.per_thread(RegClass::Int), 224);
    }

    #[test]
    fn threads_have_distinct_mappings() {
        let r = rf();
        let a = r.map(0, ArchReg::int(3));
        let b = r.map(1, ArchReg::int(3));
        assert_ne!(a, b);
    }

    #[test]
    fn rename_allocates_and_remaps() {
        let mut r = rf();
        let arch = ArchReg::int(7);
        let before = r.map(0, arch);
        let (new, old) = r.rename_dst(0, arch).unwrap();
        assert_eq!(old, before);
        assert_eq!(r.map(0, arch), new);
        assert!(!r.is_ready(new));
        assert_eq!(r.free_count(0, RegClass::Int), 191);
        assert_eq!(
            r.free_count(1, RegClass::Int),
            192,
            "other threads unaffected"
        );
        assert_eq!(r.usage(0, RegClass::Int), 1);
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut r = rf();
        for i in 0..192 {
            assert!(r.rename_dst(0, ArchReg::int((i % 20) as u8)).is_some());
        }
        assert!(r.rename_dst(0, ArchReg::int(1)).is_none());
        assert_eq!(r.usage(0, RegClass::Int), 192);
        // Other threads and the FP pool are unaffected.
        assert!(r.rename_dst(1, ArchReg::int(1)).is_some());
        assert!(r.rename_dst(0, ArchReg::fp(1)).is_some());
    }

    #[test]
    fn commit_release_returns_old_to_pool() {
        let mut r = rf();
        let arch = ArchReg::int(2);
        let (_, old) = r.rename_dst(0, arch).unwrap();
        assert_eq!(r.free_count(0, RegClass::Int), 191);
        r.commit_release(0, old);
        assert_eq!(r.free_count(0, RegClass::Int), 192);
        assert_eq!(r.usage(0, RegClass::Int), 0);
    }

    #[test]
    fn squash_undo_restores_mapping() {
        let mut r = rf();
        let arch = ArchReg::int(9);
        let before = r.map(0, arch);
        let (n1, o1) = r.rename_dst(0, arch).unwrap();
        let (n2, o2) = r.rename_dst(0, arch).unwrap();
        assert_eq!(o2, n1);
        // Undo youngest-first.
        r.squash_undo(0, arch, n2, o2);
        assert_eq!(r.map(0, arch), n1);
        r.squash_undo(0, arch, n1, o1);
        assert_eq!(r.map(0, arch), before);
        assert_eq!(r.free_count(0, RegClass::Int), 192);
        assert_eq!(r.usage(0, RegClass::Int), 0);
    }

    #[test]
    fn rename_commit_squash_roundtrip_preserves_invariants() {
        let mut r = rf();
        let arch = ArchReg::int(4);
        // Simulate: rename A, rename B, commit A, squash B.
        let (_na, oa) = r.rename_dst(0, arch).unwrap();
        let (nb, ob) = r.rename_dst(0, arch).unwrap();
        r.commit_release(0, oa);
        r.squash_undo(0, arch, nb, ob);
        assert_eq!(r.map(0, arch), ob);
        assert_eq!(r.free_count(0, RegClass::Int), 192);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_file_panics() {
        let _ = RegFiles::new(20, 224, 4, false);
    }

    #[test]
    fn shared_pool_semantics() {
        let mut r = RegFiles::new(64, 64, 2, true);
        // 2*64 - 2*32 pinned = 64 shared free per class.
        assert_eq!(r.free_count(0, RegClass::Int), 64);
        assert_eq!(r.free_count(1, RegClass::Int), 64);
        let (_, old) = r.rename_dst(0, ArchReg::int(1)).unwrap();
        assert_eq!(r.free_count(1, RegClass::Int), 63, "pool is shared");
        r.commit_release(0, old);
        assert_eq!(r.free_count(1, RegClass::Int), 64);
    }

    #[test]
    fn ready_toggling() {
        let mut r = rf();
        let (new, _) = r.rename_dst(0, ArchReg::int(1)).unwrap();
        assert!(!r.is_ready(new));
        r.set_ready(new, true);
        assert!(r.is_ready(new));
    }
}
