//! Machine configuration (the paper's Table 1) and fetch-policy knobs.

use crate::error::SimError;
use smtsim_isa::FuTimings;
use smtsim_mem::{CacheConfig, MemConfig};

/// Dynamic resource-allocation policy constants for DCRA
/// (Cazorla et al., MICRO-37), reimplemented from its published
/// description; see DESIGN.md §3 for the approximation notes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DcraConfig {
    /// Share multiplier for memory-demanding ("slow") threads: a slow
    /// thread may occupy `slow_share` times the base share of a fast
    /// thread for each controlled resource (IQ, registers).
    pub slow_share: u32,
}

impl Default for DcraConfig {
    fn default() -> Self {
        DcraConfig { slow_share: 2 }
    }
}

/// Instruction fetch / dispatch gating policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FetchPolicyKind {
    /// Round-robin over runnable threads (simplest baseline).
    RoundRobin,
    /// ICOUNT (Tullsen et al.): prioritize threads with the fewest
    /// instructions in decode/rename/IQ.
    Icount,
    /// DCRA (Cazorla et al.): ICOUNT ordering plus per-thread caps on
    /// shared-resource usage, with slow (memory-demanding) threads
    /// granted larger shares. The paper's baseline.
    Dcra(DcraConfig),
    /// STALL (Tullsen & Brown): gate fetch for a thread with an
    /// outstanding L2 miss.
    Stall,
    /// FLUSH (Tullsen & Brown): STALL plus squashing the instructions
    /// already in the pipeline behind the missing load.
    Flush,
}

/// Full machine configuration. [`MachineConfig::icpp08`] reproduces
/// Table 1.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Hardware thread contexts (4 in the paper).
    pub num_threads: usize,
    /// Fetch width in instructions per cycle (8).
    pub fetch_width: usize,
    /// Maximum threads fetched per cycle (the "2" of ICOUNT 2.8).
    pub fetch_threads: usize,
    /// Cycles between fetch and earliest dispatch (front-end depth).
    pub decode_latency: u64,
    /// Per-thread fetch-queue capacity.
    pub fetch_queue: usize,
    /// Dispatch width (instructions renamed/dispatched per cycle).
    pub dispatch_width: usize,
    /// Issue width (8).
    pub issue_width: usize,
    /// Commit width (8).
    pub commit_width: usize,
    /// Shared issue-queue entries (64).
    pub iq_size: usize,
    /// Per-thread load/store queue entries (48).
    pub lsq_size: usize,
    /// Integer physical registers in the core (Table 1: 224 total).
    pub int_regs: usize,
    /// Floating-point physical registers in the core (224 total).
    pub fp_regs: usize,
    /// Organize the rename pool as one shared core-wide pool (the
    /// default, matching Table 1's single 224+224 budget and the
    /// paper's "pressure on the ... register file (RF)" analysis) or
    /// as per-thread partitions of `int_regs / num_threads` each
    /// (ablation).
    pub shared_regs: bool,
    /// Functional-unit counts and latencies.
    pub fu: FuTimings,
    /// Fetch policy.
    pub fetch_policy: FetchPolicyKind,
    /// L1 I-cache geometry.
    pub l1i: CacheConfig,
    /// L1 D-cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Memory/bus timing.
    pub mem: MemConfig,
    /// Extra cycles of fetch redirect penalty after a branch
    /// misprediction resolves (on top of pipeline refill through the
    /// decode stages).
    pub redirect_penalty: u64,
    /// Watchdog: abort if no instruction commits for this many cycles
    /// (catches model deadlocks in development and CI).
    pub deadlock_cycles: u64,
    /// Run the deep cross-structure invariant scan
    /// ([`crate::Simulator::check_invariants`] plus the allocation
    /// policy's self-audit) every this many cycles; `0` disables it.
    /// The O(threads) conservation checks are always on regardless —
    /// this knob only controls the O(machine-state) scan, which is too
    /// slow for measurement runs but cheap insurance in tests and CI.
    pub invariant_interval: u64,
}

impl MachineConfig {
    /// The paper's Table 1 machine: 8-wide, 4 threads, 64-entry shared
    /// IQ, 48-entry LSQs, 224+224 physical registers, DCRA fetch.
    pub fn icpp08() -> Self {
        MachineConfig {
            num_threads: 4,
            fetch_width: 8,
            fetch_threads: 2,
            decode_latency: 3,
            fetch_queue: 16,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            iq_size: 64,
            lsq_size: 48,
            int_regs: 224,
            fp_regs: 224,
            shared_regs: true,
            fu: FuTimings::icpp08(),
            fetch_policy: FetchPolicyKind::Dcra(DcraConfig::default()),
            l1i: CacheConfig::l1i_icpp08(),
            l1d: CacheConfig::l1d_icpp08(),
            l2: CacheConfig::l2_icpp08(),
            mem: MemConfig::icpp08(),
            redirect_penalty: 2,
            deadlock_cycles: 1_000_000,
            invariant_interval: 0,
        }
    }

    /// Same machine with a single hardware thread (for the
    /// single-threaded runs that normalize weighted IPC).
    pub fn icpp08_single() -> Self {
        MachineConfig {
            num_threads: 1,
            fetch_threads: 1,
            ..MachineConfig::icpp08()
        }
    }

    /// Validates structural constraints.
    pub fn validate(&self) -> Result<(), SimError> {
        let fail = |reason: String| Err(SimError::InvalidConfig { reason });
        if self.num_threads == 0 || self.num_threads > smtsim_isa::MAX_THREADS {
            return fail("num_threads out of range".into());
        }
        if self.fetch_threads == 0 || self.fetch_threads > self.num_threads {
            return fail("fetch_threads out of range".into());
        }
        for (name, v) in [
            ("fetch_width", self.fetch_width),
            ("dispatch_width", self.dispatch_width),
            ("issue_width", self.issue_width),
            ("commit_width", self.commit_width),
            ("iq_size", self.iq_size),
            ("lsq_size", self.lsq_size),
            ("fetch_queue", self.fetch_queue),
        ] {
            if v == 0 {
                return fail(format!("{name} must be nonzero"));
            }
        }
        // Each thread permanently pins one physical register per
        // architectural register; there must be headroom to rename.
        if self.int_regs / self.num_threads <= smtsim_isa::NUM_ARCH_INT {
            return fail(format!(
                "int_regs {} cannot cover {} threads' architectural state",
                self.int_regs, self.num_threads
            ));
        }
        if self.fp_regs / self.num_threads <= smtsim_isa::NUM_ARCH_FP {
            return fail(format!(
                "fp_regs {} cannot cover {} threads' architectural state",
                self.fp_regs, self.num_threads
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = MachineConfig::icpp08();
        c.validate().unwrap();
        assert_eq!(c.num_threads, 4);
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.iq_size, 64);
        assert_eq!(c.lsq_size, 48);
        assert_eq!(c.int_regs, 224);
        assert_eq!(c.fp_regs, 224);
        assert!(matches!(c.fetch_policy, FetchPolicyKind::Dcra(_)));
    }

    #[test]
    fn single_thread_variant() {
        let c = MachineConfig::icpp08_single();
        c.validate().unwrap();
        assert_eq!(c.num_threads, 1);
        assert_eq!(c.iq_size, 64);
    }

    #[test]
    fn validate_catches_register_starvation() {
        let mut c = MachineConfig::icpp08();
        c.int_regs = 128; // exactly the pinned demand of 4 threads
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_catches_zero_widths() {
        let mut c = MachineConfig::icpp08();
        c.issue_width = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_catches_fetch_threads() {
        let mut c = MachineConfig::icpp08();
        c.fetch_threads = 5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn dcra_default_share() {
        assert_eq!(DcraConfig::default().slow_share, 2);
    }

    #[test]
    fn validate_returns_typed_error() {
        let mut c = MachineConfig::icpp08();
        c.iq_size = 0;
        match c.validate() {
            Err(SimError::InvalidConfig { reason }) => {
                assert!(reason.contains("iq_size"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn invariant_interval_defaults_off() {
        assert_eq!(MachineConfig::icpp08().invariant_interval, 0);
    }
}
