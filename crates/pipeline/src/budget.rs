//! Per-run watchdog budgets and cooperative cancellation.
//!
//! A sweep cell must never hang the worker pool: a wedged machine state
//! (e.g. an injected fill-drop that the deadlock watchdog's threshold
//! is too large to catch in reasonable time) would otherwise stall a
//! whole figure forever. [`RunBudget`] gives [`Simulator::try_run`] up
//! to three cooperative ceilings — simulated cycles, wall-clock time
//! and an external [`CancelToken`] — each of which terminates the run
//! with a typed [`SimError::CellTimeout`](crate::SimError::CellTimeout)
//! instead of aborting or spinning.
//!
//! Determinism: the simulated-cycle ceiling fires at an exact cycle and
//! is fully reproducible; the wall-clock ceiling and external
//! cancellation depend on host timing and are therefore *not*
//! deterministic (their error `detail` deliberately omits elapsed
//! times). Tests and the determinism harness use the cycle ceiling.
//!
//! [`Simulator::try_run`]: crate::Simulator::try_run

use smtsim_mem::Cycle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How often (in cycles) the wall-clock and token ceilings are polled
/// inside the cycle loop. The cycle ceiling is checked every cycle (it
/// must fire at an exact, reproducible cycle); the other two only need
/// sub-millisecond reaction latency, so they amortize the `Instant`
/// read and atomic load.
pub const BUDGET_POLL_INTERVAL: Cycle = 512;

/// A shared cancellation flag: the sweep engine (or an embedding
/// daemon) holds one clone and the cycle loop polls the other.
/// Cancellation is one-way and sticky.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Resource ceilings for one simulation run, enforced cooperatively by
/// [`Simulator::try_run`](crate::Simulator::try_run). All ceilings are
/// optional; the default budget is unlimited and adds no per-cycle
/// work beyond a branch.
#[derive(Clone, Debug, Default)]
pub struct RunBudget {
    /// Maximum simulated cycles for the run (deterministic ceiling).
    /// Counted from cycle 0, not from `try_run` entry, so a resumed
    /// `try_run` on the same simulator keeps the same absolute limit.
    pub max_cycles: Option<Cycle>,
    /// Maximum wall-clock milliseconds for one `try_run` call
    /// (non-deterministic ceiling; polled every
    /// [`BUDGET_POLL_INTERVAL`] cycles).
    pub wall_ms: Option<u64>,
    /// External cancellation (non-deterministic ceiling; polled every
    /// [`BUDGET_POLL_INTERVAL`] cycles).
    pub token: Option<CancelToken>,
}

impl RunBudget {
    /// An unlimited budget (the default for every constructor path).
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// A budget with only the deterministic simulated-cycle ceiling.
    pub fn cycles(max_cycles: Cycle) -> Self {
        RunBudget {
            max_cycles: Some(max_cycles),
            ..RunBudget::default()
        }
    }

    /// Whether any ceiling is configured.
    pub fn is_limited(&self) -> bool {
        self.max_cycles.is_some() || self.wall_ms.is_some() || self.token.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn budget_limits() {
        assert!(!RunBudget::unlimited().is_limited());
        assert!(RunBudget::cycles(100).is_limited());
        let b = RunBudget {
            token: Some(CancelToken::new()),
            ..RunBudget::default()
        };
        assert!(b.is_limited());
    }
}
