//! In-flight instruction state and pipeline bookkeeping types.

use crate::regfile::PhysReg;
use smtsim_isa::{DynInst, ThreadId};
use smtsim_mem::Cycle;

/// Stable identity of an in-flight instruction: its thread plus a
/// per-thread monotonically increasing tag. Tags never recycle within a
/// run, so stale references (e.g. completion events for squashed
/// instructions) are detected by comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstRef {
    /// Hardware thread.
    pub thread: ThreadId,
    /// Per-thread dispatch tag.
    pub tag: u64,
}

/// Branch-specific in-flight state.
#[derive(Clone, Copy, Debug)]
pub struct BranchState {
    /// Predicted direction at fetch.
    pub pred_taken: bool,
    /// Predicted target (`None` = BTB miss; treated as fall-through).
    pub pred_target: Option<u64>,
    /// gshare history snapshot at prediction.
    pub hist: u16,
    /// Set at fetch when the front end already knows the prediction
    /// disagrees with the trace (direction or target).
    pub mispredicted: bool,
}

/// Memory-op-specific in-flight state.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemState {
    /// This load missed the L1 D-cache.
    pub l1_miss: bool,
    /// This load missed the L2 (set at issue once the hierarchy is
    /// consulted).
    pub l2_miss: bool,
    /// The L2 miss has been *detected* by the core (the
    /// `L2MissDetected` event fired) and not yet filled. Drives the
    /// per-thread pending-miss counter, so squash must decrement it
    /// when set.
    pub miss_visible: bool,
    /// Cycle the L2 miss becomes known to the core.
    pub miss_detected_at: Cycle,
    /// The load was satisfied by store-to-load forwarding.
    pub forwarded: bool,
}

/// One reorder-buffer entry: a dynamic instruction plus all its pipeline
/// state. The `executed` flag is the "result valid" bit the paper's DoD
/// counting mechanism scans.
#[derive(Clone, Debug)]
pub struct InstState {
    /// Per-thread tag (== position in dispatch order).
    pub tag: u64,
    /// Global dispatch sequence number (for oldest-first issue).
    pub seq: u64,
    /// The dynamic instruction.
    pub di: DynInst,
    /// Fetched down a mispredicted path; will be squashed.
    pub wrong_path: bool,
    /// Renamed destination.
    pub dst_phys: Option<PhysReg>,
    /// Previous mapping of the destination architectural register.
    pub old_phys: Option<PhysReg>,
    /// Renamed sources.
    pub src_phys: [Option<PhysReg>; 2],
    /// Issued to a functional unit.
    pub issued: bool,
    /// Result valid (execution complete).
    pub executed: bool,
    /// Cycle the instruction entered the ROB.
    pub dispatched_at: Cycle,
    /// Branch state, if a branch.
    pub branch: Option<BranchState>,
    /// Memory state, if a load/store.
    pub mem: Option<MemState>,
    /// Thread's global branch history when this instruction was
    /// dispatched; feeds the path-qualified DoD predictor (§4.2).
    pub dod_hist: u16,
}

impl InstState {
    /// True when the entry is an L2-missing load whose data has not yet
    /// returned (i.e. `executed` still false).
    pub fn pending_l2_miss(&self) -> bool {
        !self.executed && self.mem.is_some_and(|m| m.l2_miss)
    }
}

/// Shared issue-queue entry.
#[derive(Clone, Copy, Debug)]
pub struct IqEntry {
    /// The instruction.
    pub inst: InstRef,
    /// Global dispatch sequence (issue priority: lower = older).
    pub seq: u64,
}

/// Per-thread load/store queue entry.
#[derive(Clone, Copy, Debug)]
pub struct LsqEntry {
    /// Owning instruction tag.
    pub tag: u64,
    /// Store (true) or load (false).
    pub is_store: bool,
    /// Effective address (known from the trace; *architecturally*
    /// resolved only once address generation executes).
    pub addr: u64,
    /// Address generation has completed.
    pub resolved: bool,
}

/// Timed pipeline events processed from a priority queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Functional-unit / memory completion: mark executed, wake
    /// dependents, resolve branches.
    Complete,
    /// An L2 miss becomes visible to the core (DoD machinery trigger).
    L2MissDetected,
    /// An L2-missing load's fill arrives (histogram sampling point and
    /// predictor training point).
    L2Fill,
}

/// An entry in the event queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub at: Cycle,
    /// What happens.
    pub kind: EventKind,
    /// The instruction it concerns.
    pub inst: InstRef,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by time via reversed comparison at the BinaryHeap
        // call site; here: order by (at, seq-ish identity) for
        // determinism.
        (self.at, self.inst.thread, self.inst.tag, self.kind as u8).cmp(&(
            other.at,
            other.inst.thread,
            other.inst.tag,
            other.kind as u8,
        ))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_isa::OpClass;

    fn dummy_inst(tag: u64) -> InstState {
        InstState {
            tag,
            seq: tag,
            di: DynInst {
                pc: 0,
                seq: tag,
                op: OpClass::IntAlu,
                dst: None,
                srcs: [None, None],
                mem_addr: 0,
                taken: false,
                next_pc: 4,
            },
            wrong_path: false,
            dst_phys: None,
            old_phys: None,
            src_phys: [None, None],
            issued: false,
            executed: false,
            dispatched_at: 0,
            branch: None,
            mem: None,
            dod_hist: 0,
        }
    }

    #[test]
    fn pending_l2_miss_logic() {
        let mut i = dummy_inst(0);
        assert!(!i.pending_l2_miss());
        i.mem = Some(MemState {
            l2_miss: true,
            miss_detected_at: 10,
            ..Default::default()
        });
        assert!(i.pending_l2_miss());
        i.executed = true;
        assert!(!i.pending_l2_miss());
    }

    #[test]
    fn event_ordering_is_total_and_time_major() {
        let e1 = Event {
            at: 5,
            kind: EventKind::Complete,
            inst: InstRef { thread: 1, tag: 9 },
        };
        let e2 = Event {
            at: 6,
            kind: EventKind::Complete,
            inst: InstRef { thread: 0, tag: 1 },
        };
        assert!(e1 < e2);
        let e3 = Event {
            at: 5,
            kind: EventKind::Complete,
            inst: InstRef { thread: 0, tag: 2 },
        };
        assert!(e3 < e1, "same time orders by thread/tag");
    }

    #[test]
    fn inst_ref_ordering() {
        let a = InstRef { thread: 0, tag: 5 };
        let b = InstRef { thread: 0, tag: 6 };
        assert!(a < b);
    }
}
