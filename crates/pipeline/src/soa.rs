//! Structure-of-arrays storage for the per-thread ROB/LSQ and the
//! shared IQ.
//!
//! The cycle kernel spends most of its time probing these structures:
//! the DoD counter walks the first-level window behind every filling
//! load, issue wakes and selects from the IQ, and memory
//! disambiguation scans the LSQ. With the former `VecDeque<InstState>`
//! layout each probe touched a ~140-byte entry to read one bit. Here
//! the hot columns live in their own arrays (and the IQ goes further —
//! an event-driven wakeup arena, [`IqSoa`], replaces per-cycle
//! readiness polling entirely):
//!
//! * `tags` — a dense ring of per-thread tags (strictly increasing,
//!   non-contiguous), binary-searched for tag→index lookups;
//! * `issued`/`executed` (ROB) and `store`/`resolved` (LSQ) — bitsets
//!   indexed by *physical* ring slot, so the paper's DoD scan
//!   ("count the result-invalid entries in the 31-entry window behind
//!   the load") is a masked `count_ones` over at most two u64 words
//!   per wrapped segment instead of a pointer walk;
//! * everything else — the cold [`RobSlot`] payload, touched only when
//!   an instruction actually moves through a stage.
//!
//! The flag bits live *only* in the bitsets — [`RobSlot`] deliberately
//! has no `issued`/`executed` fields, so a stale duplicated flag is a
//! compile error, not a desync. [`InstState`] remains the exchange
//! format: `push_back` decomposes one, `pop_front`/`pop_back`
//! recompose it (reading the authoritative bits).

use crate::regfile::PhysReg;
use crate::types::{BranchState, InstState, LsqEntry, MemState};
use smtsim_isa::{DynInst, OpClass, ThreadId};
use smtsim_mem::Cycle;

#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words[i >> 6] >> (i & 63) & 1 != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize, v: bool) {
    let w = &mut words[i >> 6];
    let m = 1u64 << (i & 63);
    if v {
        *w |= m;
    } else {
        *w &= !m;
    }
}

/// Population count over the half-open *linear* (non-wrapping) bit
/// range `[from, to)`: masked `count_ones` on the first and last words,
/// whole words in between.
fn count_ones_range(words: &[u64], from: usize, to: usize) -> u32 {
    if from >= to {
        return 0;
    }
    let (fw, fb) = (from >> 6, from & 63);
    let (lw, lb) = ((to - 1) >> 6, (to - 1) & 63);
    let head_mask = u64::MAX << fb;
    let tail_mask = u64::MAX >> (63 - lb);
    if fw == lw {
        return (words[fw] & head_mask & tail_mask).count_ones();
    }
    let mut c = (words[fw] & head_mask).count_ones();
    for w in &words[fw + 1..lw] {
        c += w.count_ones();
    }
    c + (words[lw] & tail_mask).count_ones()
}

/// The cold per-entry ROB payload: [`InstState`] minus the `issued`/
/// `executed` flags (those live only in the [`RobSoa`] bitsets).
#[derive(Clone, Debug)]
pub(crate) struct RobSlot {
    pub tag: u64,
    pub seq: u64,
    pub di: DynInst,
    pub wrong_path: bool,
    pub dst_phys: Option<PhysReg>,
    pub old_phys: Option<PhysReg>,
    pub src_phys: [Option<PhysReg>; 2],
    pub dispatched_at: Cycle,
    pub branch: Option<BranchState>,
    pub mem: Option<MemState>,
    pub dod_hist: u16,
}

fn placeholder_slot() -> RobSlot {
    RobSlot {
        tag: 0,
        seq: 0,
        di: DynInst {
            pc: 0,
            seq: 0,
            op: OpClass::Nop,
            dst: None,
            srcs: [None, None],
            mem_addr: 0,
            taken: false,
            next_pc: 0,
        },
        wrong_path: false,
        dst_phys: None,
        old_phys: None,
        src_phys: [None, None],
        dispatched_at: 0,
        branch: None,
        mem: None,
        dod_hist: 0,
    }
}

/// Structure-of-arrays reorder buffer: a power-of-two ring with stable
/// physical slots. Logical index 0 is the oldest entry; tag order and
/// logical order coincide (tags are strictly increasing).
pub(crate) struct RobSoa {
    /// Per-slot tags (hot: binary-searched by every event lookup).
    tags: Box<[u64]>,
    /// "Result valid" bits — the column the DoD scan popcounts.
    executed: Box<[u64]>,
    /// "Sent to a functional unit" bits.
    issued: Box<[u64]>,
    /// Cold payload, touched only when an entry moves through a stage.
    slots: Box<[RobSlot]>,
    head: usize,
    len: usize,
    mask: usize,
}

impl RobSoa {
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(64);
        RobSoa {
            tags: vec![0; cap].into_boxed_slice(),
            executed: vec![0; cap / 64].into_boxed_slice(),
            issued: vec![0; cap / 64].into_boxed_slice(),
            slots: std::iter::repeat_with(placeholder_slot)
                .take(cap)
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            head: 0,
            len: 0,
            mask: cap - 1,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn cap(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn phys(&self, idx: usize) -> usize {
        debug_assert!(idx < self.len);
        (self.head + idx) & self.mask
    }

    /// Doubles the ring (cold: the paper machines top out at 416
    /// entries, under the default 512 slots).
    #[cold]
    fn grow(&mut self) {
        let mut next = RobSoa::with_capacity(self.cap() * 2);
        for i in 0..self.len {
            let p = (self.head + i) & self.mask;
            next.tags[i] = self.tags[p];
            next.slots[i] = self.slots[p].clone();
            bit_set(&mut next.executed, i, bit_get(&self.executed, p));
            bit_set(&mut next.issued, i, bit_get(&self.issued, p));
        }
        next.len = self.len;
        *self = next;
    }

    pub fn push_back(&mut self, e: InstState) {
        if self.len == self.cap() {
            self.grow();
        }
        let p = (self.head + self.len) & self.mask;
        self.tags[p] = e.tag;
        bit_set(&mut self.executed, p, e.executed);
        bit_set(&mut self.issued, p, e.issued);
        self.slots[p] = RobSlot {
            tag: e.tag,
            seq: e.seq,
            di: e.di,
            wrong_path: e.wrong_path,
            dst_phys: e.dst_phys,
            old_phys: e.old_phys,
            src_phys: e.src_phys,
            dispatched_at: e.dispatched_at,
            branch: e.branch,
            mem: e.mem,
            dod_hist: e.dod_hist,
        };
        self.len += 1;
    }

    /// Recomposes the full [`InstState`] at physical slot `p` (flags
    /// read from the bitsets).
    fn compose(&self, p: usize) -> InstState {
        let s = &self.slots[p];
        InstState {
            tag: s.tag,
            seq: s.seq,
            di: s.di,
            wrong_path: s.wrong_path,
            dst_phys: s.dst_phys,
            old_phys: s.old_phys,
            src_phys: s.src_phys,
            issued: bit_get(&self.issued, p),
            executed: bit_get(&self.executed, p),
            dispatched_at: s.dispatched_at,
            branch: s.branch,
            mem: s.mem,
            dod_hist: s.dod_hist,
        }
    }

    /// Pops and recomposes the oldest entry. The production commit
    /// path reads in place and uses [`RobSoa::drop_front`] instead;
    /// this full-fat form remains for the unit tests' round-trip
    /// checks.
    #[cfg(test)]
    pub fn pop_front(&mut self) -> Option<InstState> {
        if self.len == 0 {
            return None;
        }
        let p = self.head;
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(self.compose(p))
    }

    /// Discards the oldest entry without recomposing it — the commit
    /// fast path: the caller reads the handful of fields it needs via
    /// [`RobSoa::slot`]`(0)` first, then drops the entry in place.
    /// No-op on an empty ring.
    #[inline]
    pub fn drop_front(&mut self) {
        if self.len > 0 {
            self.head = (self.head + 1) & self.mask;
            self.len -= 1;
        }
    }

    pub fn pop_back(&mut self) -> Option<InstState> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.compose((self.head + self.len) & self.mask))
    }

    #[inline]
    pub fn front_tag(&self) -> Option<u64> {
        (self.len > 0).then(|| self.tags[self.head])
    }

    #[inline]
    pub fn back_tag(&self) -> Option<u64> {
        (self.len > 0).then(|| self.tags[(self.head + self.len - 1) & self.mask])
    }

    /// Is the oldest entry's result valid? (`false` when empty.)
    #[inline]
    pub fn front_executed(&self) -> bool {
        self.len > 0 && bit_get(&self.executed, self.head)
    }

    #[inline]
    pub fn tag_at(&self, idx: usize) -> u64 {
        self.tags[self.phys(idx)]
    }

    /// Logical index of `tag`, if in flight. Tags are strictly
    /// increasing but non-contiguous (squashes leave gaps), so this is
    /// a binary search over the ring.
    pub fn index_of(&self, tag: u64) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.tags[(self.head + mid) & self.mask] < tag {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < self.len && self.tags[(self.head + lo) & self.mask] == tag).then_some(lo)
    }

    #[inline]
    pub fn slot(&self, idx: usize) -> &RobSlot {
        &self.slots[self.phys(idx)]
    }

    #[inline]
    pub fn slot_mut(&mut self, idx: usize) -> &mut RobSlot {
        let p = self.phys(idx);
        &mut self.slots[p]
    }

    #[inline]
    pub fn executed(&self, idx: usize) -> bool {
        bit_get(&self.executed, self.phys(idx))
    }

    #[inline]
    pub fn issued(&self, idx: usize) -> bool {
        bit_get(&self.issued, self.phys(idx))
    }

    /// Physical slot of the youngest entry (caller ensures non-empty) —
    /// recorded by dispatch so later per-cycle probes are O(1) instead
    /// of a binary search.
    #[inline]
    pub fn back_phys(&self) -> usize {
        debug_assert!(self.len > 0);
        (self.head + self.len - 1) & self.mask
    }

    /// Logical index of the live entry at physical slot `p`, if `p`
    /// currently holds `tag`: tags are never reused, so a tag match
    /// *inside the live window* is conclusive. (A popped entry's slot
    /// may still hold the matching tag bytes until reuse, hence the
    /// window test; `None` also covers slots relocated by a ring
    /// `grow`, where the caller falls back to [`RobSoa::index_of`].)
    #[inline]
    pub fn live_at(&self, p: usize, tag: u64) -> Option<usize> {
        let idx = p.wrapping_sub(self.head) & self.mask;
        (idx < self.len && self.tags[p] == tag).then_some(idx)
    }

    #[inline]
    pub fn set_executed(&mut self, idx: usize, v: bool) {
        let p = self.phys(idx);
        bit_set(&mut self.executed, p, v);
    }

    #[inline]
    pub fn set_issued(&mut self, idx: usize, v: bool) {
        let p = self.phys(idx);
        bit_set(&mut self.issued, p, v);
    }

    /// Number of *unexecuted* (result-invalid) entries among the
    /// `window` logical entries starting at `start` — the paper's DoD
    /// count as a masked popcount: the window maps to at most two
    /// linear bit ranges of the `executed` column (one when it does not
    /// wrap the ring).
    pub fn count_unexecuted(&self, start: usize, window: usize) -> u32 {
        let n = window.min(self.len.saturating_sub(start));
        if n == 0 {
            return 0;
        }
        let from = (self.head + start) & self.mask;
        let end = from + n;
        let ones = if end <= self.cap() {
            count_ones_range(&self.executed, from, end)
        } else {
            count_ones_range(&self.executed, from, self.cap())
                + count_ones_range(&self.executed, 0, end - self.cap())
        };
        n as u32 - ones
    }
}

/// Structure-of-arrays load/store queue: tags and addresses in dense
/// rings, `store`/`resolved` flags in bitsets, so "any older
/// unresolved store?" is a masked word test instead of an entry walk.
pub(crate) struct LsqSoa {
    tags: Box<[u64]>,
    addrs: Box<[u64]>,
    store: Box<[u64]>,
    resolved: Box<[u64]>,
    head: usize,
    len: usize,
    mask: usize,
}

impl LsqSoa {
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(64);
        LsqSoa {
            tags: vec![0; cap].into_boxed_slice(),
            addrs: vec![0; cap].into_boxed_slice(),
            store: vec![0; cap / 64].into_boxed_slice(),
            resolved: vec![0; cap / 64].into_boxed_slice(),
            head: 0,
            len: 0,
            mask: cap - 1,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn cap(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn phys(&self, idx: usize) -> usize {
        debug_assert!(idx < self.len);
        (self.head + idx) & self.mask
    }

    #[cold]
    fn grow(&mut self) {
        let mut next = LsqSoa::with_capacity(self.cap() * 2);
        for i in 0..self.len {
            let p = (self.head + i) & self.mask;
            next.tags[i] = self.tags[p];
            next.addrs[i] = self.addrs[p];
            bit_set(&mut next.store, i, bit_get(&self.store, p));
            bit_set(&mut next.resolved, i, bit_get(&self.resolved, p));
        }
        next.len = self.len;
        *self = next;
    }

    pub fn push_back(&mut self, e: LsqEntry) {
        if self.len == self.cap() {
            self.grow();
        }
        let p = (self.head + self.len) & self.mask;
        self.tags[p] = e.tag;
        self.addrs[p] = e.addr;
        bit_set(&mut self.store, p, e.is_store);
        bit_set(&mut self.resolved, p, e.resolved);
        self.len += 1;
    }

    fn compose(&self, p: usize) -> LsqEntry {
        LsqEntry {
            tag: self.tags[p],
            is_store: bit_get(&self.store, p),
            addr: self.addrs[p],
            resolved: bit_get(&self.resolved, p),
        }
    }

    pub fn pop_front(&mut self) -> Option<LsqEntry> {
        if self.len == 0 {
            return None;
        }
        let p = self.head;
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(self.compose(p))
    }

    /// Drops the youngest entry (squash path).
    pub fn pop_back(&mut self) -> Option<LsqEntry> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.compose((self.head + self.len) & self.mask))
    }

    #[inline]
    pub fn back_tag(&self) -> Option<u64> {
        (self.len > 0).then(|| self.tags[(self.head + self.len - 1) & self.mask])
    }

    #[inline]
    pub fn tag_at(&self, idx: usize) -> u64 {
        self.tags[self.phys(idx)]
    }

    /// Logical index of the first entry with tag >= `tag` (== `len`
    /// when all entries are older). Tags are strictly increasing.
    pub fn lower_bound(&self, tag: u64) -> usize {
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.tags[(self.head + mid) & self.mask] < tag {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Logical index of `tag`, if present.
    pub fn index_of(&self, tag: u64) -> Option<usize> {
        let lo = self.lower_bound(tag);
        (lo < self.len && self.tags[(self.head + lo) & self.mask] == tag).then_some(lo)
    }

    #[inline]
    pub fn set_resolved(&mut self, idx: usize) {
        let p = self.phys(idx);
        bit_set(&mut self.resolved, p, true);
    }

    /// Is any entry in logical range `[0, bound)` an unresolved store?
    /// (Conservative memory disambiguation: a load may not issue while
    /// any older store's address is unknown.) Masked test over the
    /// `store & !resolved` words.
    pub fn unresolved_store_before(&self, bound: usize) -> bool {
        let n = bound.min(self.len);
        if n == 0 {
            return false;
        }
        let from = self.head;
        let end = from + n;
        let hit = |lo: usize, hi: usize| -> bool {
            // Word-wise masked scan of store & !resolved over [lo, hi).
            if lo >= hi {
                return false;
            }
            let (fw, fb) = (lo >> 6, lo & 63);
            let (lw, lb) = ((hi - 1) >> 6, (hi - 1) & 63);
            let head_mask = u64::MAX << fb;
            let tail_mask = u64::MAX >> (63 - lb);
            if fw == lw {
                return (self.store[fw] & !self.resolved[fw] & head_mask & tail_mask) != 0;
            }
            if (self.store[fw] & !self.resolved[fw] & head_mask) != 0 {
                return true;
            }
            for w in fw + 1..lw {
                if self.store[w] & !self.resolved[w] != 0 {
                    return true;
                }
            }
            (self.store[lw] & !self.resolved[lw] & tail_mask) != 0
        };
        if end <= self.cap() {
            hit(from, end)
        } else {
            hit(from, self.cap()) || hit(0, end - self.cap())
        }
    }

    /// Is the youngest store in logical range `[0, bound)` to the given
    /// 8-byte chunk present? (Store-to-load forwarding probe.) Walks
    /// the store bits youngest-first, skipping non-stores by bit test.
    pub fn forwarding_store_before(&self, bound: usize, chunk: u64) -> bool {
        let n = bound.min(self.len);
        for i in (0..n).rev() {
            let p = (self.head + i) & self.mask;
            if bit_get(&self.store, p) && (self.addrs[p] >> 3) == chunk {
                return true;
            }
        }
        false
    }
}

/// Event-driven shared issue queue: a stable-slot arena plus a wakeup
/// network, so a *blocked* entry costs nothing per cycle — the work is
/// proportional to the number of wakeups, not the queue depth.
///
/// Entries occupy fixed physical slots (capacity = the configured IQ
/// size; dispatch gates on [`IqSoa::len`], so allocation never fails).
/// An entry tracks only how many wait conditions remain:
///
/// * `waitn` — outstanding not-ready source registers (0–2), counted
///   once at dispatch (a store counts only its address operand).
///   Producers wake consumers through [`IqSoa::wake_reg`] at
///   writeback, draining the register's waiter list. Register
///   readiness is monotonic while a consumer sits in the IQ — a
///   source can only be reallocated (and marked un-ready) after its
///   last in-flight consumer leaves the machine — so a countdown,
///   with no re-check, is exact.
/// * `lsq_wait` — the load still has an older store with an
///   unresolved address (conservative disambiguation). The set of
///   older stores is fixed at dispatch and only shrinks as stores
///   resolve, so the masked `store & !resolved` test re-runs only
///   from [`IqSoa::wake_lsq`], on each store resolution in the load's
///   thread.
///
/// When both reach zero the entry enters the `ready` pool, which the
/// issue stage drains. All deferred references — waiter-list entries,
/// pool entries — are `(slot, seq)` pairs validated against the arena
/// before use: seqs are globally unique, so a squashed entry or a
/// reused slot never aliases, and squash can simply free slots and
/// let the stale references fall out at the next validation.
pub(crate) struct IqSoa {
    threads: Box<[u32]>,
    tags: Box<[u64]>,
    seqs: Box<[u64]>,
    /// Physical ROB slot, recorded at dispatch and validated with
    /// [`RobSoa::live_at`] before use (a ring `grow` relocates slots).
    robp: Box<[u32]>,
    /// Outstanding not-ready source registers (0–2).
    waitn: Box<[u8]>,
    /// Still blocked on older-store resolution (loads only).
    lsq_wait: Box<[bool]>,
    /// Occupancy bitmap over the arena slots.
    occupied: Box<[u64]>,
    /// Free-slot stack.
    free: Vec<u32>,
    len: usize,
    /// `reg_waiters[class][phys idx]` — consumers awaiting that
    /// register's value, as `(slot, seq)`.
    reg_waiters: [Vec<Vec<(u32, u64)>>; 2],
    /// Per-thread loads awaiting older-store resolution.
    lsq_waiters: Vec<Vec<(u32, u64)>>,
    /// Entries with no outstanding waits, pending issue.
    ready: Vec<(u32, u64)>,
}

/// Does `(slot, seq)` still name a live arena entry? (Free function so
/// destructured borrows can call it.)
#[inline]
fn iq_live(occupied: &[u64], seqs: &[u64], slot: u32, seq: u64) -> bool {
    bit_get(occupied, slot as usize) && seqs[slot as usize] == seq
}

impl IqSoa {
    /// Builds an arena of exactly `cap` slots. `reg_totals` sizes the
    /// per-register waiter table (one list per physical register, by
    /// class); `num_threads` sizes the per-thread disambiguation
    /// waiter lists.
    pub fn new(cap: usize, reg_totals: [usize; 2], num_threads: usize) -> Self {
        let column = |n: usize| -> Vec<Vec<(u32, u64)>> { vec![Vec::new(); n] };
        IqSoa {
            threads: vec![0; cap].into_boxed_slice(),
            tags: vec![0; cap].into_boxed_slice(),
            seqs: vec![0; cap].into_boxed_slice(),
            robp: vec![0; cap].into_boxed_slice(),
            waitn: vec![0; cap].into_boxed_slice(),
            lsq_wait: vec![false; cap].into_boxed_slice(),
            occupied: vec![0; cap.div_ceil(64)].into_boxed_slice(),
            free: (0..cap as u32).rev().collect(),
            len: 0,
            reg_waiters: [column(reg_totals[0]), column(reg_totals[1])],
            lsq_waiters: column(num_threads),
            ready: Vec::with_capacity(cap),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Inserts a dispatched instruction. `srcs` are the registers the
    /// entry waits on (the caller already reduced a store to its
    /// address operand); `lsq_blocked` is the dispatch-time
    /// disambiguation verdict for loads. `reg_ready` probes current
    /// register readiness — sources already ready are never tracked.
    ///
    /// # Panics
    /// Panics if the arena is full; the dispatch gate checks
    /// [`IqSoa::len`] against the IQ size before every push.
    // One argument per identity/wait column — bundling them into a
    // struct would just move the field list one call frame up.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        thread: ThreadId,
        tag: u64,
        seq: u64,
        robp: usize,
        srcs: [Option<PhysReg>; 2],
        lsq_blocked: bool,
        mut reg_ready: impl FnMut(PhysReg) -> bool,
    ) {
        #[allow(clippy::expect_used)]
        let slot = self
            .free
            .pop()
            .expect("IQ arena full: dispatch gate bypassed"); // xtask: allow-unwrap
        let s = slot as usize;
        self.threads[s] = thread as u32;
        self.tags[s] = tag;
        self.seqs[s] = seq;
        self.robp[s] = robp as u32;
        bit_set(&mut self.occupied, s, true);
        self.len += 1;
        let mut waitn = 0u8;
        for src in srcs.into_iter().flatten() {
            if !reg_ready(src) {
                // The same register twice registers twice — the wake
                // drains both and decrements `waitn` down to zero.
                self.reg_waiters[src.class.index()][src.idx as usize].push((slot, seq));
                waitn += 1;
            }
        }
        self.waitn[s] = waitn;
        self.lsq_wait[s] = lsq_blocked;
        if lsq_blocked {
            self.lsq_waiters[thread].push((slot, seq));
        }
        if waitn == 0 && !lsq_blocked {
            self.ready.push((slot, seq));
        }
    }

    /// Producer writeback: `r`'s value became available. Drains the
    /// register's waiter list, counting down each still-live consumer
    /// and pooling those with no waits left.
    pub fn wake_reg(&mut self, r: PhysReg) {
        let IqSoa {
            reg_waiters,
            waitn,
            lsq_wait,
            seqs,
            occupied,
            ready,
            ..
        } = self;
        let list = &mut reg_waiters[r.class.index()][r.idx as usize];
        for (slot, seq) in list.drain(..) {
            if !iq_live(occupied, seqs, slot, seq) {
                continue; // squashed or issued since registering
            }
            let s = slot as usize;
            waitn[s] -= 1;
            if waitn[s] == 0 && !lsq_wait[s] {
                ready.push((slot, seq));
            }
        }
    }

    /// A store in `thread` resolved its address: re-run the
    /// disambiguation test for that thread's blocked loads against the
    /// post-resolution `lsq`, releasing the ones now in the clear.
    pub fn wake_lsq(&mut self, thread: ThreadId, lsq: &LsqSoa) {
        let IqSoa {
            lsq_waiters,
            lsq_wait,
            waitn,
            seqs,
            tags,
            occupied,
            ready,
            ..
        } = self;
        lsq_waiters[thread].retain(|&(slot, seq)| {
            if !iq_live(occupied, seqs, slot, seq) {
                return false;
            }
            let s = slot as usize;
            if lsq.unresolved_store_before(lsq.lower_bound(tags[s])) {
                return true; // a different older store is still pending
            }
            lsq_wait[s] = false;
            if waitn[s] == 0 {
                ready.push((slot, seq));
            }
            false
        });
    }

    /// Moves the validated contents of the ready pool into `cands` as
    /// `(seq, slot)` (callers sort by seq — global age order). Entries
    /// whose slot was squashed or reused since pooling are dropped.
    pub fn drain_ready_into(&mut self, cands: &mut Vec<(u64, u32)>) {
        let IqSoa {
            ready,
            occupied,
            seqs,
            ..
        } = self;
        for (slot, seq) in ready.drain(..) {
            if iq_live(occupied, seqs, slot, seq) {
                cands.push((seq, slot));
            }
        }
    }

    /// Returns a still-ready entry to the pool (issue width exhausted
    /// or a structural FU hazard this cycle).
    #[inline]
    pub fn requeue_ready(&mut self, slot: u32, seq: u64) {
        self.ready.push((slot, seq));
    }

    /// Releases an issued entry's slot.
    pub fn free_slot(&mut self, slot: u32) {
        let s = slot as usize;
        debug_assert!(bit_get(&self.occupied, s));
        bit_set(&mut self.occupied, s, false);
        self.len -= 1;
        self.free.push(slot);
    }

    /// Drops every entry of `thread` with tag >= `from_tag`, invoking
    /// `on_remove` per removal (usage-counter bookkeeping at the call
    /// site). Stale waiter-list and pool references fall out at their
    /// next validation.
    pub fn squash(&mut self, thread: ThreadId, from_tag: u64, mut on_remove: impl FnMut()) {
        for w in 0..self.occupied.len() {
            let mut bits = self.occupied[w];
            while bits != 0 {
                let s = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.threads[s] as ThreadId == thread && self.tags[s] >= from_tag {
                    bit_set(&mut self.occupied, s, false);
                    self.len -= 1;
                    self.free.push(s as u32);
                    on_remove();
                }
            }
        }
    }

    #[inline]
    pub fn thread(&self, slot: u32) -> ThreadId {
        self.threads[slot as usize] as ThreadId
    }

    #[inline]
    pub fn tag(&self, slot: u32) -> u64 {
        self.tags[slot as usize]
    }

    #[inline]
    pub fn robp(&self, slot: u32) -> usize {
        self.robp[slot as usize] as usize
    }

    /// Iterates the live entries as `(thread, tag)`, in slot order
    /// (invariant checks; the hot paths never walk the arena).
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, u64)> + '_ {
        self.occupied
            .iter()
            .enumerate()
            .flat_map(move |(w, &word)| {
                let mut bits = word;
                std::iter::from_fn(move || {
                    (bits != 0).then(|| {
                        let s = (w << 6) | bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        (self.threads[s] as ThreadId, self.tags[s])
                    })
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(tag: u64, executed: bool, issued: bool) -> InstState {
        InstState {
            tag,
            seq: tag,
            di: DynInst {
                pc: 0x1000 + tag * 4,
                seq: tag,
                op: OpClass::IntAlu,
                dst: None,
                srcs: [None, None],
                mem_addr: 0,
                taken: false,
                next_pc: 0,
            },
            wrong_path: false,
            dst_phys: None,
            old_phys: None,
            src_phys: [None, None],
            issued,
            executed,
            dispatched_at: 7,
            branch: None,
            mem: None,
            dod_hist: 3,
        }
    }

    #[test]
    fn rob_roundtrips_inststate_through_bitsets() {
        let mut rob = RobSoa::with_capacity(4);
        rob.push_back(inst(10, true, true));
        rob.push_back(inst(12, false, true));
        assert_eq!(rob.len(), 2);
        assert!(rob.front_executed());
        let a = rob.pop_front().unwrap();
        assert!(a.executed && a.issued);
        assert_eq!(a.tag, 10);
        assert_eq!(a.dispatched_at, 7);
        let b = rob.pop_back().unwrap();
        assert!(!b.executed && b.issued);
        assert_eq!(b.tag, 12);
        assert!(rob.is_empty());
        assert!(!rob.front_executed());
    }

    #[test]
    fn rob_index_of_handles_gaps_and_wraparound() {
        let mut rob = RobSoa::with_capacity(64);
        // Force the head off zero so the ring wraps.
        for t in 0..60 {
            rob.push_back(inst(t, true, true));
        }
        for _ in 0..60 {
            rob.pop_front();
        }
        // Sparse tags (squash gaps).
        for t in [100u64, 103, 104, 110, 200] {
            rob.push_back(inst(t, false, false));
        }
        assert_eq!(rob.index_of(100), Some(0));
        assert_eq!(rob.index_of(104), Some(2));
        assert_eq!(rob.index_of(200), Some(4));
        assert_eq!(rob.index_of(105), None);
        assert_eq!(rob.index_of(99), None);
        assert_eq!(rob.index_of(201), None);
        assert_eq!(rob.front_tag(), Some(100));
        assert_eq!(rob.back_tag(), Some(200));
    }

    #[test]
    fn rob_count_unexecuted_matches_naive_walk_across_wrap() {
        let mut rob = RobSoa::with_capacity(64);
        // Park the head near the end of the ring so windows wrap.
        for t in 0..50 {
            rob.push_back(inst(t, true, true));
        }
        for _ in 0..50 {
            rob.pop_front();
        }
        let mut flags = Vec::new();
        for t in 0..40u64 {
            let ex = (t * 7 + 3) % 3 == 0;
            flags.push(ex);
            rob.push_back(inst(100 + t, ex, ex));
        }
        for start in 0..40 {
            for window in [0usize, 1, 5, 31, 64, usize::MAX] {
                let naive = flags[start.min(flags.len())..]
                    .iter()
                    .take(window)
                    .filter(|&&e| !e)
                    .count() as u32;
                assert_eq!(
                    rob.count_unexecuted(start, window),
                    naive,
                    "start={start} window={window}"
                );
            }
        }
    }

    #[test]
    fn rob_set_flags_are_visible_to_count_and_compose() {
        let mut rob = RobSoa::with_capacity(8);
        for t in 0..5 {
            rob.push_back(inst(t, false, false));
        }
        assert_eq!(rob.count_unexecuted(0, usize::MAX), 5);
        rob.set_executed(2, true);
        rob.set_issued(2, true);
        assert_eq!(rob.count_unexecuted(0, usize::MAX), 4);
        assert!(rob.executed(2) && rob.issued(2));
        assert!(!rob.executed(1));
        // pop_front twice: index 2 becomes index 0.
        rob.pop_front();
        rob.pop_front();
        let e = rob.pop_front().unwrap();
        assert!(e.executed && e.issued);
    }

    #[test]
    fn rob_grows_preserving_order_and_flags() {
        let mut rob = RobSoa::with_capacity(64);
        // Wrap, then overflow the initial 64 slots.
        for t in 0..40 {
            rob.push_back(inst(t, false, false));
        }
        for _ in 0..40 {
            rob.pop_front();
        }
        for t in 0..200u64 {
            rob.push_back(inst(1000 + t, t % 2 == 0, t % 2 == 0));
        }
        assert_eq!(rob.len(), 200);
        for i in 0..200usize {
            assert_eq!(rob.tag_at(i), 1000 + i as u64);
            assert_eq!(rob.executed(i), i % 2 == 0);
        }
        assert_eq!(rob.count_unexecuted(0, usize::MAX), 100);
    }

    #[test]
    fn lsq_disambiguation_and_forwarding_probes() {
        let mut lsq = LsqSoa::with_capacity(8);
        lsq.push_back(LsqEntry {
            tag: 1,
            is_store: true,
            addr: 0x100,
            resolved: false,
        });
        lsq.push_back(LsqEntry {
            tag: 3,
            is_store: false,
            addr: 0x200,
            resolved: false,
        });
        lsq.push_back(LsqEntry {
            tag: 5,
            is_store: true,
            addr: 0x108,
            resolved: false,
        });
        // Load tag 3: store tag 1 unresolved.
        assert!(lsq.unresolved_store_before(lsq.lower_bound(3)));
        lsq.set_resolved(lsq.index_of(1).unwrap());
        assert!(!lsq.unresolved_store_before(lsq.lower_bound(3)));
        // Store tag 5 still unresolved for a hypothetical load tag 7.
        assert!(lsq.unresolved_store_before(lsq.lower_bound(7)));
        // Forwarding: older store to the same chunk.
        assert!(lsq.forwarding_store_before(lsq.lower_bound(3), 0x100 >> 3));
        assert!(!lsq.forwarding_store_before(lsq.lower_bound(3), 0x108 >> 3));
        // Tag 7 would see the chunk of store tag 5.
        assert!(lsq.forwarding_store_before(lsq.lower_bound(7), 0x108 >> 3));
    }

    #[test]
    fn lsq_ring_pops_and_wraps() {
        let mut lsq = LsqSoa::with_capacity(4);
        for round in 0..10u64 {
            for k in 0..3 {
                lsq.push_back(LsqEntry {
                    tag: round * 10 + k,
                    is_store: k == 1,
                    addr: k * 8,
                    resolved: false,
                });
            }
            assert_eq!(lsq.back_tag(), Some(round * 10 + 2));
            let front = lsq.pop_front().unwrap();
            assert_eq!(front.tag, round * 10);
            assert!(!front.is_store);
            let back = lsq.pop_back().unwrap();
            assert_eq!(back.tag, round * 10 + 2);
            let mid = lsq.pop_back().unwrap();
            assert!(mid.is_store);
            assert_eq!(lsq.len(), 0);
        }
    }

    #[test]
    fn iq_register_wakeups_count_down_to_ready() {
        use smtsim_isa::RegClass;
        let r = |idx: u16| PhysReg {
            class: RegClass::Int,
            idx,
        };
        let mut iq = IqSoa::new(4, [8, 8], 2);
        // Entry A: ready at dispatch. Entry B: waits on r3 twice (both
        // operands). Entry C: waits on r3 and r5.
        iq.push(0, 10, 100, 0, [None, None], false, |_| true);
        iq.push(1, 20, 101, 1, [Some(r(3)), Some(r(3))], false, |_| false);
        iq.push(0, 11, 102, 2, [Some(r(3)), Some(r(5))], false, |_| false);
        assert_eq!(iq.len(), 3);

        let mut cands = Vec::new();
        iq.drain_ready_into(&mut cands);
        assert_eq!(cands, vec![(100, 0)], "only A is ready at dispatch");

        // r3 resolves: B's double registration counts down 2 -> 0; C
        // still waits on r5.
        iq.wake_reg(r(3));
        cands.clear();
        iq.drain_ready_into(&mut cands);
        assert_eq!(cands, vec![(101, 1)]);
        iq.wake_reg(r(5));
        cands.clear();
        iq.drain_ready_into(&mut cands);
        assert_eq!(cands, vec![(102, 2)]);
        // Accessors address entries by arena slot.
        assert_eq!((iq.thread(2), iq.tag(2), iq.robp(2)), (0, 11, 2));
    }

    #[test]
    fn iq_lsq_wake_rechecks_disambiguation() {
        let mut lsq = LsqSoa::with_capacity(8);
        for (tag, is_store) in [(1u64, true), (3, true), (5, false)] {
            lsq.push_back(LsqEntry {
                tag,
                is_store,
                addr: 0x100 + tag * 8,
                resolved: false,
            });
        }
        let mut iq = IqSoa::new(4, [8, 8], 1);
        // The load (tag 5) is register-ready but blocked behind the
        // two unresolved stores.
        iq.push(0, 5, 100, 0, [None, None], true, |_| true);
        let mut cands = Vec::new();
        iq.drain_ready_into(&mut cands);
        assert!(cands.is_empty());
        // First store resolves: still blocked on the second.
        lsq.set_resolved(lsq.index_of(1).unwrap());
        iq.wake_lsq(0, &lsq);
        iq.drain_ready_into(&mut cands);
        assert!(cands.is_empty());
        // Second store resolves: the load is released.
        lsq.set_resolved(lsq.index_of(3).unwrap());
        iq.wake_lsq(0, &lsq);
        iq.drain_ready_into(&mut cands);
        assert_eq!(cands, vec![(100, 0)]);
    }

    #[test]
    fn iq_squash_invalidates_stale_references() {
        use smtsim_isa::RegClass;
        let r9 = PhysReg {
            class: RegClass::Int,
            idx: 9,
        };
        let mut iq = IqSoa::new(4, [16, 16], 2);
        iq.push(0, 10, 100, 0, [Some(r9), None], false, |_| false);
        iq.push(0, 11, 101, 1, [None, None], false, |_| true);
        iq.push(1, 11, 102, 2, [None, None], false, |_| true);
        let mut removed = 0;
        iq.squash(0, 11, || removed += 1);
        assert_eq!((removed, iq.len()), (1, 2));
        // Thread 1's tag-11 entry survives a thread-0 squash; thread
        // 0's tag-10 entry predates the squash point.
        let mut live: Vec<_> = iq.iter().collect();
        live.sort_unstable();
        assert_eq!(live, vec![(0, 10), (1, 11)]);
        // A new entry reuses the freed slot; the squashed entry's
        // stale waiter registration must not wake it (seq mismatch).
        iq.push(1, 30, 103, 3, [Some(r9), None], false, |_| false);
        iq.wake_reg(r9);
        let mut cands = Vec::new();
        iq.drain_ready_into(&mut cands);
        // The squashed entry contributes nothing: its slot-1 pool entry
        // fails the seq check. Everything live surfaces — the tag-10
        // waiter and the reused slot's new entry woken by r9, plus
        // thread 1's entry pooled at push.
        cands.sort_unstable();
        assert_eq!(cands, vec![(100, 0), (102, 2), (103, 1)]);
        // After the issued entries' slots are freed, pool leftovers
        // from before the free are dropped by validation.
        iq.requeue_ready(0, 100);
        iq.free_slot(0);
        cands.clear();
        iq.drain_ready_into(&mut cands);
        assert!(cands.is_empty());
        assert_eq!(iq.len(), 2);
    }
}
