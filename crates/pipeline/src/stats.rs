//! Simulation statistics: per-thread progress counters, shared-resource
//! occupancy, and the Degree-of-Dependence histograms behind the
//! paper's Figures 1, 3 and 7.

use smtsim_mem::Cycle;

/// Histogram of dependent counts sampled at L2-miss service time
/// (x-axis of the paper's Figures 1/3/7). Bin `i` counts fills that
/// observed exactly `i` not-yet-executed instructions behind the load;
/// the last bin accumulates saturated counts.
#[derive(Clone, Debug)]
pub struct DodHistogram {
    bins: Vec<u64>,
    /// Total samples.
    pub samples: u64,
    /// Sum of sampled counts (for means).
    pub sum: u64,
}

impl DodHistogram {
    /// Creates a histogram with bins `0..=max` (counts above `max`
    /// saturate into the last bin).
    pub fn new(max: u32) -> Self {
        DodHistogram {
            bins: vec![0; max as usize + 1],
            samples: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, count: u32) {
        let idx = (count as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.samples += 1;
        self.sum += count as u64;
    }

    /// Bin contents (`bins()[i]` = samples with count `i`).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Reassembles a histogram from previously observed parts (the
    /// sweep journal's deserialization path). `samples` and `sum` are
    /// carried verbatim rather than recomputed: saturated samples
    /// contribute their true count to `sum` but land in the last bin,
    /// so `sum` is not derivable from `bins`.
    pub fn from_parts(bins: Vec<u64>, samples: u64, sum: u64) -> Self {
        DodHistogram { bins, samples, sum }
    }

    /// Mean sampled count.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Merges another histogram into this one (same binning).
    pub fn merge(&mut self, other: &DodHistogram) {
        assert_eq!(self.bins.len(), other.bins.len());
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.samples += other.samples;
        self.sum += other.sum;
    }
}

impl Default for DodHistogram {
    fn default() -> Self {
        // 5-bit counter semantics of the paper's 32-entry first level.
        DodHistogram::new(31)
    }
}

/// Results of the static-DoD-oracle cross-check. Populated only when a
/// bounds table is installed (`SimulatorBuilder::dod_bounds`); all zero
/// otherwise.
///
/// Two quantities are compared per correct-path L2 fill whose load has
/// a static bound: the *exact* dependent count (register-taint walk
/// over the younger correct-path ROB entries in the first-level window)
/// and the hardware counter's approximation (unexecuted entries in the
/// same window, §4.1). The exact count must stay within the static
/// bound; the counter may exceed it (independent instructions stalled
/// behind overlapping misses are unexecuted too), and that gap is the
/// counter error reported here.
#[derive(Clone, Copy, Debug, Default)]
pub struct DodOracleStats {
    /// Fills cross-checked against a static bound.
    pub checked: u64,
    /// Fills whose exact dependent count exceeded the static bound —
    /// always recorded; escalated to a simulation error under the
    /// `dod-oracle` feature.
    pub violations: u64,
    /// Sum of exact dependent counts (mean = / `checked`).
    pub exact_sum: u64,
    /// Sum of `|counter - exact|` over checked fills.
    pub counter_err_sum: u64,
    /// Fills where the hardware counter exceeded the exact count.
    pub counter_overshoot: u64,
}

impl DodOracleStats {
    /// Mean exact dependent count per checked fill.
    pub fn mean_exact(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.exact_sum as f64 / self.checked as f64
        }
    }

    /// Mean absolute error of the hardware counter vs. the exact count.
    pub fn mean_counter_error(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.counter_err_sum as f64 / self.checked as f64
        }
    }
}

/// Per-thread statistics.
#[derive(Clone, Debug, Default)]
pub struct ThreadStats {
    /// Instructions committed.
    pub committed: u64,
    /// Instructions fetched (correct + wrong path).
    pub fetched: u64,
    /// Wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Instructions dispatched into the ROB.
    pub dispatched: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Instructions squashed.
    pub squashed: u64,
    /// Conditional branches resolved (correct path).
    pub branches: u64,
    /// Mispredicted branches resolved.
    pub mispredicts: u64,
    /// Loads issued (correct path).
    pub loads: u64,
    /// Loads that missed the L2.
    pub l2_misses: u64,
    /// Loads satisfied by store forwarding.
    pub forwarded_loads: u64,
    /// Sum of per-cycle ROB occupancy (average = / cycles).
    pub rob_occupancy_sum: u64,
    /// Cycles this thread's dispatch was blocked by ROB capacity.
    pub rob_stall_cycles: u64,
    /// Dispatch attempts blocked by an empty register free list.
    pub stall_regs: u64,
    /// Dispatch attempts blocked by a full shared IQ.
    pub stall_iq: u64,
    /// Dispatch attempts blocked by a DCRA cap (IQ or registers).
    pub stall_caps: u64,
    /// Dispatch attempts blocked by a full LSQ.
    pub stall_lsq: u64,
}

impl ThreadStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.committed as f64 / cycles as f64
        }
    }

    /// Branch misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// Whole-machine statistics.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Per-thread counters.
    pub threads: Vec<ThreadStats>,
    /// Sum of per-cycle shared-IQ occupancy.
    pub iq_occupancy_sum: u64,
    /// Cycles the shared IQ was completely full.
    pub iq_full_cycles: u64,
    /// DoD histogram sampled at L2-miss fill time (Figures 1/3/7).
    /// Second-level allocator statistics live in
    /// `smtsim_rob2::TwoLevelStats`, retrieved through
    /// `Simulator::allocator()`.
    pub dod_at_fill: DodHistogram,
    /// Static-oracle cross-check counters (see [`DodOracleStats`]).
    pub dod_oracle: DodOracleStats,
}

impl SimStats {
    /// Creates stats for `threads` hardware contexts.
    pub fn new(threads: usize) -> Self {
        SimStats {
            threads: vec![ThreadStats::default(); threads],
            dod_at_fill: DodHistogram::default(),
            ..Default::default()
        }
    }

    /// Total committed instructions.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Total throughput (committed instructions per cycle, all threads).
    pub fn throughput_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / self.cycles as f64
        }
    }

    /// Average shared-IQ occupancy per cycle.
    pub fn avg_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occupancy_sum as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_saturates() {
        let mut h = DodHistogram::new(31);
        h.record(0);
        h.record(5);
        h.record(31);
        h.record(64); // saturates into bin 31
        assert_eq!(h.samples, 4);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[31], 2);
        assert_eq!(h.sum, 5 + 31 + 64);
    }

    #[test]
    fn histogram_mean() {
        let mut h = DodHistogram::new(31);
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(DodHistogram::default().mean(), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = DodHistogram::new(31);
        let mut b = DodHistogram::new(31);
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.samples, 2);
        assert_eq!(a.bins()[1], 1);
        assert_eq!(a.bins()[3], 1);
    }

    #[test]
    fn ipc_math() {
        let t = ThreadStats {
            committed: 500,
            ..Default::default()
        };
        assert!((t.ipc(1000) - 0.5).abs() < 1e-12);
        assert_eq!(t.ipc(0), 0.0);
    }

    #[test]
    fn sim_stats_aggregation() {
        let mut s = SimStats::new(2);
        s.cycles = 100;
        s.threads[0].committed = 120;
        s.threads[1].committed = 80;
        assert_eq!(s.total_committed(), 200);
        assert!((s.throughput_ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_stats_means() {
        let z = DodOracleStats::default();
        assert_eq!(z.mean_exact(), 0.0);
        assert_eq!(z.mean_counter_error(), 0.0);
        let o = DodOracleStats {
            checked: 4,
            violations: 0,
            exact_sum: 8,
            counter_err_sum: 2,
            counter_overshoot: 1,
        };
        assert!((o.mean_exact() - 2.0).abs() < 1e-12);
        assert!((o.mean_counter_error() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mispredict_rate() {
        assert_eq!(ThreadStats::default().mispredict_rate(), 0.0);
        let t = ThreadStats {
            branches: 10,
            mispredicts: 1,
            ..Default::default()
        };
        assert!((t.mispredict_rate() - 0.1).abs() < 1e-12);
    }
}
