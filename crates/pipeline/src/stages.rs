//! Pipeline stage implementations: event handling (writeback, L2-miss
//! lifecycle), commit, issue, dispatch, fetch, and squash.

use crate::config::FetchPolicyKind;
use crate::core::{Fetched, RobView, Simulator};
use crate::fault::FillFault;
use crate::rob_policy::{MissEvent, RobQuery};
use crate::types::{BranchState, Event, EventKind, InstRef, InstState, LsqEntry, MemState};
use smtsim_isa::{OpClass, ThreadId, INST_BYTES};
use smtsim_obs::{DodSource, StallKind, TraceEvent, Tracer};
use std::cmp::Reverse;

/// Outcome of the dispatch gate for one thread this cycle, shared by
/// [`Simulator::try_dispatch_one`] and the cycle-skip engine (which
/// replays `Stall` outcomes in closed form over skipped cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DispatchClass {
    /// Nothing in the fetch queue.
    EmptyQ,
    /// Head of the fetch queue still in decode (`ready_at` in the
    /// future).
    NotReady,
    /// Blocked on a structural resource; counted as a stall.
    Stall(StallKind),
    /// Would dispatch.
    Pass,
}

impl<T: Tracer> Simulator<T> {
    // ------------------------------------------------------------------
    // Events (writeback, miss lifecycle)
    // ------------------------------------------------------------------

    pub(crate) fn process_events(&mut self) {
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.at > self.now {
                break;
            }
            self.events.pop();
            // Even a stale event (squashed target) counts as activity:
            // it changed the event queue the skip decision peeks at.
            self.cycle_activity = true;
            match ev.kind {
                EventKind::Complete => self.handle_complete(ev.inst),
                EventKind::L2MissDetected => self.handle_miss_detected(ev.inst),
                EventKind::L2Fill => self.handle_fill(ev.inst),
            }
        }
    }

    /// Writeback: the instruction's result becomes valid.
    fn handle_complete(&mut self, r: InstRef) {
        // Squashed instructions leave stale events behind; drop them.
        let Some(idx) = self.threads[r.thread].rob.index_of(r.tag) else {
            return;
        };
        let th = &mut self.threads[r.thread];
        debug_assert!(!th.rob.executed(idx), "double completion for {r:?}");
        th.rob.set_executed(idx, true);
        let s = th.rob.slot(idx);
        let di = s.di;
        let tag = s.tag;
        let wrong_path = s.wrong_path;
        let dst = s.dst_phys;
        let branch = s.branch;
        let l1_missed = s.mem.is_some_and(|m| m.l1_miss);

        if let Some(d) = dst {
            self.regs.set_ready(d, true);
            // Wake the consumers parked on this register.
            self.iq.wake_reg(d);
        }
        let th = &mut self.threads[r.thread];
        let mut store_resolved = false;
        if di.op.is_mem() {
            if let Some(li) = th.lsq.index_of(tag) {
                th.lsq.set_resolved(li);
                store_resolved = di.op == OpClass::Store;
            }
        }
        if l1_missed {
            debug_assert!(th.pending_l1d > 0);
            th.pending_l1d -= 1;
        }
        if store_resolved {
            // Only store resolutions can release a disambiguation-
            // blocked load; re-test this thread's waiting loads.
            self.iq.wake_lsq(r.thread, &self.threads[r.thread].lsq);
        }

        // Branch resolution.
        let Some(bs) = branch else { return };
        if wrong_path {
            // Wrong-path branches resolve into the void: the machine
            // cannot tell, but their redirects are never acted upon and
            // predictors are not trained (their "outcomes" are
            // fabrications).
            return;
        }
        if di.op == OpClass::BranchCond {
            self.stats.threads[r.thread].branches += 1;
            self.gshare.train(di.pc, bs.hist, di.taken);
        }
        if di.taken {
            self.btb.update(di.pc, di.next_pc);
        }
        if bs.mispredicted {
            self.stats.threads[r.thread].mispredicts += 1;
            self.squash_from(r.thread, tag + 1, di.next_pc, false);
            if di.op == OpClass::BranchCond {
                self.gshare.restore(r.thread, bs.hist, di.taken);
            }
            let th = &mut self.threads[r.thread];
            th.redirect_tag = None;
            th.fetch_stall_until = self.now + 1 + self.cfg.redirect_penalty;
        }
    }

    /// The core notices an L2 miss (L1 probe + L2 probe have completed).
    fn handle_miss_detected(&mut self, r: InstRef) {
        let Some(idx) = self.threads[r.thread].rob.index_of(r.tag) else {
            return;
        };
        if self.threads[r.thread].rob.executed(idx) {
            return; // forwarding or a squash/refetch race resolved it
        }
        let s = self.threads[r.thread].rob.slot_mut(idx);
        let Some(m) = s.mem.as_mut() else { return };
        m.miss_visible = true;
        let ev = MissEvent {
            thread: r.thread,
            tag: r.tag,
            pc: s.di.pc,
            hist: s.dod_hist,
            wrong_path: s.wrong_path,
        };
        let next_pc = s.di.next_pc;
        let wrong_path = s.wrong_path;
        self.threads[r.thread].pending_l2_visible += 1;
        if !wrong_path {
            self.stats.threads[r.thread].l2_misses += 1;
        }
        if T::ENABLED {
            self.tracer.record(
                self.now,
                TraceEvent::L2MissDetected {
                    thread: r.thread,
                    tag: r.tag,
                    pc: ev.pc,
                    wrong_path,
                },
            );
        }

        // FLUSH policy: squash everything behind the missing load and
        // gate fetch until the fill returns.
        if matches!(self.cfg.fetch_policy, FetchPolicyKind::Flush) && !wrong_path {
            self.squash_from(r.thread, r.tag + 1, next_pc, true);
            self.threads[r.thread].flush_gate = Some(r.tag);
        }

        let view = RobView {
            threads: &self.threads,
        };
        self.alloc.on_l2_miss(&view, ev, self.now);
    }

    /// The fill for an L2-missing load arrives: sample the DoD
    /// histogram (Figures 1/3/7) and notify the policy.
    fn handle_fill(&mut self, r: InstRef) {
        let Some(idx) = self.threads[r.thread].rob.index_of(r.tag) else {
            return;
        };
        let s = self.threads[r.thread].rob.slot_mut(idx);
        let Some(m) = s.mem.as_mut() else { return };
        let was_visible = std::mem::take(&mut m.miss_visible);
        let ev = MissEvent {
            thread: r.thread,
            tag: r.tag,
            pc: s.di.pc,
            hist: s.dod_hist,
            wrong_path: s.wrong_path,
        };
        if was_visible {
            let th = &mut self.threads[r.thread];
            debug_assert!(th.pending_l2_visible > 0);
            th.pending_l2_visible -= 1;
            if th.flush_gate == Some(r.tag) {
                th.flush_gate = None;
            }
        }
        // Two counts are taken at service time:
        // * the *policy* count — the paper's 5-bit hardware counter
        //   scanning the first-level window behind the load (what
        //   trains the DoD predictor);
        // * the *observation* count over the whole ROB (saturated to
        //   the same 5 bits) — the quantity Figures 1/3/7 plot, which
        //   grows as deeper windows capture more of the dependence
        //   shadow.
        let (counted_policy, counted_full) = {
            let view = RobView {
                threads: &self.threads,
            };
            (
                view.count_unexecuted_younger(r.thread, r.tag, self.cfg_dod_window())
                    .unwrap_or(0),
                view.count_unexecuted_younger(r.thread, r.tag, usize::MAX)
                    .unwrap_or(0)
                    .min(31),
            )
        };
        if T::ENABLED {
            self.tracer.record(
                self.now,
                TraceEvent::L2Fill {
                    thread: r.thread,
                    tag: r.tag,
                    wrong_path: ev.wrong_path,
                },
            );
        }
        if !ev.wrong_path {
            self.stats.dod_at_fill.record(counted_full);
            // Static-oracle cross-check, on the true counter value
            // (fault injection may corrupt the copy handed to the
            // policy below, but the oracle audits the machine, not the
            // fault plan).
            self.oracle_check(r, ev.pc, counted_policy);
            if T::ENABLED {
                // The same pre-fault counter value the oracle audits,
                // so episode DoD agrees with `SimStats::dod_oracle`.
                self.tracer.record(
                    self.now,
                    TraceEvent::DodSampled {
                        thread: r.thread,
                        tag: r.tag,
                        value: counted_policy,
                        source: DodSource::CounterAtFill,
                    },
                );
            }
        }
        // Fault injection: the DoD count handed to the policy may be
        // corrupted, or the notification suppressed altogether (a lost
        // release — policies must degrade, not hang).
        let (counted_policy, deliver) = self.fault.on_fill_notify(counted_policy);
        if deliver {
            let view = RobView {
                threads: &self.threads,
            };
            self.alloc.on_l2_fill(&view, ev, counted_policy, self.now);
        }
    }

    /// Entries scanned by the DoD counter (the 32-entry first level
    /// minus the load itself).
    #[cfg(not(feature = "seeded-dod-bug"))]
    fn cfg_dod_window(&self) -> usize {
        crate::rob_policy::DOD_WINDOW
    }

    /// Mutation self-test variant: deliberately scans one entry past the
    /// first-level window. The bug is timing-only (commit streams stay
    /// identical); the conformance harness must catch it via the
    /// `CounterAtFill` sample bound `value <= DOD_WINDOW`. Never enable
    /// this feature outside the `smtsim-conform` mutation test.
    #[cfg(feature = "seeded-dod-bug")]
    fn cfg_dod_window(&self) -> usize {
        crate::rob_policy::DOD_WINDOW + 1
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    pub(crate) fn commit_stage(&mut self) {
        let n = self.cfg.num_threads;
        let mut budget = self.cfg.commit_width;
        let start = self.commit_rr;
        self.commit_rr = (self.commit_rr + 1) % n;
        for k in 0..n {
            if budget == 0 {
                break;
            }
            let t = (start + k) % n;
            while budget > 0 {
                if !self.threads[t].rob.front_executed() {
                    break; // also covers an empty ROB
                }
                // In-place commit: copy the few scalars this stage
                // needs from the head slot, then drop the entry
                // without recomposing the full `InstState`.
                let (tag, seq, op, mem_addr, old_phys, wrong_path, pc, dst, taken) = {
                    let s = self.threads[t].rob.slot(0);
                    (
                        s.tag,
                        s.di.seq,
                        s.di.op,
                        s.di.mem_addr,
                        s.old_phys,
                        s.wrong_path,
                        s.di.pc,
                        s.di.dst,
                        s.di.taken,
                    )
                };
                self.threads[t].rob.drop_front();
                self.cycle_activity = true;
                // Architectural integrity (always-on cheap checks): the
                // committed stream is the functional trace, contiguous
                // and in order, and never wrong-path work.
                if wrong_path {
                    self.report_integrity(format!(
                        "t{t}: wrong-path instruction tag {tag} reached commit"
                    ));
                    break;
                }
                if let Some(prev) = self.threads[t].last_committed_seq {
                    if seq != prev + 1 {
                        self.report_integrity(format!(
                            "t{t}: commit-order hole: seq {seq} committed after seq {prev}"
                        ));
                        break;
                    }
                }
                self.threads[t].last_committed_seq = Some(seq);
                if op.is_mem() {
                    match self.threads[t].lsq.pop_front() {
                        Some(e) if e.tag == tag => {
                            if op == OpClass::Store {
                                self.mem.store_commit(mem_addr, self.now);
                            }
                        }
                        head => {
                            self.report_integrity(format!(
                                "t{t}: LSQ/ROB desync at commit: mem op tag {tag} vs LSQ head {:?}",
                                head.map(|e| e.tag)
                            ));
                            break;
                        }
                    }
                }
                if let Some(old) = old_phys {
                    self.regs.commit_release(t, old);
                }
                if T::ENABLED {
                    self.tracer.record(
                        self.now,
                        TraceEvent::Commit {
                            thread: t,
                            tag,
                            seq,
                            pc,
                            dst: dst.map_or(0, |r| r.flat_index() as u32 + 1),
                            mem_addr,
                            taken,
                        },
                    );
                }
                self.stats.threads[t].committed += 1;
                self.last_commit = self.now;
                budget -= 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    pub(crate) fn issue_stage(&mut self) {
        // Select from the ready pool, oldest first. The wakeup network
        // (see [`crate::soa::IqSoa`]) already proved every pooled entry
        // register-ready and disambiguation-clear — there is no
        // per-cycle readiness scan; this stage only validates pool
        // entries against the arena, orders them by global age, and
        // spends the issue width. Stores waited only on their address
        // operand; data is read at commit, by which time the (older)
        // producer has completed.
        let mut cands = std::mem::take(&mut self.scratch.cands);
        cands.clear();
        self.iq.drain_ready_into(&mut cands);
        if cands.is_empty() {
            self.scratch.cands = cands;
            return;
        }
        // A candidate this cycle — even one blocked on a structural FU
        // hazard — means the machine may make progress next cycle
        // without any event, so the cycle is not quiet.
        self.cycle_activity = true;
        cands.sort_unstable();
        let mut width = self.cfg.issue_width;
        for &(seq, slot) in &cands {
            if width == 0 {
                // Out of issue bandwidth: everything still ready stays
                // pooled for next cycle.
                self.iq.requeue_ready(slot, seq);
                continue;
            }
            let (t, tag) = (self.iq.thread(slot), self.iq.tag(slot));
            let p = self.iq.robp(slot);
            // Cached physical ROB slot, binary-search fallback when a
            // ring `grow` relocated it. An IQ entry whose instruction
            // is no longer in flight means squash cleanup missed it —
            // an integrity violation, not a panic.
            let idx = match self.threads[t].rob.live_at(p, tag) {
                Some(idx) => idx,
                None => match self.threads[t].rob.index_of(tag) {
                    Some(idx) => idx,
                    None => {
                        self.report_integrity(format!(
                            "IQ entry not in flight: now={} t{t} tag {tag} rob=[{:?}..{:?}] len={}",
                            self.now,
                            self.threads[t].rob.front_tag(),
                            self.threads[t].rob.back_tag(),
                            self.threads[t].rob.len()
                        ));
                        continue;
                    }
                },
            };
            let op = self.threads[t].rob.slot(idx).di.op;
            if !self.fu.can_issue(op, self.now) {
                // Structural hazard on this unit class: still ready,
                // back into the pool.
                self.iq.requeue_ready(slot, seq);
                continue;
            }
            self.do_issue(t, tag, idx);
            // Entries are freed at issue, as in the M-Sim baseline.
            self.iq.free_slot(slot);
            self.iq_usage[t] -= 1;
            self.threads[t].icount -= 1;
            width -= 1;
        }
        self.scratch.cands = cands;
    }

    /// Issues one instruction: reserves the FU, performs the cache
    /// access for loads, and schedules completion. `idx` is the
    /// caller's ROB index for `(t, tag)`; nothing between the lookup
    /// and the flag writes below mutates the ROB, so it stays valid.
    fn do_issue(&mut self, t: ThreadId, tag: u64, idx: usize) {
        let (op, addr, pc, wrong_path) = {
            let s = self.threads[t].rob.slot(idx);
            (s.di.op, s.di.mem_addr, s.di.pc, s.wrong_path)
        };
        let r = InstRef { thread: t, tag };
        let mut mem_state: Option<MemState> = None;
        let mut fill_fault = FillFault::None;
        let complete_at;
        match op {
            OpClass::Load => {
                let agen = self.fu.issue(op, self.now);
                // Store-to-load forwarding: youngest older store to the
                // same 8-byte chunk (all older stores are resolved —
                // ready_to_issue guarantees it).
                let fwd = {
                    let lsq = &self.threads[t].lsq;
                    lsq.forwarding_store_before(lsq.lower_bound(tag), addr >> 3)
                };
                if fwd {
                    complete_at = agen + 1;
                    mem_state = Some(MemState {
                        forwarded: true,
                        ..Default::default()
                    });
                    if !wrong_path {
                        self.stats.threads[t].forwarded_loads += 1;
                    }
                } else {
                    let res = self.mem.load(addr, agen);
                    let _pred = self.loadhit.predict(t, pc);
                    self.loadhit.update(t, pc, !res.l1_miss);
                    mem_state = Some(MemState {
                        l1_miss: res.l1_miss,
                        l2_miss: res.l2_miss,
                        miss_visible: false,
                        miss_detected_at: res.l2_miss_detected_at,
                        forwarded: false,
                    });
                    if res.l1_miss {
                        self.threads[t].pending_l1d += 1;
                    }
                    if res.l2_miss {
                        // Fault injection: an L2-missing load's fill may
                        // be delayed or lost entirely. The miss
                        // *detection* still happens — the machine saw
                        // the miss; it is the service that misbehaves.
                        fill_fault = self.fault.on_l2_fill_scheduled();
                        let delay = match fill_fault {
                            FillFault::Delay(d) => d,
                            _ => 0,
                        };
                        complete_at = res.complete_at + delay;
                        self.push_event(Event {
                            at: res.l2_miss_detected_at.max(self.now),
                            kind: EventKind::L2MissDetected,
                            inst: r,
                        });
                        if fill_fault != FillFault::Drop {
                            self.push_event(Event {
                                at: complete_at.max(self.now),
                                kind: EventKind::L2Fill,
                                inst: r,
                            });
                        }
                    } else {
                        complete_at = res.complete_at;
                    }
                }
                if !wrong_path {
                    self.stats.threads[t].loads += 1;
                }
            }
            _ => {
                // Stores execute address generation only; everything
                // else runs start-to-finish on its unit.
                complete_at = self.fu.issue(op, self.now);
            }
        }
        let th = &mut self.threads[t];
        th.rob.set_issued(idx, true);
        if let Some(m) = mem_state {
            th.rob.slot_mut(idx).mem = Some(m);
        }
        if !wrong_path {
            self.stats.threads[t].issued += 1;
        }
        // A dropped fill never completes: the load hangs until the
        // watchdog notices the starved thread.
        if fill_fault != FillFault::Drop {
            self.push_event(Event {
                at: complete_at.max(self.now + 1),
                kind: EventKind::Complete,
                inst: r,
            });
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (rename + ROB/IQ/LSQ allocation)
    // ------------------------------------------------------------------

    pub(crate) fn dispatch_stage(&mut self) {
        let mut caps = std::mem::take(&mut self.scratch.caps);
        self.dcra_caps_into(&mut caps);
        let n = self.cfg.num_threads;
        let mut budget = self.cfg.dispatch_width;
        let start = self.dispatch_rr;
        self.dispatch_rr = (start + 1) % n;
        for k in 0..n {
            if budget == 0 {
                break;
            }
            let t = (start + k) % n;
            while budget > 0 {
                if !self.try_dispatch_one(t, caps[t]) {
                    break;
                }
                budget -= 1;
            }
        }
        self.scratch.caps = caps;
    }

    /// Classifies thread `t`'s dispatch gate this cycle without
    /// committing to anything. The gate order (and therefore which
    /// stall gets charged) is load-bearing: it must match the order the
    /// pre-factored `try_dispatch_one` checked. (Dispatch consults the
    /// ROB capacity through the fault layer, which may be lying about
    /// it.)
    pub(crate) fn classify_dispatch(&mut self, t: ThreadId, iq_cap: usize) -> DispatchClass {
        let (op, dst, needs_iq) = {
            let th = &self.threads[t];
            let Some(f) = th.fetch_q.front() else {
                return DispatchClass::EmptyQ;
            };
            if f.ready_at > self.now {
                return DispatchClass::NotReady;
            }
            let op = f.di.op;
            (op, f.di.dst.filter(|d| !d.is_zero()), op != OpClass::Nop)
        };
        let rob_cap = self.dispatch_capacity(t);
        if self.threads[t].rob.len() >= rob_cap {
            return DispatchClass::Stall(StallKind::RobFull);
        }
        if needs_iq && self.iq.len() >= self.cfg.iq_size {
            return DispatchClass::Stall(StallKind::IqFull);
        }
        if needs_iq && self.iq_usage[t] >= iq_cap {
            return DispatchClass::Stall(StallKind::DcraCap);
        }
        if op.is_mem() && self.threads[t].lsq.len() >= self.cfg.lsq_size {
            return DispatchClass::Stall(StallKind::LsqFull);
        }
        if let Some(d) = dst {
            if self.regs.free_count(t, d.class()) == 0 {
                return DispatchClass::Stall(StallKind::NoRegs);
            }
        }
        DispatchClass::Pass
    }

    /// Charges `k` cycles of the given dispatch stall to thread `t`'s
    /// statistics (`k` = 1 from the dispatch stage; the cycle-skip
    /// engine replays whole quiescent stretches at once).
    pub(crate) fn bump_stall(&mut self, t: ThreadId, kind: StallKind, k: u64) {
        let st = &mut self.stats.threads[t];
        match kind {
            StallKind::RobFull => st.rob_stall_cycles += k,
            StallKind::IqFull => st.stall_iq += k,
            StallKind::DcraCap => st.stall_caps += k,
            StallKind::LsqFull => st.stall_lsq += k,
            StallKind::NoRegs => st.stall_regs += k,
        }
    }

    /// Attempts to dispatch the head of thread `t`'s fetch queue.
    /// Returns false when the thread cannot dispatch this cycle.
    fn try_dispatch_one(&mut self, t: ThreadId, iq_cap: usize) -> bool {
        match self.classify_dispatch(t, iq_cap) {
            DispatchClass::EmptyQ | DispatchClass::NotReady => return false,
            DispatchClass::Stall(kind) => {
                self.bump_stall(t, kind, 1);
                self.trace_stall(t, kind);
                return false;
            }
            DispatchClass::Pass => {}
        }
        let now = self.now;

        // Commit to dispatching.
        let Some(f) = self.threads[t].fetch_q.pop_front() else {
            return false; // unreachable: classify saw the head
        };
        let op = f.di.op;
        let dst = f.di.dst.filter(|d| !d.is_zero());
        let needs_iq = op != OpClass::Nop;
        let src_phys = f.di.srcs.map(|s| s.map(|a| self.regs.map(t, a)));
        let (dst_phys, old_phys) = match dst {
            Some(d) => match self.regs.rename_dst(t, d) {
                Some((new, old)) => (Some(new), Some(old)),
                None => {
                    self.report_integrity(format!(
                        "t{t}: rename_dst failed after free_count reported headroom"
                    ));
                    self.threads[t].fetch_q.push_front(f);
                    return false;
                }
            },
            None => (None, None),
        };
        let tag = self.threads[t].next_tag;
        self.threads[t].next_tag += 1;
        let seq = self.global_seq;
        self.global_seq += 1;
        let inst = InstState {
            tag,
            seq,
            di: f.di,
            wrong_path: f.wrong_path,
            dst_phys,
            old_phys,
            src_phys,
            issued: !needs_iq,
            executed: !needs_iq, // NOPs complete at dispatch
            dispatched_at: now,
            branch: f.branch,
            mem: f.di.op.is_mem().then(MemState::default),
            dod_hist: self.gshare.history(t),
        };
        // The ROB entry lands first so the IQ can cache its physical
        // slot (nothing below reads the ROB this cycle, so the order
        // relative to the IQ/LSQ inserts is not observable).
        self.threads[t].rob.push_back(inst);
        if needs_iq {
            // The IQ's wait conditions: stores wait only on their
            // address operand (src 0); loads additionally wait on
            // older-store resolution. The disambiguation verdict is
            // taken now — every LSQ entry present is older than this
            // instruction, whose own LSQ entry lands below — and
            // re-tested only on store resolutions ([`IqSoa::wake_lsq`]).
            let iq_srcs = if op == OpClass::Store {
                [src_phys[0], None]
            } else {
                src_phys
            };
            let th = &self.threads[t];
            let lsq_blocked = op == OpClass::Load && th.lsq.unresolved_store_before(th.lsq.len());
            let robp = th.rob.back_phys();
            let regs = &self.regs;
            self.iq.push(t, tag, seq, robp, iq_srcs, lsq_blocked, |r| {
                regs.is_ready(r)
            });
            self.iq_usage[t] += 1;
        } else {
            // NOPs leave the front end without entering the IQ.
            self.threads[t].icount -= 1;
        }
        if op.is_mem() {
            self.threads[t].lsq.push_back(LsqEntry {
                tag,
                is_store: op == OpClass::Store,
                addr: f.di.mem_addr,
                resolved: false,
            });
        }
        if let Some(bs) = f.branch {
            if bs.mispredicted && !f.wrong_path {
                debug_assert!(self.threads[t].redirect_tag.is_none());
                self.threads[t].redirect_tag = Some(tag);
            }
        }
        self.stats.threads[t].dispatched += 1;
        self.cycle_activity = true;
        true
    }

    /// Records a dispatch stall (no-op and fully compiled away when the
    /// tracer is disabled).
    #[inline]
    fn trace_stall(&mut self, thread: ThreadId, kind: StallKind) {
        if T::ENABLED {
            self.tracer
                .record(self.now, TraceEvent::ThreadStall { thread, kind });
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    pub(crate) fn fetch_stage(&mut self) {
        let mut order = std::mem::take(&mut self.scratch.order);
        self.fetch_order_into(&mut order);
        let mut budget = self.cfg.fetch_width;
        let mut threads_used = 0usize;
        for &t in &order {
            if budget == 0 || threads_used >= self.cfg.fetch_threads {
                break;
            }
            if !self.can_fetch(t) {
                continue;
            }
            // A thread allowed into fetch is activity even when it
            // fetches nothing: the zero-fetch paths mutate fetch state
            // (an I-miss arms `fetch_stall_until`, an exhausted
            // wrong-path walk sets `fetch_halted`).
            self.cycle_activity = true;
            let fetched = self.fetch_thread(t, budget);
            budget -= fetched;
            if fetched > 0 {
                threads_used += 1;
            }
        }
        self.scratch.order = order;
    }

    /// Fetches up to `budget` instructions from thread `t`; returns the
    /// number fetched.
    fn fetch_thread(&mut self, t: ThreadId, budget: usize) -> usize {
        let mut fetched = 0usize;
        while fetched < budget {
            if self.threads[t].fetch_q.len() >= self.cfg.fetch_queue {
                break;
            }
            let pc = self.threads[t].fetch_pc;
            // I-cache: one probe per line transition.
            let line = pc & !(self.cfg.l1i.line - 1);
            if line != self.threads[t].last_fetch_line {
                let res = self.mem.ifetch(pc, self.now);
                self.threads[t].last_fetch_line = line;
                if res.l1_miss {
                    self.threads[t].fetch_stall_until = res.complete_at;
                    break;
                }
            }
            // Obtain the instruction: wrong-path fabrication, FLUSH
            // replay, or the live trace.
            let (di, wrong) = {
                let th = &mut self.threads[t];
                if th.in_wrong_path {
                    match th.exec.wrong_path(pc, th.wp_counter) {
                        Some(d) => {
                            th.wp_counter += 1;
                            (d, true)
                        }
                        None => {
                            // Ran outside the program; a real machine
                            // would be fetching unmapped memory. Halt
                            // until the redirect resolves.
                            th.fetch_halted = true;
                            break;
                        }
                    }
                } else if let Some(front) = th.replay_q.pop_front() {
                    debug_assert_eq!(front.pc, pc, "replay stream out of position");
                    (front, false)
                } else {
                    let d = th.exec.next_inst();
                    debug_assert_eq!(d.pc, pc, "front end diverged from trace");
                    (d, false)
                }
            };

            // Branch prediction and next-PC selection.
            let mut branch_state: Option<BranchState> = None;
            let mut ends_group = false;
            let next_pc = if di.op.is_branch() {
                let cond = di.op == OpClass::BranchCond;
                let (dir, hist) = if cond {
                    self.gshare.predict(t, pc)
                } else {
                    (true, self.gshare.history(t))
                };
                let target = self.btb.predict(pc);
                let eff_taken = dir && target.is_some();
                let predicted_next = if eff_taken {
                    // eff_taken implies target.is_some(); the fallback
                    // arm is unreachable.
                    target.unwrap_or(pc + INST_BYTES)
                } else {
                    pc + INST_BYTES
                };
                if cond {
                    self.gshare.spec_update(t, dir);
                }
                let mispredicted = !wrong && predicted_next != di.next_pc;
                branch_state = Some(BranchState {
                    pred_taken: dir,
                    pred_target: target,
                    hist,
                    mispredicted,
                });
                if mispredicted {
                    let th = &mut self.threads[t];
                    th.in_wrong_path = true;
                    th.wp_counter = 0;
                }
                ends_group = eff_taken;
                predicted_next
            } else {
                pc + INST_BYTES
            };

            let th = &mut self.threads[t];
            th.fetch_pc = next_pc;
            th.fetch_q.push_back(Fetched {
                di,
                wrong_path: wrong,
                branch: branch_state,
                ready_at: self.now + self.cfg.decode_latency,
            });
            th.icount += 1;
            fetched += 1;
            self.stats.threads[t].fetched += 1;
            if wrong {
                self.stats.threads[t].wrong_path_fetched += 1;
            }
            if ends_group {
                break; // predicted-taken branch ends the fetch group
            }
        }
        fetched
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Squashes all instructions of `thread` with tags >= `from_tag`,
    /// redirecting fetch to `resume_pc`. With `collect_replay`
    /// (FLUSH), squashed *correct-path* instructions are queued for
    /// refetch — their dynamic instances were already drawn from the
    /// trace and must not be regenerated.
    pub(crate) fn squash_from(
        &mut self,
        thread: ThreadId,
        from_tag: u64,
        resume_pc: u64,
        collect_replay: bool,
    ) {
        if T::ENABLED {
            self.tracer.record(
                self.now,
                TraceEvent::Squash {
                    thread,
                    first_tag: from_tag,
                },
            );
        }
        // 1. Front end: drain the fetch queue (younger than all ROB
        //    entries). Replay collection reuses the scratch buffers
        //    (squash never nests — it is only entered from the event
        //    handlers, one at a time).
        let mut fetch_replay = std::mem::take(&mut self.scratch.fetch_replay);
        fetch_replay.clear();
        {
            let th = &mut self.threads[thread];
            for f in th.fetch_q.drain(..) {
                th.icount -= 1;
                if collect_replay && !f.wrong_path {
                    fetch_replay.push(f.di);
                }
            }
        }

        // 2. ROB: walk youngest-first, undoing rename state.
        let mut rob_replay = std::mem::take(&mut self.scratch.rob_replay);
        rob_replay.clear();
        let mut oldest_branch_hist: Option<u16> = None;
        let mut squashed = 0u64;
        loop {
            let th = &mut self.threads[thread];
            if th.rob.back_tag().is_none_or(|b| b < from_tag) {
                break;
            }
            let Some(i) = th.rob.pop_back() else {
                break; // unreachable: back presence checked above
            };
            squashed += 1;
            if let (Some(new), Some(old)) = (i.dst_phys, i.old_phys) {
                match i.di.dst {
                    Some(arch) => self.regs.squash_undo(thread, arch, new, old),
                    None => self.report_integrity(format!(
                        "t{thread}: renamed instruction tag {} has no architectural dst",
                        i.tag
                    )),
                }
            }
            let th = &mut self.threads[thread];
            if !i.executed {
                if let Some(m) = i.mem {
                    if m.l1_miss {
                        debug_assert!(th.pending_l1d > 0);
                        th.pending_l1d -= 1;
                    }
                }
            }
            if let Some(m) = i.mem {
                if m.miss_visible {
                    debug_assert!(th.pending_l2_visible > 0);
                    th.pending_l2_visible -= 1;
                }
            }
            if let Some(bs) = i.branch {
                oldest_branch_hist = Some(bs.hist);
            }
            if collect_replay && !i.wrong_path {
                rob_replay.push(i.di);
            }
        }
        self.stats.threads[thread].squashed += squashed;

        // 3. Shared IQ: free the squashed range's arena slots (stale
        //    waiter-list and ready-pool references fall out at their
        //    next validation).
        let iq_usage = &mut self.iq_usage;
        let threads = &mut self.threads;
        self.iq.squash(thread, from_tag, || {
            iq_usage[thread] -= 1;
            threads[thread].icount -= 1;
        });

        // 4. LSQ: truncate from the back.
        {
            let th = &mut self.threads[thread];
            while th.lsq.back_tag().is_some_and(|e| e >= from_tag) {
                th.lsq.pop_back();
            }
        }

        // 5. Fetch-state reset and replay queue assembly.
        {
            let th = &mut self.threads[thread];
            th.in_wrong_path = false;
            th.wp_counter = 0;
            th.fetch_halted = false;
            th.fetch_pc = resume_pc;
            th.last_fetch_line = u64::MAX;
            if th.redirect_tag.is_some_and(|rt| rt >= from_tag) {
                th.redirect_tag = None;
            }
            if th.flush_gate.is_some_and(|g| g >= from_tag) {
                th.flush_gate = None;
            }
            if collect_replay {
                // Program order: ROB entries (collected youngest-first,
                // so reversed) then fetch-queue entries, then whatever
                // was already awaiting replay.
                for di in fetch_replay.drain(..).rev() {
                    th.replay_q.push_front(di);
                }
                for di in rob_replay.drain(..) {
                    th.replay_q.push_front(di);
                }
            } else {
                debug_assert!(
                    rob_replay.is_empty() && fetch_replay.is_empty(),
                    "mispredict squash should only discard wrong-path work"
                );
            }
        }
        self.scratch.fetch_replay = fetch_replay;
        self.scratch.rob_replay = rob_replay;

        // 6. Branch-history repair: restore the snapshot of the oldest
        //    squashed branch (callers may further adjust, e.g. shifting
        //    in the resolving branch's actual outcome).
        if let Some(h) = oldest_branch_hist {
            self.gshare.set_history(thread, h);
        }

        self.alloc.on_squash(thread, from_tag, self.now);
    }
}
