//! Architectural register names.
//!
//! The model follows the Alpha register layout M-Sim sees: 32 integer and
//! 32 floating-point architectural registers per thread. Register *zero*
//! of each class is hardwired (reads as constant, writes discarded), like
//! Alpha's `$31`/`$f31`; the rename machinery in `smtsim-pipeline` relies
//! on this to avoid allocating physical registers for it.

use std::fmt;

/// Number of integer architectural registers per thread.
pub const NUM_ARCH_INT: usize = 32;
/// Number of floating-point architectural registers per thread.
pub const NUM_ARCH_FP: usize = 32;

/// Register class: each class has its own physical register file
/// (224 + 224 in the paper's Table 1 configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer registers (`r0..r31`).
    Int,
    /// Floating-point registers (`f0..f31`).
    Fp,
}

impl RegClass {
    /// Both register classes, in a fixed order usable for indexing.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];

    /// Dense index of the class (0 = Int, 1 = Fp).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        }
    }

    /// Number of architectural registers in this class.
    #[inline]
    pub fn arch_count(self) -> usize {
        match self {
            RegClass::Int => NUM_ARCH_INT,
            RegClass::Fp => NUM_ARCH_FP,
        }
    }
}

/// An architectural register name: a class plus an index within the class.
/// Ordering is `(class, idx)` — all integer registers before all FP —
/// giving analyses a deterministic register ordering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg {
    class: RegClass,
    idx: u8,
}

impl ArchReg {
    /// Creates an integer register `r{idx}`.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_ARCH_INT`.
    #[inline]
    pub fn int(idx: u8) -> Self {
        assert!((idx as usize) < NUM_ARCH_INT, "int reg {idx} out of range");
        ArchReg {
            class: RegClass::Int,
            idx,
        }
    }

    /// Creates a floating-point register `f{idx}`.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_ARCH_FP`.
    #[inline]
    pub fn fp(idx: u8) -> Self {
        assert!((idx as usize) < NUM_ARCH_FP, "fp reg {idx} out of range");
        ArchReg {
            class: RegClass::Fp,
            idx,
        }
    }

    /// The register's class.
    #[inline]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// Index within the class.
    #[inline]
    pub fn idx(self) -> u8 {
        self.idx
    }

    /// Whether this is the hardwired zero register of its class
    /// (index 31, mirroring Alpha's `$31`/`$f31`).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.idx as usize == self.class.arch_count() - 1
    }

    /// The hardwired zero register of `class`.
    #[inline]
    pub fn zero(class: RegClass) -> Self {
        ArchReg {
            class,
            idx: (class.arch_count() - 1) as u8,
        }
    }

    /// A dense index over *all* architectural registers of both classes,
    /// suitable for flat per-thread rename-table storage.
    #[inline]
    pub fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.idx as usize,
            RegClass::Fp => NUM_ARCH_INT + self.idx as usize,
        }
    }

    /// Total number of architectural registers across both classes.
    pub const FLAT_COUNT: usize = NUM_ARCH_INT + NUM_ARCH_FP;
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.idx),
            RegClass::Fp => write!(f, "f{}", self.idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_constructors() {
        let r = ArchReg::int(5);
        assert_eq!(r.class(), RegClass::Int);
        assert_eq!(r.idx(), 5);
        let f = ArchReg::fp(7);
        assert_eq!(f.class(), RegClass::Fp);
        assert_eq!(f.idx(), 7);
        assert_ne!(r, f);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_out_of_range_panics() {
        let _ = ArchReg::int(NUM_ARCH_INT as u8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_out_of_range_panics() {
        let _ = ArchReg::fp(NUM_ARCH_FP as u8);
    }

    #[test]
    fn zero_register_identification() {
        assert!(ArchReg::zero(RegClass::Int).is_zero());
        assert!(ArchReg::zero(RegClass::Fp).is_zero());
        assert!(!ArchReg::int(0).is_zero());
        assert!(ArchReg::int(31).is_zero());
        assert!(ArchReg::fp(31).is_zero());
    }

    #[test]
    fn flat_index_is_dense_and_unique() {
        let mut seen = [false; ArchReg::FLAT_COUNT];
        for i in 0..NUM_ARCH_INT {
            let idx = ArchReg::int(i as u8).flat_index();
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        for i in 0..NUM_ARCH_FP {
            let idx = ArchReg::fp(i as u8).flat_index();
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::fp(12).to_string(), "f12");
    }

    #[test]
    fn class_index_and_all() {
        assert_eq!(RegClass::ALL[RegClass::Int.index()], RegClass::Int);
        assert_eq!(RegClass::ALL[RegClass::Fp.index()], RegClass::Fp);
    }
}
