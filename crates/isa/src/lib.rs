//! # smtsim-isa
//!
//! The micro-op instruction-set model used by the `smtsim` family of
//! crates, which together reproduce *"Two-Level Reorder Buffers:
//! Accelerating Memory-Bound Applications on SMT Architectures"*
//! (Loew & Ponomarev, ICPP 2008).
//!
//! The paper evaluates on M-Sim executing Alpha binaries. We model the
//! view the timing simulator has of those binaries: a stream of typed
//! micro-ops with architectural register names, effective addresses for
//! memory operations, and resolved outcomes for branches. Values are
//! never needed by the timing model — only *names* (for dependencies),
//! *addresses* (for cache behaviour) and *outcomes* (for control flow) —
//! so the ISA captures exactly those.
//!
//! The crate has three layers:
//!
//! * [`reg`] — architectural register names ([`ArchReg`], [`RegClass`]).
//! * [`op`] — operation classes ([`OpClass`]) and their mapping onto
//!   functional-unit groups ([`FuGroup`]), plus the Table 1 latencies
//!   ([`FuTimings`]).
//! * [`program`] — the *static program* representation
//!   ([`Program`], [`BasicBlock`], [`StaticInst`]) that the workload
//!   generator synthesizes and the functional executor walks, and the
//!   *dynamic instruction* ([`DynInst`]) consumed by the pipeline.

pub mod op;
pub mod program;
pub mod reg;

pub use op::{FuGroup, FuTimings, OpClass};
pub use program::{
    BasicBlock, BlockId, BranchBehavior, BranchOutcome, DynInst, InstRole, Program, StaticInst,
    StreamId,
};
pub use reg::{ArchReg, RegClass, NUM_ARCH_FP, NUM_ARCH_INT};

/// A hardware thread context identifier within one SMT core.
///
/// The paper simulates a 4-way SMT machine; we allow up to
/// [`MAX_THREADS`] contexts.
pub type ThreadId = usize;

/// Maximum number of SMT hardware contexts supported by the model.
pub const MAX_THREADS: usize = 8;

/// Size in bytes of one instruction slot; PCs advance in units of this.
pub const INST_BYTES: u64 = 4;
