//! Static program representation and dynamic instructions.
//!
//! A [`Program`] is a control-flow graph of [`BasicBlock`]s containing
//! [`StaticInst`]s. The workload generator (`smtsim-workload`)
//! synthesizes programs whose register dataflow, branch behaviour and
//! memory-access streams imitate the SPEC CPU2000 benchmarks of the
//! paper's Table 2; its functional executor walks the CFG and emits
//! [`DynInst`]s, the unit of work the timing pipeline consumes.
//!
//! Because the program is *static* — the same PC always names the same
//! instruction with the same register dataflow — PC-indexed hardware
//! structures (gshare, BTB and the paper's §4.2 Degree-of-Dependence
//! predictor) observe the locality the paper's predictive scheme relies
//! on.

use crate::op::OpClass;
use crate::reg::ArchReg;
use crate::INST_BYTES;
use std::fmt;

/// Index of a basic block within a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifier of a memory-access stream descriptor.
///
/// The descriptor itself (stride, pointer-chase, random, footprint size)
/// lives in `smtsim-workload`; the ISA only carries the handle so a
/// static load/store is permanently associated with one access pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamId(pub u32);

/// Deterministic behaviour descriptor of one static branch, evaluated by
/// the functional executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchBehavior {
    /// Loop back-edge: taken `trip - 1` consecutive times, then not taken
    /// once (the loop exits), repeating. `trip >= 1`.
    Loop {
        /// Iterations per loop entry.
        trip: u32,
    },
    /// Biased branch: taken with probability `taken_pm / 1000`,
    /// pseudo-randomly but deterministically per dynamic instance.
    Biased {
        /// Per-mille probability of being taken.
        taken_pm: u16,
    },
    /// Unconditional transfer; always taken.
    Always,
}

/// Resolved outcome of a dynamic branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The PC executed next (target if taken, fall-through otherwise).
    pub next_pc: u64,
}

/// Role-specific payload of a static instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstRole {
    /// Plain computational instruction.
    None,
    /// Load or store drawing addresses from `stream`.
    Mem {
        /// The access-stream handle.
        stream: StreamId,
    },
    /// Branch with `behavior` transferring control to `target` when taken.
    Branch {
        /// Outcome generator.
        behavior: BranchBehavior,
        /// Taken-path successor block.
        target: BlockId,
    },
}

/// One static micro-op: operation class, register names, and role payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticInst {
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the op produces a value. `None` for
    /// stores, branches and NOPs.
    pub dst: Option<ArchReg>,
    /// Up to two source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Role payload (memory stream / branch behaviour).
    pub role: InstRole,
}

impl StaticInst {
    /// A computational op `dst <- op(srcs)`.
    pub fn compute(op: OpClass, dst: ArchReg, srcs: [Option<ArchReg>; 2]) -> Self {
        debug_assert!(!op.is_mem() && !op.is_branch());
        StaticInst {
            op,
            dst: Some(dst),
            srcs,
            role: InstRole::None,
        }
    }

    /// A load `dst <- [stream]` whose address depends on `addr_src`
    /// (e.g. a pointer-chase uses its own previous result).
    pub fn load(dst: ArchReg, addr_src: Option<ArchReg>, stream: StreamId) -> Self {
        StaticInst {
            op: OpClass::Load,
            dst: Some(dst),
            srcs: [addr_src, None],
            role: InstRole::Mem { stream },
        }
    }

    /// A store `[stream] <- data_src`, address depending on `addr_src`.
    pub fn store(data_src: Option<ArchReg>, addr_src: Option<ArchReg>, stream: StreamId) -> Self {
        StaticInst {
            op: OpClass::Store,
            dst: None,
            srcs: [addr_src, data_src],
            role: InstRole::Mem { stream },
        }
    }

    /// A conditional branch reading `cond_src`.
    pub fn branch(cond_src: Option<ArchReg>, behavior: BranchBehavior, target: BlockId) -> Self {
        let op = if matches!(behavior, BranchBehavior::Always) {
            OpClass::BranchUncond
        } else {
            OpClass::BranchCond
        };
        StaticInst {
            op,
            dst: None,
            srcs: [cond_src, None],
            role: InstRole::Branch { behavior, target },
        }
    }

    /// A no-op.
    pub fn nop() -> Self {
        StaticInst {
            op: OpClass::Nop,
            dst: None,
            srcs: [None, None],
            role: InstRole::None,
        }
    }

    /// Memory-stream handle, if this is a load/store.
    pub fn stream(&self) -> Option<StreamId> {
        match self.role {
            InstRole::Mem { stream } => Some(stream),
            _ => None,
        }
    }

    /// Branch payload, if this is a branch.
    pub fn branch_info(&self) -> Option<(BranchBehavior, BlockId)> {
        match self.role {
            InstRole::Branch { behavior, target } => Some((behavior, target)),
            _ => None,
        }
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        for s in self.srcs.iter().flatten() {
            write!(f, " {s}")?;
        }
        match self.role {
            InstRole::Mem { stream } => write!(f, " @s{}", stream.0)?,
            InstRole::Branch { target, .. } => write!(f, " -> b{}", target.0)?,
            InstRole::None => {}
        }
        Ok(())
    }
}

/// A straight-line sequence of instructions with a single exit.
///
/// Only the *last* instruction may be a branch. If the last instruction
/// is not taken (or is not a branch), control continues at
/// `fallthrough`.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// The instructions, in program order. Must be non-empty.
    pub insts: Vec<StaticInst>,
    /// Successor when execution falls off the end of the block.
    pub fallthrough: BlockId,
}

impl BasicBlock {
    /// Creates a block; `insts` must be non-empty and contain branches
    /// only in the final position.
    pub fn new(insts: Vec<StaticInst>, fallthrough: BlockId) -> Self {
        assert!(!insts.is_empty(), "basic block must be non-empty");
        for (i, inst) in insts.iter().enumerate() {
            if inst.op.is_branch() {
                assert_eq!(i, insts.len() - 1, "branch must terminate the block");
            }
        }
        BasicBlock { insts, fallthrough }
    }

    /// The terminating branch, if any.
    pub fn terminator(&self) -> Option<&StaticInst> {
        self.insts.last().filter(|i| i.op.is_branch())
    }
}

/// A complete static program: a CFG with assigned PCs.
///
/// Programs are *endless*: every block has a valid successor, so the
/// functional executor can produce an unbounded dynamic stream (the
/// paper simulates fixed instruction budgets out of endless SPEC
/// regions).
#[derive(Clone, Debug)]
pub struct Program {
    name: String,
    blocks: Vec<BasicBlock>,
    /// Instruction index of the first instruction of each block.
    block_base: Vec<u32>,
    /// Base address added to all PCs (gives threads distinct code
    /// regions so predictor aliasing across threads is realistic rather
    /// than total).
    pc_base: u64,
    total_insts: u32,
    entry: BlockId,
}

impl Program {
    /// Builds and validates a program.
    ///
    /// # Panics
    /// Panics if any block is empty, any successor (fall-through or
    /// branch target) is out of range, or `blocks` is empty.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<BasicBlock>,
        entry: BlockId,
        pc_base: u64,
    ) -> Self {
        assert!(!blocks.is_empty(), "program must have at least one block");
        assert!((entry.0 as usize) < blocks.len(), "entry out of range");
        let n = blocks.len() as u32;
        let mut block_base = Vec::with_capacity(blocks.len());
        let mut total = 0u32;
        for b in &blocks {
            assert!(b.fallthrough.0 < n, "fallthrough target out of range");
            if let Some(t) = b.terminator() {
                let (_, target) = t.branch_info().expect("terminator is branch");
                assert!(target.0 < n, "branch target out of range");
            }
            block_base.push(total);
            total += b.insts.len() as u32;
        }
        Program {
            name: name.into(),
            blocks,
            block_base,
            pc_base,
            total_insts: total,
            entry,
        }
    }

    /// Program name (benchmark name for synthetic SPEC workloads).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of static instructions.
    pub fn num_insts(&self) -> u32 {
        self.total_insts
    }

    /// Base PC of the program's code region.
    pub fn pc_base(&self) -> u64 {
        self.pc_base
    }

    /// Access a block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// PC of instruction `idx` within block `id`.
    #[inline]
    pub fn pc_of(&self, id: BlockId, idx: usize) -> u64 {
        self.pc_base + (self.block_base[id.0 as usize] as u64 + idx as u64) * INST_BYTES
    }

    /// Maps a PC back to its `(block, index)` position, or `None` if the
    /// PC lies outside the program's code region. Used for wrong-path
    /// fetch after a branch misprediction.
    pub fn locate(&self, pc: u64) -> Option<(BlockId, usize)> {
        if pc < self.pc_base || !(pc - self.pc_base).is_multiple_of(INST_BYTES) {
            return None;
        }
        let inst_idx = ((pc - self.pc_base) / INST_BYTES) as u32;
        if inst_idx >= self.total_insts {
            return None;
        }
        let block = match self.block_base.binary_search(&inst_idx) {
            Ok(b) => b,
            Err(ins) => ins - 1,
        };
        Some((
            BlockId(block as u32),
            (inst_idx - self.block_base[block]) as usize,
        ))
    }

    /// Iterate `(BlockId, &BasicBlock)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Renders a disassembly listing (for debugging workload generators).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (id, b) in self.iter_blocks() {
            let _ = writeln!(out, "b{}:", id.0);
            for (i, inst) in b.insts.iter().enumerate() {
                let _ = writeln!(out, "  {:#010x}  {inst}", self.pc_of(id, i));
            }
            let _ = writeln!(out, "  ; fallthrough -> b{}", b.fallthrough.0);
        }
        out
    }
}

/// One dynamic instruction produced by the functional executor and
/// consumed by the timing pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynInst {
    /// Program counter of the static instruction.
    pub pc: u64,
    /// Dynamic sequence number within the thread (0-based).
    pub seq: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// Source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Effective address (valid when `op.is_mem()`).
    pub mem_addr: u64,
    /// Branch outcome: taken flag (valid when `op.is_branch()`).
    pub taken: bool,
    /// PC of the next dynamic instruction in program order.
    pub next_pc: u64,
}

impl DynInst {
    /// The resolved branch outcome, if this is a branch.
    pub fn outcome(&self) -> Option<BranchOutcome> {
        self.op.is_branch().then_some(BranchOutcome {
            taken: self.taken,
            next_pc: self.next_pc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;

    fn tiny_loop() -> Program {
        // b0: alu r1 r1 ; load r2 ; br(loop 4) -> b0 ; fall to b0
        let b0 = BasicBlock::new(
            vec![
                StaticInst::compute(
                    OpClass::IntAlu,
                    ArchReg::int(1),
                    [Some(ArchReg::int(1)), None],
                ),
                StaticInst::load(ArchReg::int(2), Some(ArchReg::int(1)), StreamId(0)),
                StaticInst::branch(
                    Some(ArchReg::int(2)),
                    BranchBehavior::Loop { trip: 4 },
                    BlockId(0),
                ),
            ],
            BlockId(0),
        );
        Program::new("tiny", vec![b0], BlockId(0), 0x1000)
    }

    #[test]
    fn pcs_are_assigned_densely() {
        let p = tiny_loop();
        assert_eq!(p.pc_of(BlockId(0), 0), 0x1000);
        assert_eq!(p.pc_of(BlockId(0), 1), 0x1004);
        assert_eq!(p.pc_of(BlockId(0), 2), 0x1008);
        assert_eq!(p.num_insts(), 3);
    }

    #[test]
    fn locate_round_trips() {
        let p = tiny_loop();
        for i in 0..3 {
            let pc = p.pc_of(BlockId(0), i);
            assert_eq!(p.locate(pc), Some((BlockId(0), i)));
        }
        assert_eq!(p.locate(0x0), None); // below base
        assert_eq!(p.locate(0x1000 + 3 * 4), None); // past end
        assert_eq!(p.locate(0x1002), None); // misaligned
    }

    #[test]
    fn locate_multi_block() {
        let b0 = BasicBlock::new(vec![StaticInst::nop(), StaticInst::nop()], BlockId(1));
        let b1 = BasicBlock::new(vec![StaticInst::nop()], BlockId(0));
        let p = Program::new("two", vec![b0, b1], BlockId(0), 0x100);
        assert_eq!(p.locate(0x100), Some((BlockId(0), 0)));
        assert_eq!(p.locate(0x104), Some((BlockId(0), 1)));
        assert_eq!(p.locate(0x108), Some((BlockId(1), 0)));
    }

    #[test]
    fn multi_block_pc_bases() {
        let b0 = BasicBlock::new(vec![StaticInst::nop(), StaticInst::nop()], BlockId(1));
        let b1 = BasicBlock::new(vec![StaticInst::nop()], BlockId(0));
        let p = Program::new("two", vec![b0, b1], BlockId(0), 0);
        assert_eq!(p.pc_of(BlockId(1), 0), 8);
        assert_eq!(p.num_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "branch must terminate")]
    fn branch_mid_block_rejected() {
        let _ = BasicBlock::new(
            vec![
                StaticInst::branch(None, BranchBehavior::Always, BlockId(0)),
                StaticInst::nop(),
            ],
            BlockId(0),
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_block_rejected() {
        let _ = BasicBlock::new(vec![], BlockId(0));
    }

    #[test]
    #[should_panic(expected = "branch target out of range")]
    fn bad_branch_target_rejected() {
        let b0 = BasicBlock::new(
            vec![StaticInst::branch(None, BranchBehavior::Always, BlockId(7))],
            BlockId(0),
        );
        let _ = Program::new("bad", vec![b0], BlockId(0), 0);
    }

    #[test]
    #[should_panic(expected = "fallthrough target out of range")]
    fn bad_fallthrough_rejected() {
        let b0 = BasicBlock::new(vec![StaticInst::nop()], BlockId(3));
        let _ = Program::new("bad", vec![b0], BlockId(0), 0);
    }

    #[test]
    fn terminator_detection() {
        let p = tiny_loop();
        let b = p.block(BlockId(0));
        assert!(b.terminator().is_some());
        let b2 = BasicBlock::new(vec![StaticInst::nop()], BlockId(0));
        assert!(b2.terminator().is_none());
    }

    #[test]
    fn constructors_set_roles() {
        let ld = StaticInst::load(ArchReg::int(1), None, StreamId(9));
        assert_eq!(ld.stream(), Some(StreamId(9)));
        assert_eq!(ld.op, OpClass::Load);
        let st = StaticInst::store(Some(ArchReg::int(2)), Some(ArchReg::int(3)), StreamId(1));
        assert_eq!(st.dst, None);
        assert_eq!(st.srcs, [Some(ArchReg::int(3)), Some(ArchReg::int(2))]);
        let br = StaticInst::branch(None, BranchBehavior::Always, BlockId(0));
        assert_eq!(br.op, OpClass::BranchUncond);
        let brc = StaticInst::branch(None, BranchBehavior::Biased { taken_pm: 500 }, BlockId(0));
        assert_eq!(brc.op, OpClass::BranchCond);
        assert!(brc.branch_info().is_some());
    }

    #[test]
    fn disassembly_mentions_every_instruction() {
        let p = tiny_loop();
        let dis = p.disassemble();
        assert!(dis.contains("alu r1 r1"));
        assert!(dis.contains("load r2 r1 @s0"));
        assert!(dis.contains("-> b0"));
    }

    #[test]
    fn dyn_inst_outcome() {
        let mut d = DynInst {
            pc: 0,
            seq: 0,
            op: OpClass::BranchCond,
            dst: None,
            srcs: [None, None],
            mem_addr: 0,
            taken: true,
            next_pc: 0x40,
        };
        assert_eq!(
            d.outcome(),
            Some(BranchOutcome {
                taken: true,
                next_pc: 0x40
            })
        );
        d.op = OpClass::IntAlu;
        assert_eq!(d.outcome(), None);
    }
}
