//! Operation classes, functional-unit groups and execution latencies.
//!
//! The latency table reproduces Table 1 of the paper:
//!
//! ```text
//! 8 Int Add (1/1), 4 Int Mult (3/1) / Div (20/19),
//! 4 Load/Store (2/1), 8 FP Add (2), 4 FP Mult (4/1) / Div (12/12) / Sqrt (24/24)
//! ```
//!
//! The notation is `(total latency / issue latency)`: *total* is cycles
//! from issue to result, *issue* is the unit's occupancy — 1 for fully
//! pipelined units, equal to total for unpipelined dividers.

use std::fmt;

/// The class of a micro-operation, which determines the functional-unit
/// group it executes on and its latencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer add/sub/logical/shift/compare.
    IntAlu,
    /// Integer multiply.
    IntMult,
    /// Integer divide (unpipelined).
    IntDiv,
    /// Memory load. Address generation happens on the load/store unit;
    /// the cache access latency is added by the memory model.
    Load,
    /// Memory store. Address generation on the load/store unit; the data
    /// write happens at commit through the store buffer.
    Store,
    /// Conditional branch (executes on an integer ALU).
    BranchCond,
    /// Unconditional jump (executes on an integer ALU).
    BranchUncond,
    /// Floating-point add/sub/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMult,
    /// Floating-point divide (unpipelined).
    FpDiv,
    /// Floating-point square root (unpipelined).
    FpSqrt,
    /// No-operation (still occupies a ROB slot, executes instantly).
    Nop,
}

impl OpClass {
    /// All operation classes, for exhaustive iteration in tests.
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMult,
        OpClass::IntDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::BranchCond,
        OpClass::BranchUncond,
        OpClass::FpAdd,
        OpClass::FpMult,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Nop,
    ];

    /// The functional-unit group this op issues to, or `None` for ops
    /// that need no unit (NOPs complete at issue).
    #[inline]
    pub fn fu_group(self) -> Option<FuGroup> {
        match self {
            OpClass::IntAlu | OpClass::BranchCond | OpClass::BranchUncond => Some(FuGroup::IntAdd),
            OpClass::IntMult | OpClass::IntDiv => Some(FuGroup::IntMultDiv),
            OpClass::Load | OpClass::Store => Some(FuGroup::LdSt),
            OpClass::FpAdd => Some(FuGroup::FpAdd),
            OpClass::FpMult | OpClass::FpDiv | OpClass::FpSqrt => Some(FuGroup::FpMultDivSqrt),
            OpClass::Nop => None,
        }
    }

    /// True for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True for conditional and unconditional branches.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::BranchCond | OpClass::BranchUncond)
    }

    /// True for operations executing in the floating-point cluster.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd | OpClass::FpMult | OpClass::FpDiv | OpClass::FpSqrt
        )
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMult => "mult",
            OpClass::IntDiv => "div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::BranchCond => "br",
            OpClass::BranchUncond => "jmp",
            OpClass::FpAdd => "fadd",
            OpClass::FpMult => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::FpSqrt => "fsqrt",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Functional-unit group: a pool of identical units sharing an issue port
/// class. Counts per group come from [`FuTimings`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuGroup {
    /// Integer adders (also execute branches).
    IntAdd,
    /// Integer multiplier/dividers.
    IntMultDiv,
    /// Load/store address-generation ports.
    LdSt,
    /// Floating-point adders.
    FpAdd,
    /// Floating-point multiply/divide/sqrt units.
    FpMultDivSqrt,
}

impl FuGroup {
    /// All groups, in dense-index order.
    pub const ALL: [FuGroup; 5] = [
        FuGroup::IntAdd,
        FuGroup::IntMultDiv,
        FuGroup::LdSt,
        FuGroup::FpAdd,
        FuGroup::FpMultDivSqrt,
    ];

    /// Dense index for array-backed per-group state.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuGroup::IntAdd => 0,
            FuGroup::IntMultDiv => 1,
            FuGroup::LdSt => 2,
            FuGroup::FpAdd => 3,
            FuGroup::FpMultDivSqrt => 4,
        }
    }
}

/// Latency pair `(total, issue)` for one op class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latency {
    /// Cycles from issue until the result is available for dependents.
    pub total: u32,
    /// Cycles the functional unit stays busy (1 = fully pipelined).
    pub issue: u32,
}

/// Functional-unit counts and per-op latencies for a machine
/// configuration. [`FuTimings::icpp08`] reproduces the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuTimings {
    /// Number of units in each [`FuGroup`], indexed by [`FuGroup::index`].
    pub counts: [usize; 5],
    latencies: [Latency; 12],
}

impl FuTimings {
    /// The Table 1 configuration of the paper.
    pub fn icpp08() -> Self {
        let mut latencies = [Latency { total: 1, issue: 1 }; 12];
        let set = |l: &mut [Latency; 12], op: OpClass, total: u32, issue: u32| {
            l[Self::op_index(op)] = Latency { total, issue };
        };
        set(&mut latencies, OpClass::IntAlu, 1, 1);
        set(&mut latencies, OpClass::IntMult, 3, 1);
        set(&mut latencies, OpClass::IntDiv, 20, 19);
        // Load/store address generation: (2/1). Cache latency is added on
        // top by the memory hierarchy model.
        set(&mut latencies, OpClass::Load, 2, 1);
        set(&mut latencies, OpClass::Store, 2, 1);
        set(&mut latencies, OpClass::BranchCond, 1, 1);
        set(&mut latencies, OpClass::BranchUncond, 1, 1);
        set(&mut latencies, OpClass::FpAdd, 2, 1);
        set(&mut latencies, OpClass::FpMult, 4, 1);
        set(&mut latencies, OpClass::FpDiv, 12, 12);
        set(&mut latencies, OpClass::FpSqrt, 24, 24);
        set(&mut latencies, OpClass::Nop, 1, 1);
        FuTimings {
            // 8 IntAdd, 4 IntMult/Div, 4 Ld/St, 8 FpAdd, 4 FpMult/Div/Sqrt
            counts: [8, 4, 4, 8, 4],
            latencies,
        }
    }

    fn op_index(op: OpClass) -> usize {
        OpClass::ALL
            .iter()
            .position(|&o| o == op)
            .expect("op in ALL")
    }

    /// Latency pair for `op`.
    #[inline]
    pub fn latency(&self, op: OpClass) -> Latency {
        self.latencies[Self::op_index(op)]
    }

    /// Overrides the latency of one op class (used by ablation studies).
    pub fn set_latency(&mut self, op: OpClass, total: u32, issue: u32) {
        self.latencies[Self::op_index(op)] = Latency { total, issue };
    }

    /// Number of units in `group`.
    #[inline]
    pub fn unit_count(&self, group: FuGroup) -> usize {
        self.counts[group.index()]
    }
}

impl Default for FuTimings {
    fn default() -> Self {
        FuTimings::icpp08()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies() {
        let t = FuTimings::icpp08();
        assert_eq!(t.latency(OpClass::IntAlu), Latency { total: 1, issue: 1 });
        assert_eq!(t.latency(OpClass::IntMult), Latency { total: 3, issue: 1 });
        assert_eq!(
            t.latency(OpClass::IntDiv),
            Latency {
                total: 20,
                issue: 19
            }
        );
        assert_eq!(t.latency(OpClass::Load), Latency { total: 2, issue: 1 });
        assert_eq!(t.latency(OpClass::FpAdd), Latency { total: 2, issue: 1 });
        assert_eq!(t.latency(OpClass::FpMult), Latency { total: 4, issue: 1 });
        assert_eq!(
            t.latency(OpClass::FpDiv),
            Latency {
                total: 12,
                issue: 12
            }
        );
        assert_eq!(
            t.latency(OpClass::FpSqrt),
            Latency {
                total: 24,
                issue: 24
            }
        );
    }

    #[test]
    fn table1_unit_counts() {
        let t = FuTimings::icpp08();
        assert_eq!(t.unit_count(FuGroup::IntAdd), 8);
        assert_eq!(t.unit_count(FuGroup::IntMultDiv), 4);
        assert_eq!(t.unit_count(FuGroup::LdSt), 4);
        assert_eq!(t.unit_count(FuGroup::FpAdd), 8);
        assert_eq!(t.unit_count(FuGroup::FpMultDivSqrt), 4);
    }

    #[test]
    fn every_op_maps_to_a_group_or_none() {
        for op in OpClass::ALL {
            match op {
                OpClass::Nop => assert!(op.fu_group().is_none()),
                _ => assert!(op.fu_group().is_some(), "{op} must have a group"),
            }
        }
    }

    #[test]
    fn branches_execute_on_int_add() {
        assert_eq!(OpClass::BranchCond.fu_group(), Some(FuGroup::IntAdd));
        assert_eq!(OpClass::BranchUncond.fu_group(), Some(FuGroup::IntAdd));
    }

    #[test]
    fn predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::BranchCond.is_branch());
        assert!(!OpClass::Load.is_branch());
        assert!(OpClass::FpSqrt.is_fp());
        assert!(!OpClass::IntDiv.is_fp());
    }

    #[test]
    fn set_latency_overrides() {
        let mut t = FuTimings::icpp08();
        t.set_latency(OpClass::IntMult, 5, 2);
        assert_eq!(t.latency(OpClass::IntMult), Latency { total: 5, issue: 2 });
    }

    #[test]
    fn group_indices_dense() {
        for (i, g) in FuGroup::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }
}
