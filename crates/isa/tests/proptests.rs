//! Property tests for the ISA layer: PC assignment and `locate` are
//! mutually inverse for arbitrary well-formed programs.

use proptest::prelude::*;
use smtsim_isa::{BasicBlock, BlockId, BranchBehavior, OpClass, Program, StaticInst, INST_BYTES};

/// Strategy: a random well-formed program of `nblocks` blocks whose
/// fall-throughs are sequential (the invariant generated programs obey).
fn arb_program() -> impl Strategy<Value = Program> {
    (
        2usize..12,
        0u64..1u64 << 40,
        proptest::collection::vec(1usize..12, 2..12),
    )
        .prop_map(|(nblocks, base, sizes)| {
            let nblocks = nblocks.min(sizes.len());
            let blocks: Vec<BasicBlock> = (0..nblocks)
                .map(|i| {
                    let mut insts: Vec<StaticInst> =
                        (0..sizes[i]).map(|_| StaticInst::nop()).collect();
                    if i == nblocks - 1 {
                        // Close the ring.
                        insts.push(StaticInst::branch(None, BranchBehavior::Always, BlockId(0)));
                    }
                    let fall = if i + 1 < nblocks { i + 1 } else { 0 };
                    BasicBlock::new(insts, BlockId(fall as u32))
                })
                .collect();
            Program::new("prop", blocks, BlockId(0), base & !(INST_BYTES - 1))
        })
}

proptest! {
    #[test]
    fn pc_of_and_locate_round_trip(p in arb_program()) {
        for (id, b) in p.iter_blocks() {
            for idx in 0..b.insts.len() {
                let pc = p.pc_of(id, idx);
                prop_assert_eq!(p.locate(pc), Some((id, idx)));
            }
        }
    }

    #[test]
    fn locate_rejects_out_of_range(p in arb_program(), off in 0u64..1 << 16) {
        let below = p.pc_base().wrapping_sub(4 + off * 4);
        if below < p.pc_base() {
            prop_assert_eq!(p.locate(below), None);
        }
        let above = p.pc_base() + (p.num_insts() as u64 + off) * INST_BYTES;
        prop_assert_eq!(p.locate(above), None);
    }

    #[test]
    fn pcs_are_dense_and_monotonic(p in arb_program()) {
        let mut prev: Option<u64> = None;
        for (id, b) in p.iter_blocks() {
            for idx in 0..b.insts.len() {
                let pc = p.pc_of(id, idx);
                if let Some(q) = prev {
                    prop_assert_eq!(pc, q + INST_BYTES);
                }
                prev = Some(pc);
            }
        }
        prop_assert_eq!(
            prev.unwrap() + INST_BYTES,
            p.pc_base() + p.num_insts() as u64 * INST_BYTES
        );
    }

    #[test]
    fn misaligned_pcs_never_locate(p in arb_program(), idx in 0u32..64, off in 1u64..4) {
        let pc = p.pc_base() + idx as u64 * INST_BYTES + off;
        prop_assert_eq!(p.locate(pc), None);
    }

    #[test]
    fn constructors_reject_branchless_claims(n in 1usize..6) {
        // Any op class constructed via compute() must not be mem/branch.
        let ops = [OpClass::IntAlu, OpClass::FpAdd, OpClass::IntMult];
        let op = ops[n % ops.len()];
        prop_assert!(!op.is_mem() && !op.is_branch());
    }
}
