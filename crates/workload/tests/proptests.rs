//! Property tests for workload generation and functional execution:
//! any valid profile × seed must yield a well-formed, deterministic,
//! front-end-consistent workload.

use proptest::prelude::*;
use smtsim_workload::{build, Executor, IlpClass, StreamDesc, WorkloadProfile};
use std::sync::Arc;

/// Strategy over valid profiles (bounded so tests stay fast).
fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        100u16..350,    // load_frac_pm
        20u16..150,     // store_frac_pm
        0u16..1000,     // fp_frac_pm
        0u16..200,      // miss_load_frac_pm
        0u16..1000,     // chase_frac_pm
        0u16..1000,     // dense_frac_pm
        (0.0f64..12.0), // dod_mean
        (1.0f64..16.0), // dod_gap
        2usize..8,      // num_segments
        1u32..64,       // avg_trip
        (3usize..10, 10usize..30),
    )
        .prop_map(
            |(load, store, fp, miss, chase, dense, dod, gap, segs, trip, (bmin, bmax))| {
                WorkloadProfile {
                    name: "prop",
                    class: IlpClass::Mid,
                    load_frac_pm: load,
                    store_frac_pm: store,
                    branch_frac_pm: 80,
                    fp_frac_pm: fp,
                    longlat_frac_pm: 60,
                    dod_mean: dod,
                    dod_cap: 28,
                    dense_frac_pm: dense,
                    dod_gap: gap,
                    chain_frac_pm: 500,
                    miss_load_frac_pm: miss,
                    chase_frac_pm: chase,
                    stream_frac_pm: 500,
                    footprint: 8 << 20,
                    hot_footprint: 8 << 10,
                    branch_bias_pm: 900,
                    avg_trip: trip,
                    block_size: (bmin, bmax),
                    num_segments: segs,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_are_well_formed(p in arb_profile(), seed in 0u64..1000) {
        p.validate().unwrap();
        let wl = build(&p, seed, 0x1_0000, 0x1000_0000);
        prop_assert!(wl.program.num_insts() > 10);
        // Every stream referenced exists; every branch target valid is
        // checked by Program::new already.
        for (_, b) in wl.program.iter_blocks() {
            for inst in &b.insts {
                if let Some(s) = inst.stream() {
                    prop_assert!((s.0 as usize) < wl.streams.len());
                }
            }
        }
        // Static missing loads never exceed loads.
        prop_assert!(wl.static_missing_loads <= wl.static_loads);
    }

    #[test]
    fn trace_follows_its_own_next_pc(p in arb_profile(), seed in 0u64..100) {
        let wl = Arc::new(build(&p, seed, 0x1_0000, 0x1000_0000));
        let mut e = Executor::new(wl, seed ^ 0xABCD);
        let mut expect = None;
        for _ in 0..3_000 {
            let d = e.next_inst();
            if let Some(pc) = expect {
                prop_assert_eq!(d.pc, pc, "front-end/trace divergence");
            }
            // Non-branches always continue sequentially (the hardware
            // front-end invariant the generator must uphold).
            if !d.op.is_branch() {
                prop_assert_eq!(d.next_pc, d.pc + 4);
            }
            expect = Some(d.next_pc);
        }
    }

    #[test]
    fn executor_is_deterministic(p in arb_profile(), seed in 0u64..50) {
        let wl = Arc::new(build(&p, seed, 0x1_0000, 0x1000_0000));
        let mut a = Executor::new(wl.clone(), 7);
        let mut b = Executor::new(wl, 7);
        for _ in 0..1_000 {
            prop_assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn memory_addresses_stay_inside_their_streams(p in arb_profile(), seed in 0u64..50) {
        let wl = Arc::new(build(&p, seed, 0x1_0000, 0x1000_0000));
        let regions: Vec<(u64, u64)> = wl
            .streams
            .iter()
            .map(|s| match *s {
                StreamDesc::Strided { base, footprint, .. }
                | StreamDesc::Chase { base, footprint, .. }
                | StreamDesc::Random { base, footprint }
                | StreamDesc::Hot { base, footprint, .. } => (base, base + footprint.max(8)),
            })
            .collect();
        let mut e = Executor::new(wl, 3);
        for _ in 0..2_000 {
            let d = e.next_inst();
            if d.op.is_mem() {
                prop_assert!(
                    regions.iter().any(|&(lo, hi)| d.mem_addr >= lo && d.mem_addr < hi),
                    "address {:#x} outside all stream regions",
                    d.mem_addr
                );
            }
        }
    }

    #[test]
    fn wrong_path_fabrication_is_pure_and_in_program(p in arb_profile(), seed in 0u64..50) {
        let wl = Arc::new(build(&p, seed, 0x1_0000, 0x1000_0000));
        let mut e = Executor::new(wl, 3);
        for _ in 0..200 {
            e.next_inst();
        }
        let snapshot = e.clone();
        let pc = e.program().pc_of(e.program().entry(), 0);
        for wp in 0..32 {
            let a = e.wrong_path(pc, wp);
            prop_assert!(a.is_some());
        }
        // State untouched by wrong-path queries: the next correct-path
        // instruction matches a pre-query snapshot.
        let mut s = snapshot.clone();
        prop_assert_eq!(e.next_inst(), s.next_inst());
    }

    #[test]
    fn loop_trip_counts_bound_branch_behaviour(trip in 1u32..50) {
        // A loop branch with trip T is taken exactly T-1 times per T
        // executions, forever.
        use smtsim_isa::{BasicBlock, BlockId, BranchBehavior, StaticInst, Program};
        let body = BasicBlock::new(
            vec![
                StaticInst::nop(),
                StaticInst::branch(None, BranchBehavior::Loop { trip }, BlockId(0)),
            ],
            BlockId(1),
        );
        let wrap = BasicBlock::new(
            vec![StaticInst::branch(None, BranchBehavior::Always, BlockId(0))],
            BlockId(0),
        );
        let program = Program::new("loop", vec![body, wrap], BlockId(0), 0x1000);
        let profile = WorkloadProfile::test_profile();
        let wl = smtsim_workload::Workload {
            profile,
            program,
            streams: vec![],
            static_missing_loads: 0,
            static_loads: 0,
            static_missing_dod: 0,
        };
        let mut e = Executor::new(Arc::new(wl), 1);
        let (mut taken, mut total) = (0u64, 0u64);
        for _ in 0..trip * 40 {
            let d = e.next_inst();
            if d.op == smtsim_isa::OpClass::BranchCond {
                total += 1;
                taken += d.taken as u64;
            }
        }
        if total > 0 {
            let expect = (trip as u64 - 1) as f64 / trip as f64;
            let got = taken as f64 / total as f64;
            prop_assert!((got - expect).abs() < 0.15, "trip {trip}: {got} vs {expect}");
        }
    }
}
