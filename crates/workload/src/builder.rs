//! Synthetic program generation from a [`WorkloadProfile`].
//!
//! The generator emits an endless ring of loop segments. Each segment is
//! a small loop nest — optionally with a biased branch diamond — whose
//! body instructions follow the profile's mix. Crucially, every load is
//! followed (statically) by a controlled number of instructions that
//! transitively consume its result: the load's **Degree of Dependence
//! (DoD)**. Because the dependents are fixed at generation time, each
//! static load has a stable DoD across dynamic instances — the property
//! the paper's predictive scheme (§4.2) exploits, and the knob that
//! makes Figures 1/3/7 reproducible.

use crate::profile::WorkloadProfile;
use crate::rng::Rng;
use crate::stream::StreamDesc;
use smtsim_isa::{
    ArchReg, BasicBlock, BlockId, BranchBehavior, OpClass, Program, RegClass, StaticInst, StreamId,
};

/// Register conventions used by generated programs.
mod regs {
    /// General-purpose integer pool: `r1..=r25`.
    pub const INT_POOL: (u8, u8) = (1, 25);
    /// Chase pointers: `r26`, `r27`.
    pub const CHASE: [u8; 2] = [26, 27];
    /// Loop induction register.
    pub const INDUCTION: u8 = 29;
    /// Base/frame register (written once per segment, usually ready).
    pub const BASE: u8 = 30;
    /// FP pool: `f1..=f30`.
    pub const FP_POOL: (u8, u8) = (1, 30);
}

/// Stream table indices (fixed layout; see [`build`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WellKnownStream {
    /// Cache-resident store target.
    HotStore = 0,
    /// Cache-resident load region.
    HotLoad = 1,
    /// L2-missing streaming (strided) region.
    MissStride = 2,
    /// L2-missing independent random region.
    MissRandom = 3,
    /// L2-missing pointer-chase region #0.
    Chase0 = 4,
    /// L2-missing pointer-chase region #1.
    Chase1 = 5,
    /// Tiny stack-like region shared by stores *and* loads: the source
    /// of store-to-load forwarding traffic.
    Stack = 6,
}

/// A generated workload: the program, its stream descriptors and
/// generation statistics.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The source profile.
    pub profile: WorkloadProfile,
    /// The synthesized static program.
    pub program: Program,
    /// Stream descriptor table indexed by [`StreamId`].
    pub streams: Vec<StreamDesc>,
    /// Static loads bound to L2-missing streams.
    pub static_missing_loads: usize,
    /// All static loads.
    pub static_loads: usize,
    /// Sum of statically assigned DoD over missing loads (for tests).
    pub static_missing_dod: u64,
}

impl Workload {
    /// Convenience: generate the workload for a named SPEC benchmark.
    pub fn spec(name: &str, seed: u64, pc_base: u64, data_base: u64) -> Workload {
        build(&crate::spec::profile(name), seed, pc_base, data_base)
    }
}

/// Obligation to emit instructions dependent on an earlier load.
struct Obligation {
    /// Register currently carrying the dependence (load dst, or the tail
    /// of a chain grown from it).
    src: ArchReg,
    /// Dependent instructions still to emit.
    remaining: u32,
    /// Instructions to let pass before the next dependent is eligible
    /// (spreads the shadow; see `WorkloadProfile::dod_gap`).
    ready_in: u32,
    /// Mean gap re-sampled after each emitted dependent.
    gap: f64,
}

struct Gen {
    p: WorkloadProfile,
    rng: Rng,
    /// Taint per flat arch register index: true if the value is a
    /// descendant of a load and must not feed "independent" work.
    taint: [bool; ArchReg::FLAT_COUNT],
    /// Ring cursors for destination allocation.
    next_int: u8,
    next_fp: u8,
    /// Recently written untainted registers, most recent last.
    recent_int: Vec<ArchReg>,
    recent_fp: Vec<ArchReg>,
    obligations: Vec<Obligation>,
    /// Per-mille accumulator that deterministically spaces missing
    /// loads so the static missing fraction tracks the profile even in
    /// small programs (a Bernoulli draw at ~5 % per load frequently
    /// yields *zero* missing loads in a few-hundred-instruction
    /// program, silently turning a memory-bound benchmark CPU-bound).
    miss_acc: u32,
    stats_missing_loads: usize,
    stats_loads: usize,
    stats_missing_dod: u64,
}

impl Gen {
    fn new(p: &WorkloadProfile, rng: Rng) -> Self {
        Gen {
            p: p.clone(),
            rng,
            taint: [false; ArchReg::FLAT_COUNT],
            next_int: regs::INT_POOL.0,
            next_fp: regs::FP_POOL.0,
            recent_int: vec![ArchReg::int(regs::BASE)],
            recent_fp: Vec::new(),
            obligations: Vec::new(),
            miss_acc: 500,
            stats_missing_loads: 0,
            stats_loads: 0,
            stats_missing_dod: 0,
        }
    }

    /// Picks a fresh destination register from the pool, skipping
    /// registers that currently carry a live dependence obligation
    /// (overwriting those would break the DoD chain).
    fn fresh(&mut self, class: RegClass) -> ArchReg {
        for _ in 0..64 {
            let r = match class {
                RegClass::Int => {
                    let r = ArchReg::int(self.next_int);
                    self.next_int = if self.next_int >= regs::INT_POOL.1 {
                        regs::INT_POOL.0
                    } else {
                        self.next_int + 1
                    };
                    r
                }
                RegClass::Fp => {
                    let r = ArchReg::fp(self.next_fp);
                    self.next_fp = if self.next_fp >= regs::FP_POOL.1 {
                        regs::FP_POOL.0
                    } else {
                        self.next_fp + 1
                    };
                    r
                }
            };
            if !self.obligations.iter().any(|o| o.src == r) {
                return r;
            }
        }
        // Pathological: every pool register is an obligation source.
        // Drop the oldest obligation and reuse its register.
        let o = self.obligations.remove(0);
        o.src
    }

    /// Records `r` as written by an *independent* instruction.
    fn wrote_independent(&mut self, r: ArchReg) {
        self.taint[r.flat_index()] = false;
        let recent = match r.class() {
            RegClass::Int => &mut self.recent_int,
            RegClass::Fp => &mut self.recent_fp,
        };
        recent.retain(|&x| x != r);
        recent.push(r);
        if recent.len() > 8 {
            recent.remove(0);
        }
    }

    /// Records `r` as written by a load-dependent instruction.
    fn wrote_tainted(&mut self, r: ArchReg) {
        self.taint[r.flat_index()] = true;
        self.recent_int.retain(|&x| x != r);
        self.recent_fp.retain(|&x| x != r);
    }

    /// A recently written untainted register of `class`, if any.
    fn recent_untainted(&mut self, class: RegClass) -> Option<ArchReg> {
        let recent = match class {
            RegClass::Int => &self.recent_int,
            RegClass::Fp => &self.recent_fp,
        };
        let candidates: Vec<ArchReg> = recent
            .iter()
            .copied()
            .filter(|r| !self.taint[r.flat_index()])
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.below(candidates.len() as u64) as usize])
        }
    }

    /// Emits one body instruction into `out`.
    fn emit_body_inst(&mut self, out: &mut Vec<StaticInst>) {
        // Every emitted instruction lets pending dependence shadows
        // advance toward eligibility.
        for o in &mut self.obligations {
            o.ready_in = o.ready_in.saturating_sub(1);
        }
        // Eligible dependents are emitted with high priority: the
        // *shape* of the shadow is governed by the sampled gaps, not by
        // this draw.
        if self.obligations.iter().any(|o| o.ready_in == 0) && self.rng.chance_pm(800) {
            self.emit_dependent(out);
            return;
        }
        let p = self.p.clone();
        let non_branch = 1000 - p.branch_frac_pm as u32;
        let w_load = p.load_frac_pm as u32;
        let w_store = p.store_frac_pm as u32;
        let w_comp = non_branch.saturating_sub(w_load + w_store).max(1);
        match self.rng.weighted(&[w_load, w_store, w_comp]) {
            0 => self.emit_load(out),
            1 => self.emit_store(out),
            _ => self.emit_compute(out),
        }
    }

    fn emit_dependent(&mut self, out: &mut Vec<StaticInst>) {
        let eligible: Vec<usize> = self
            .obligations
            .iter()
            .enumerate()
            .filter(|(_, o)| o.ready_in == 0)
            .map(|(i, _)| i)
            .collect();
        let i = eligible[self.rng.below(eligible.len() as u64) as usize];
        let src = self.obligations[i].src;
        let class = if src.class() == RegClass::Fp || self.rng.chance_pm(self.p.fp_frac_pm) {
            // Dependents of FP values stay FP; integer values may feed FP.
            if src.class() == RegClass::Fp {
                RegClass::Fp
            } else {
                RegClass::Int
            }
        } else {
            RegClass::Int
        };
        let dst = self.fresh(class);
        let op = match class {
            RegClass::Int => OpClass::IntAlu,
            RegClass::Fp => OpClass::FpAdd,
        };
        let extra = self.recent_untainted(class);
        out.push(StaticInst::compute(op, dst, [Some(src), extra]));
        self.wrote_tainted(dst);
        let chain = self.rng.chance_pm(self.p.chain_frac_pm);
        let gap = self.obligations[i].gap;
        let next_gap = self
            .rng
            .geometric(gap, (gap as u32).saturating_mul(6).max(4));
        let o = &mut self.obligations[i];
        o.remaining -= 1;
        o.ready_in = next_gap;
        if chain {
            o.src = dst;
        }
        if o.remaining == 0 {
            self.obligations.remove(i);
        }
    }

    fn emit_load(&mut self, out: &mut Vec<StaticInst>) {
        self.stats_loads += 1;
        self.miss_acc += self.p.miss_load_frac_pm as u32;
        let missing = self.miss_acc >= 1000;
        if missing {
            self.miss_acc -= 1000;
        }
        if missing && self.rng.chance_pm(self.p.chase_frac_pm) {
            // Pointer chase: rc = load [rc]; serialized misses.
            let which = self.rng.below(regs::CHASE.len() as u64) as usize;
            let rc = ArchReg::int(regs::CHASE[which]);
            let stream = StreamId(WellKnownStream::Chase0 as u32 + which as u32);
            out.push(StaticInst::load(rc, Some(rc), stream));
            self.stats_missing_loads += 1;
            // Pointer chases carry dense shadows: the dereferenced
            // record is consumed immediately and extensively.
            let dod = 12 + self.rng.geometric(8.0, 19);
            self.stats_missing_dod += dod as u64;
            self.obligations.push(Obligation {
                src: rc,
                remaining: dod,
                ready_in: 0,
                gap: 1.2,
            });
            // The chase register itself is a dependence carrier.
            self.taint[rc.flat_index()] = true;
            return;
        }
        let stream = if missing {
            if self.rng.chance_pm(self.p.stream_frac_pm) {
                StreamId(WellKnownStream::MissStride as u32)
            } else {
                StreamId(WellKnownStream::MissRandom as u32)
            }
        } else if self.rng.chance_pm(150) {
            StreamId(WellKnownStream::Stack as u32)
        } else {
            StreamId(WellKnownStream::HotLoad as u32)
        };
        let class = if self.rng.chance_pm(self.p.fp_frac_pm) {
            RegClass::Fp
        } else {
            RegClass::Int
        };
        let dst = self.fresh(class);
        // Address from a ready base register so the load issues promptly.
        let addr_src = Some(ArchReg::int(regs::BASE));
        out.push(StaticInst::load(dst, addr_src, stream));
        self.wrote_tainted(dst);
        // Cache-resident loads have short, tight use chains. Missing
        // loads are either *dense* (large DoD packed right behind the
        // load — the shadows the DoD threshold must reject) or carry
        // the profile's sparse, spread shadow (the MLP-friendly loads
        // the second level accelerates).
        let dense = missing && self.rng.chance_pm(self.p.dense_frac_pm);
        let (dod, gap, first) = if dense {
            (12 + self.rng.geometric(8.0, 19), 1.2, 0)
        } else if missing {
            (
                self.rng.geometric(self.p.dod_mean, self.p.dod_cap),
                self.p.dod_gap,
                self.rng.below(3) as u32,
            )
        } else {
            (self.rng.geometric(1.5, 8), 2.0, self.rng.below(3) as u32)
        };
        if missing {
            self.stats_missing_loads += 1;
            self.stats_missing_dod += dod as u64;
        }
        if dod > 0 {
            self.obligations.push(Obligation {
                src: dst,
                remaining: dod,
                ready_in: first,
                gap,
            });
        }
    }

    fn emit_store(&mut self, out: &mut Vec<StaticInst>) {
        // Stores target the hot region (stack/locals); data may be any
        // recent value, tainted or not.
        let class = if self.rng.chance_pm(self.p.fp_frac_pm) {
            RegClass::Fp
        } else {
            RegClass::Int
        };
        let data = self
            .recent_untainted(class)
            .unwrap_or(ArchReg::int(regs::BASE));
        let stream = if self.rng.chance_pm(400) {
            WellKnownStream::Stack
        } else {
            WellKnownStream::HotStore
        };
        out.push(StaticInst::store(
            Some(data),
            Some(ArchReg::int(regs::BASE)),
            StreamId(stream as u32),
        ));
    }

    fn emit_compute(&mut self, out: &mut Vec<StaticInst>) {
        let fp = self.rng.chance_pm(self.p.fp_frac_pm);
        let longlat = self.rng.chance_pm(self.p.longlat_frac_pm);
        let op = match (fp, longlat) {
            (false, false) => OpClass::IntAlu,
            (false, true) => {
                if self.rng.chance_pm(700) {
                    OpClass::IntMult
                } else {
                    OpClass::IntDiv
                }
            }
            (true, false) => {
                if self.rng.chance_pm(650) {
                    OpClass::FpAdd
                } else {
                    OpClass::FpMult
                }
            }
            (true, true) => {
                if self.rng.chance_pm(700) {
                    OpClass::FpDiv
                } else {
                    OpClass::FpSqrt
                }
            }
        };
        let class = if fp { RegClass::Fp } else { RegClass::Int };
        let dst = self.fresh(class);
        let s1 = self.recent_untainted(class);
        let s2 = if self.rng.chance_pm(600) {
            self.recent_untainted(class)
        } else {
            None
        };
        out.push(StaticInst::compute(op, dst, [s1, s2]));
        self.wrote_independent(dst);
    }
}

/// Generates a [`Workload`] from a profile.
///
/// * `seed` — generator seed; same `(profile, seed)` ⇒ identical program.
/// * `pc_base` — base address of the thread's code region.
/// * `data_base` — base address of the thread's data regions; the stream
///   table is laid out above it.
pub fn build(profile: &WorkloadProfile, seed: u64, pc_base: u64, data_base: u64) -> Workload {
    profile.validate().expect("invalid profile");
    let mut rng = Rng::new(seed ^ 0x5EED_F00D);
    let mut gen = Gen::new(profile, rng.split(1));

    // ---- Stream table (layout matches WellKnownStream) -----------------
    let line = 128u64; // L2 line size from Table 1
    let mut cursor = data_base;
    let mut alloc = |size: u64| {
        let base = cursor;
        // Keep regions line-aligned and padded apart.
        cursor += size + 4096;
        cursor = (cursor + line - 1) & !(line - 1);
        base
    };
    let hot_store = StreamDesc::Hot {
        base: alloc(profile.hot_footprint),
        footprint: profile.hot_footprint,
        stride: 8,
    };
    let hot_load = StreamDesc::Hot {
        base: alloc(profile.hot_footprint),
        footprint: profile.hot_footprint,
        stride: 16,
    };
    let miss_stride = StreamDesc::Strided {
        base: alloc(profile.footprint),
        stride: line,
        footprint: profile.footprint,
    };
    let miss_random = StreamDesc::Random {
        base: alloc(profile.footprint),
        footprint: profile.footprint,
    };
    let chase0 = StreamDesc::Chase {
        base: alloc(profile.footprint),
        footprint: profile.footprint,
        line,
    };
    let chase1 = StreamDesc::Chase {
        base: alloc(profile.footprint),
        footprint: profile.footprint,
        line,
    };
    // A single hot 8-byte slot written and re-read by nearby
    // instructions (a spill slot): loads from it forward from the
    // youngest in-flight store, exercising store-to-load forwarding.
    let stack = StreamDesc::Hot {
        base: alloc(4096),
        footprint: 8,
        stride: 0,
    };
    let streams = vec![
        hot_store,
        hot_load,
        miss_stride,
        miss_random,
        chase0,
        chase1,
        stack,
    ];

    // ---- Program ring ---------------------------------------------------
    // Per segment:   head [-> alt] -> tail --loop--> head, fall to next.
    //
    // Hardware front ends fetch PC+4 on the not-taken path, so every
    // fall-through edge must point at the *physically next* block; the
    // only non-sequential transfers are taken branches. The ring
    // therefore closes with a final block holding an unconditional jump
    // back to the entry.
    let mut blocks: Vec<BasicBlock> = Vec::new();
    // First pass: reserve block ids. Each segment occupies a fixed span
    // so targets are computable before bodies are generated.
    let seg_count = profile.num_segments;
    let diamond: Vec<bool> = (0..seg_count)
        .map(|_| {
            rng.chance_pm(if profile.branch_frac_pm > 80 {
                700
            } else {
                250
            })
        })
        .collect();
    let mut seg_start = Vec::with_capacity(seg_count);
    let mut next_id = 0u32;
    for &d in &diamond {
        seg_start.push(next_id);
        next_id += if d { 3 } else { 2 };
    }
    // The wrap-around jump block.
    let wrap_id = next_id;
    let total_blocks = next_id + 1;

    let body = |gen: &mut Gen, rng: &mut Rng, min: usize, max: usize| -> Vec<StaticInst> {
        let n = rng.range(min as u64, max as u64) as usize;
        let mut out = Vec::with_capacity(n + 2);
        while out.len() < n {
            gen.emit_body_inst(&mut out);
        }
        out
    };

    for s in 0..seg_count {
        let head_id = seg_start[s];
        // Fall-through chains are strictly sequential; the last
        // segment's tail falls into the wrap block.
        let (bmin, bmax) = profile.block_size;
        let trip = rng.range(
            (profile.avg_trip as u64 / 2).max(1),
            profile.avg_trip as u64 * 2,
        ) as u32;
        if diamond[s] {
            let alt_id = head_id + 1;
            let tail_id = head_id + 2;
            // head: body + biased branch that usually *skips* the alt
            // block (taken, branch_bias_pm) and rarely falls into it.
            let mut insts = body(&mut gen, &mut rng, bmin, bmax);
            let cond = gen
                .recent_untainted(RegClass::Int)
                .unwrap_or(ArchReg::int(regs::INDUCTION));
            insts.push(StaticInst::branch(
                Some(cond),
                BranchBehavior::Biased {
                    taken_pm: profile.branch_bias_pm,
                },
                BlockId(tail_id),
            ));
            blocks.push(BasicBlock::new(insts, BlockId(alt_id)));
            // alt: shorter body, falls (sequentially) into tail.
            let alt = body(&mut gen, &mut rng, bmin.max(2) / 2 + 1, bmax / 2 + 1);
            blocks.push(BasicBlock::new(alt, BlockId(tail_id)));
            // tail: body + induction + loop branch back to head.
            let mut tail = body(&mut gen, &mut rng, bmin, bmax);
            tail.push(StaticInst::compute(
                OpClass::IntAlu,
                ArchReg::int(regs::INDUCTION),
                [Some(ArchReg::int(regs::INDUCTION)), None],
            ));
            tail.push(StaticInst::branch(
                Some(ArchReg::int(regs::INDUCTION)),
                BranchBehavior::Loop { trip },
                BlockId(head_id),
            ));
            blocks.push(BasicBlock::new(tail, BlockId(tail_id + 1)));
        } else {
            let tail_id = head_id + 1;
            let insts = body(&mut gen, &mut rng, bmin, bmax);
            blocks.push(BasicBlock::new(insts, BlockId(tail_id)));
            let mut tail = body(&mut gen, &mut rng, bmin, bmax);
            tail.push(StaticInst::compute(
                OpClass::IntAlu,
                ArchReg::int(regs::INDUCTION),
                [Some(ArchReg::int(regs::INDUCTION)), None],
            ));
            tail.push(StaticInst::branch(
                Some(ArchReg::int(regs::INDUCTION)),
                BranchBehavior::Loop { trip },
                BlockId(head_id),
            ));
            blocks.push(BasicBlock::new(tail, BlockId(tail_id + 1)));
        }
    }
    // Wrap block: unconditional jump closing the ring. Its fall-through
    // is never taken (the branch is Always) but must be a valid id.
    blocks.push(BasicBlock::new(
        vec![StaticInst::branch(None, BranchBehavior::Always, BlockId(0))],
        BlockId(0),
    ));
    debug_assert_eq!(blocks.len() as u32, total_blocks);
    debug_assert_eq!(wrap_id + 1, total_blocks);
    // Front-end consistency: every fall-through edge except the wrap
    // block's is physically sequential.
    for (i, b) in blocks.iter().enumerate() {
        if (i as u32) < wrap_id {
            debug_assert_eq!(b.fallthrough.0, i as u32 + 1, "non-sequential fallthrough");
        }
    }

    let program = Program::new(profile.name, blocks, BlockId(0), pc_base);
    Workload {
        profile: profile.clone(),
        program,
        streams,
        static_missing_loads: gen.stats_missing_loads,
        static_loads: gen.stats_loads,
        static_missing_dod: gen.stats_missing_dod,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    fn wl() -> Workload {
        build(&WorkloadProfile::test_profile(), 7, 0x1000, 0x100_0000)
    }

    #[test]
    fn builds_and_validates() {
        let w = wl();
        assert!(w.program.num_blocks() >= 6);
        assert!(w.program.num_insts() > 30);
        assert_eq!(w.streams.len(), 7);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = wl();
        let b = wl();
        assert_eq!(a.program.num_insts(), b.program.num_insts());
        for (ia, ib) in a
            .program
            .iter_blocks()
            .flat_map(|(_, b)| b.insts.iter())
            .zip(b.program.iter_blocks().flat_map(|(_, b)| b.insts.iter()))
        {
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(&WorkloadProfile::test_profile(), 1, 0x1000, 0x100_0000);
        let b = build(&WorkloadProfile::test_profile(), 2, 0x1000, 0x100_0000);
        let insts = |w: &Workload| {
            w.program
                .iter_blocks()
                .flat_map(|(_, b)| b.insts.clone())
                .collect::<Vec<_>>()
        };
        assert_ne!(insts(&a), insts(&b));
    }

    #[test]
    fn has_missing_loads() {
        let w = wl();
        assert!(w.static_loads > 0);
        assert!(w.static_missing_loads > 0);
        assert!(w.static_missing_loads < w.static_loads);
    }

    #[test]
    fn every_block_terminates_correctly() {
        let w = wl();
        for (_, b) in w.program.iter_blocks() {
            // Constructor invariants hold; additionally check only tail
            // blocks carry loop branches.
            if let Some(t) = b.terminator() {
                assert!(t.op.is_branch());
            }
        }
    }

    #[test]
    fn streams_referenced_exist() {
        let w = wl();
        for (_, b) in w.program.iter_blocks() {
            for inst in &b.insts {
                if let Some(s) = inst.stream() {
                    assert!((s.0 as usize) < w.streams.len());
                }
            }
        }
    }

    #[test]
    fn chase_loads_self_depend() {
        // A chase-heavy profile must contain self-dependent chase loads
        // under at least most seeds; each one must read its own dest.
        let mut profile = WorkloadProfile::test_profile();
        profile.miss_load_frac_pm = 400;
        profile.chase_frac_pm = 800;
        let mut found = 0;
        for seed in 0..4 {
            let w = build(&profile, seed, 0x1000, 0x100_0000);
            for (_, b) in w.program.iter_blocks() {
                for inst in &b.insts {
                    if let Some(s) = inst.stream() {
                        if w.streams[s.0 as usize].is_chase() && inst.op == OpClass::Load {
                            assert_eq!(inst.srcs[0], inst.dst, "chase load must self-depend");
                            found += 1;
                        }
                    }
                }
            }
        }
        assert!(found > 0, "chase-heavy profile must generate chase loads");
    }

    #[test]
    fn spec_workloads_build() {
        for name in crate::spec::BENCHMARKS {
            let w = Workload::spec(name, 3, 0x1000, 0x100_0000);
            assert!(w.program.num_insts() > 20, "{name}");
        }
    }

    #[test]
    fn data_regions_disjoint() {
        let w = wl();
        let mut regions: Vec<(u64, u64)> = w
            .streams
            .iter()
            .map(|s| match *s {
                StreamDesc::Strided {
                    base, footprint, ..
                }
                | StreamDesc::Chase {
                    base, footprint, ..
                }
                | StreamDesc::Random { base, footprint }
                | StreamDesc::Hot {
                    base, footprint, ..
                } => (base, base + footprint),
            })
            .collect();
        regions.sort();
        for pair in regions.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlapping regions {pair:?}");
        }
    }
}
