//! # smtsim-workload
//!
//! Synthetic SPEC CPU2000-like workloads for the two-level-ROB
//! reproduction (Loew & Ponomarev, ICPP 2008).
//!
//! The paper runs precompiled SPEC 2000 Alpha binaries under M-Sim. This
//! crate substitutes a *generator*: for every benchmark named in the
//! paper's Table 2 it synthesizes a static [`Program`]
//! (`smtsim-isa`) whose timing-relevant characteristics — instruction
//! mix, L2-miss frequency and overlap structure, per-load dependent
//! counts (the paper's **Degree of Dependence**), branch predictability
//! and loop structure — are calibrated to the benchmark's class. A
//! deterministic functional [`Executor`] turns the program into the
//! dynamic trace the pipeline consumes, including fabricated wrong-path
//! instructions after branch mispredictions.
//!
//! Everything is reproducible: the same `(profile, seed)` yields the
//! same program and the same trace on any platform.
//!
//! ```
//! use smtsim_workload::{Workload, Executor};
//! use std::sync::Arc;
//!
//! let wl = Arc::new(Workload::spec("art", 42, 0x1_0000, 0x1000_0000));
//! let mut exec = Executor::new(wl, 7);
//! let first = exec.next_inst();
//! assert_eq!(first.seq, 0);
//! ```
//!
//! [`Program`]: smtsim_isa::Program

pub mod builder;
pub mod exec;
pub mod mix;
pub mod profile;
pub mod rng;
pub mod spec;
pub mod stream;

pub use builder::{build, WellKnownStream, Workload};
pub use exec::Executor;
pub use mix::{mix, paper_mixes, Mix, MixClass};
pub use profile::{IlpClass, WorkloadProfile};
pub use rng::Rng;
pub use stream::{StreamDesc, StreamState};
