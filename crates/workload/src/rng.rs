//! Deterministic, platform-independent random number generation.
//!
//! Everything in the workload generator flows through [`Rng`], a
//! SplitMix64 generator. We implement it locally (rather than pulling in
//! an external crate) so that a `(profile, seed)` pair produces the
//! *identical* program and dynamic trace on every platform and toolchain
//! forever — reproducibility of the paper's experiments depends on it.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA'14).
///
/// Passes BigCrush when used as a 64-bit generator; more than adequate
/// for workload synthesis, and trivially seedable/splittable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams.
    pub fn new(seed: u64) -> Self {
        Rng {
            // Avoid the all-zeros fixed point pathologies by pre-mixing.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives an independent child generator; used to give each
    /// subsystem (block sizes, branch outcomes, address scrambles...)
    /// its own stream so adding draws in one place does not perturb
    /// the others.
    pub fn split(&mut self, tag: u64) -> Rng {
        let s = self.next_u64() ^ tag.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        Rng::new(s)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (slightly biased for huge
        // n, irrelevant at our ranges).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` inclusive.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `pm / 1000`.
    #[inline]
    pub fn chance_pm(&mut self, pm: u16) -> bool {
        self.below(1000) < pm as u64
    }

    /// Geometric-ish draw with the given mean, clamped to `[0, cap]`.
    ///
    /// Used for Degree-of-Dependence sampling: the paper's Figure 1
    /// shows a strongly right-skewed dependent count distribution, which
    /// a geometric reproduces.
    pub fn geometric(&mut self, mean: f64, cap: u32) -> u32 {
        if mean <= 0.0 {
            return 0;
        }
        // Inverse-CDF sampling of Geometric(p) with p = 1/(1+mean).
        let p = 1.0 / (1.0 + mean);
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
        (v as u32).min(cap)
    }

    /// Picks an index according to integer weights. Returns 0 if all
    /// weights are zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        if total == 0 {
            return 0;
        }
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w as u64 {
                return i;
            }
            x -= w as u64;
        }
        weights.len() - 1
    }
}

/// Stateless mixing hash used for per-instance branch outcomes:
/// `hash(branch_id, instance) < threshold`. Deterministic regardless of
/// how many other random draws happened.
#[inline]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(32))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_inclusive_bounds_hit() {
        let mut r = Rng::new(9);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let v = r.range(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_pm_extremes() {
        let mut r = Rng::new(11);
        for _ in 0..100 {
            assert!(!r.chance_pm(0));
            assert!(r.chance_pm(1000));
        }
    }

    #[test]
    fn chance_pm_roughly_calibrated() {
        let mut r = Rng::new(13);
        let hits = (0..100_000).filter(|_| r.chance_pm(250)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn geometric_mean_roughly_right() {
        let mut r = Rng::new(17);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.geometric(4.0, 1000) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((3.5..4.5).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn geometric_cap_respected() {
        let mut r = Rng::new(19);
        for _ in 0..10_000 {
            assert!(r.geometric(50.0, 8) <= 8);
        }
    }

    #[test]
    fn geometric_zero_mean() {
        let mut r = Rng::new(21);
        assert_eq!(r.geometric(0.0, 10), 0);
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::new(23);
        for _ in 0..1000 {
            let i = r.weighted(&[0, 5, 0, 3]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn weighted_all_zero_returns_zero() {
        let mut r = Rng::new(25);
        assert_eq!(r.weighted(&[0, 0, 0]), 0);
    }

    #[test]
    fn weighted_distribution_sane() {
        let mut r = Rng::new(27);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[r.weighted(&[900, 100])] += 1;
        }
        assert!(counts[0] > 8_500 && counts[1] > 500, "{counts:?}");
    }

    #[test]
    fn split_streams_independent() {
        let mut parent = Rng::new(31);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mix64_is_pure() {
        assert_eq!(mix64(1, 2), mix64(1, 2));
        assert_ne!(mix64(1, 2), mix64(2, 1));
    }
}
