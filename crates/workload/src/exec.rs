//! Functional execution of a synthetic program: walks the CFG and emits
//! the dynamic instruction stream the timing pipeline consumes.
//!
//! The executor resolves, deterministically:
//! * effective addresses — by advancing per-stream [`StreamState`]s;
//! * branch outcomes — loop branches from per-site trip counters, biased
//!   branches from a pure hash of `(site, instance)` so outcomes do not
//!   depend on unrelated state;
//! * next-PC — giving the pipeline the correct-path trace.
//!
//! It also fabricates *wrong-path* instructions: after a misprediction
//! the pipeline keeps fetching down the predicted path; those
//! instructions must exist (they occupy fetch/rename/IQ/ROB resources
//! until squashed) but must not perturb committed stream or branch
//! state. [`Executor::wrong_path`] serves them from the static program
//! without touching any state.

use crate::builder::Workload;
use crate::rng::mix64;
use crate::stream::StreamState;
use smtsim_isa::{BlockId, BranchBehavior, DynInst, InstRole, Program, StaticInst};
use std::sync::Arc;

/// Per-branch-site dynamic state. Sites are identified by the block id
/// (a branch can only terminate a block).
#[derive(Clone, Debug, Default)]
struct SiteState {
    /// Loop branches: iterations completed in the current loop entry.
    loop_count: u32,
    /// Biased branches: dynamic instance counter.
    instances: u64,
}

/// Functional executor over one workload. Cloning an executor snapshots
/// its entire architectural state (cheap: a few vectors of counters).
#[derive(Clone, Debug)]
pub struct Executor {
    wl: Arc<Workload>,
    seed: u64,
    block: BlockId,
    idx: usize,
    seq: u64,
    streams: Vec<StreamState>,
    sites: Vec<SiteState>,
}

impl Executor {
    /// Creates an executor positioned at the program entry.
    pub fn new(wl: Arc<Workload>, seed: u64) -> Self {
        let streams = vec![StreamState::default(); wl.streams.len()];
        let sites = vec![SiteState::default(); wl.program.num_blocks()];
        Executor {
            block: wl.program.entry(),
            idx: 0,
            seq: 0,
            streams,
            sites,
            seed,
            wl,
        }
    }

    /// The underlying workload.
    pub fn workload(&self) -> &Workload {
        &self.wl
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.wl.program
    }

    /// Number of correct-path instructions produced so far.
    pub fn produced(&self) -> u64 {
        self.seq
    }

    /// Produces the next correct-path dynamic instruction. The stream is
    /// endless by construction.
    pub fn next_inst(&mut self) -> DynInst {
        let program = &self.wl.program;
        let block = self.block;
        let idx = self.idx;
        let st: &StaticInst = &program.block(block).insts[idx];
        let pc = program.pc_of(block, idx);

        let mut mem_addr = 0u64;
        let mut taken = false;

        // Resolve role-specific state.
        match st.role {
            InstRole::Mem { stream } => {
                let desc = &self.wl.streams[stream.0 as usize];
                mem_addr = self.streams[stream.0 as usize].next(desc);
            }
            InstRole::Branch { behavior, .. } => {
                let site = &mut self.sites[block.0 as usize];
                taken = match behavior {
                    BranchBehavior::Always => true,
                    BranchBehavior::Loop { trip } => {
                        site.loop_count += 1;
                        if site.loop_count < trip {
                            true
                        } else {
                            site.loop_count = 0;
                            false
                        }
                    }
                    BranchBehavior::Biased { taken_pm } => {
                        let inst = site.instances;
                        site.instances += 1;
                        mix64(self.seed ^ (block.0 as u64) << 17, inst) % 1000 < taken_pm as u64
                    }
                };
            }
            InstRole::None => {}
        }

        // Compute the successor position.
        let (nb, nidx) = if taken {
            let (_, target) = st.branch_info().expect("taken implies branch");
            (target, 0)
        } else if idx + 1 < program.block(block).insts.len() {
            (block, idx + 1)
        } else {
            (program.block(block).fallthrough, 0)
        };
        let next_pc = program.pc_of(nb, nidx);
        self.block = nb;
        self.idx = nidx;

        let seq = self.seq;
        self.seq += 1;
        DynInst {
            pc,
            seq,
            op: st.op,
            dst: st.dst,
            srcs: st.srcs,
            mem_addr,
            taken,
            next_pc,
        }
    }

    /// Fabricates a wrong-path instruction at `pc` without perturbing
    /// committed state. `wp_counter` decorrelates successive wrong-path
    /// addresses. Returns `None` if `pc` is outside the program (the
    /// front end then stalls, as a real machine fetching unmapped code
    /// would fault/stall).
    ///
    /// Branch "outcomes" on the wrong path follow the static bias (loops
    /// taken, biased branches their majority direction); the pipeline
    /// only uses them to pick the next wrong-path fetch PC — they are
    /// never used to train predictors or update state.
    pub fn wrong_path(&self, pc: u64, wp_counter: u64) -> Option<DynInst> {
        let program = &self.wl.program;
        let (block, idx) = program.locate(pc)?;
        let st: &StaticInst = &program.block(block).insts[idx];

        let mut mem_addr = 0u64;
        let mut taken = false;
        match st.role {
            InstRole::Mem { stream } => {
                let desc = &self.wl.streams[stream.0 as usize];
                mem_addr = self.streams[stream.0 as usize].wrong_path_addr(desc, wp_counter);
            }
            InstRole::Branch { behavior, .. } => {
                taken = match behavior {
                    BranchBehavior::Always => true,
                    BranchBehavior::Loop { .. } => true,
                    BranchBehavior::Biased { taken_pm } => taken_pm >= 500,
                };
            }
            InstRole::None => {}
        }
        let (nb, nidx) = if taken {
            let (_, target) = st.branch_info().expect("taken implies branch");
            (target, 0)
        } else if idx + 1 < program.block(block).insts.len() {
            (block, idx + 1)
        } else {
            (program.block(block).fallthrough, 0)
        };
        Some(DynInst {
            pc,
            seq: u64::MAX,
            op: st.op,
            dst: st.dst,
            srcs: st.srcs,
            mem_addr,
            taken,
            next_pc: program.pc_of(nb, nidx),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::profile::WorkloadProfile;
    use smtsim_isa::OpClass;

    fn executor(seed: u64) -> Executor {
        let wl = Arc::new(build(
            &WorkloadProfile::test_profile(),
            7,
            0x1000,
            0x100_0000,
        ));
        Executor::new(wl, seed)
    }

    #[test]
    fn produces_an_endless_consistent_stream() {
        let mut e = executor(1);
        let mut last_next_pc = None;
        for _ in 0..10_000 {
            let d = e.next_inst();
            if let Some(expect) = last_next_pc {
                assert_eq!(d.pc, expect, "trace must follow its own next_pc");
            }
            last_next_pc = Some(d.next_pc);
        }
        assert_eq!(e.produced(), 10_000);
    }

    #[test]
    fn deterministic_replay() {
        let mut a = executor(3);
        let mut b = executor(3);
        for _ in 0..5_000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn clone_snapshots_state() {
        let mut a = executor(5);
        for _ in 0..1000 {
            a.next_inst();
        }
        let mut b = a.clone();
        for _ in 0..1000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        let mut e = executor(7);
        let n = 50_000;
        let mut loads = 0usize;
        let mut stores = 0usize;
        let mut branches = 0usize;
        for _ in 0..n {
            let d = e.next_inst();
            match d.op {
                OpClass::Load => loads += 1,
                OpClass::Store => stores += 1,
                op if op.is_branch() => branches += 1,
                _ => {}
            }
        }
        let p = WorkloadProfile::test_profile();
        let lf = loads as f64 / n as f64 * 1000.0;
        // Loads land in the profile's neighbourhood. Dependence-shadow
        // instructions (emitted per load) dilute the raw mix, so the
        // band is wide: the *ordering* across profiles is what matters.
        assert!(
            lf > p.load_frac_pm as f64 * 0.3 && lf < p.load_frac_pm as f64 * 1.5,
            "load rate {lf} vs {}",
            p.load_frac_pm
        );
        assert!(stores > 0 && branches > 0);
    }

    #[test]
    fn loop_branches_mostly_taken() {
        let mut e = executor(9);
        let (mut taken, mut total) = (0u64, 0u64);
        for _ in 0..50_000 {
            let d = e.next_inst();
            if d.op.is_branch() {
                total += 1;
                taken += d.taken as u64;
            }
        }
        assert!(total > 100);
        // avg_trip = 16 ⇒ back-edges are taken ~15/16 of the time;
        // diamond branches are biased. Overall taken rate must be high
        // but not 100%.
        let rate = taken as f64 / total as f64;
        assert!((0.5..1.0).contains(&rate), "taken rate {rate}");
    }

    #[test]
    fn memory_addresses_nonzero_and_mixed() {
        let mut e = executor(11);
        let mut addrs = Vec::new();
        for _ in 0..20_000 {
            let d = e.next_inst();
            if d.op.is_mem() {
                assert!(d.mem_addr >= 0x100_0000, "addr {:#x}", d.mem_addr);
                addrs.push(d.mem_addr);
            }
        }
        // Some accesses must hit the large (missing) regions.
        let big = addrs.iter().filter(|&&a| a > 0x200_0000).count();
        assert!(big > 0, "expected accesses beyond the hot region");
    }

    #[test]
    fn wrong_path_is_pure() {
        let mut e = executor(13);
        for _ in 0..100 {
            e.next_inst();
        }
        let snapshot_seq = e.produced();
        let pc = e.program().pc_of(e.program().entry(), 0);
        let a = e.wrong_path(pc, 0);
        let b = e.wrong_path(pc, 0);
        assert_eq!(a, b);
        assert!(a.is_some());
        assert_eq!(e.produced(), snapshot_seq);
    }

    #[test]
    fn wrong_path_outside_program_is_none() {
        let e = executor(15);
        assert_eq!(e.wrong_path(0x2, 0), None);
        assert_eq!(e.wrong_path(0xFFFF_FFFF_0000, 0), None);
    }

    #[test]
    fn wrong_path_instructions_marked() {
        let e = executor(17);
        let pc = e.program().pc_of(e.program().entry(), 0);
        let d = e.wrong_path(pc, 3).unwrap();
        assert_eq!(d.seq, u64::MAX);
    }

    #[test]
    fn biased_outcomes_differ_across_seeds() {
        // Branch outcomes must depend on the executor seed (two threads
        // running the same binary don't see identical data).
        let mut a = executor(100);
        let mut b = executor(200);
        let mut diffs = 0;
        for _ in 0..20_000 {
            let da = a.next_inst();
            let db = b.next_inst();
            if da.op.is_branch() && db.op.is_branch() && da.pc == db.pc && da.taken != db.taken {
                diffs += 1;
            }
        }
        assert!(diffs > 0, "seeds should perturb biased branch outcomes");
    }
}
