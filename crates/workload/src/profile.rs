//! Workload profiles: the tunable knobs from which a synthetic
//! SPEC-2000-like program is generated.
//!
//! A profile captures what the timing model can observe about a
//! benchmark: instruction mix, dependence structure (including the
//! paper's Degree-of-Dependence distribution per load), memory footprint
//! and access-pattern mix, and branch behaviour. `spec.rs` instantiates
//! one profile per benchmark named in the paper's Table 2.

/// Single-thread ILP classification used by the paper to assemble the
/// Table 2 mixes ("low ILP benchmarks are memory bound and the high ILP
/// benchmarks are execution bound").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IlpClass {
    /// Memory-bound: frequent L2 misses dominate execution time.
    Low,
    /// Intermediate.
    Mid,
    /// Execution-bound: cache-resident, limited by FUs/dependences.
    High,
}

/// All knobs of the synthetic program generator.
///
/// Fractions are in per-mille (`pm`) of the relevant population. The
/// instruction mix fractions (`load/store/branch`) are of all dynamic
/// instructions; the rest of the budget is computational ops split
/// between integer and floating point by `fp_frac_pm`.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (matches the paper's Table 2 entries).
    pub name: &'static str,
    /// Paper classification.
    pub class: IlpClass,
    /// Loads per 1000 instructions.
    pub load_frac_pm: u16,
    /// Stores per 1000 instructions.
    pub store_frac_pm: u16,
    /// Branches per 1000 instructions (conditional; loop back-edges are
    /// additional and implied by block structure).
    pub branch_frac_pm: u16,
    /// Of computational ops, the floating-point fraction.
    pub fp_frac_pm: u16,
    /// Of computational ops, the long-latency (div/sqrt/mult) fraction.
    pub longlat_frac_pm: u16,
    /// Mean Degree of Dependence per *missing* load: the number of
    /// instructions the generator makes (transitively) dependent on the
    /// load in its shadow. Geometric-distributed, matching the paper's
    /// right-skewed Figure 1.
    pub dod_mean: f64,
    /// Cap applied to sampled DoD values.
    pub dod_cap: u32,
    /// Of missing loads, the fraction with a *dense* dependence shadow:
    /// DoD far above any useful threshold, packed immediately behind
    /// the load (pointer-dereference-then-use-everything code). These
    /// are the loads whose shadows clog the shared issue queue when
    /// naively given a large window — the paper's Baseline_128
    /// pathology — and which the DoD threshold exists to reject.
    /// Chase loads are always dense in addition to this fraction.
    pub dense_frac_pm: u16,
    /// Mean instruction gap between a load's consecutive dependents.
    /// Small gaps cluster the dependence shadow right behind the load;
    /// large gaps spread it deep, so bigger instruction windows capture
    /// more dependents (the growth the paper's Figures 3/7 show) and
    /// deep windows hold issue-queue slots for the full miss latency
    /// (the Baseline_128 pathology of §5.2).
    pub dod_gap: f64,
    /// Of a load's dependents, the fraction generated as a serial chain
    /// (the rest fan out directly from the load's result).
    pub chain_frac_pm: u16,
    /// Fraction of loads bound to L2-missing streams.
    pub miss_load_frac_pm: u16,
    /// Of missing loads, the fraction that pointer-chase (address
    /// depends on the previous chase result, serializing misses).
    pub chase_frac_pm: u16,
    /// Of missing non-chase loads, the fraction using strided streaming
    /// (the rest use independent random lines).
    pub stream_frac_pm: u16,
    /// Size in bytes of the L2-missing data structure.
    pub footprint: u64,
    /// Size in bytes of the cache-resident hot region.
    pub hot_footprint: u64,
    /// Taken-probability bias of non-loop conditional branches
    /// (per-mille). Heavily biased branches are what make the paper's
    /// last-value DoD predictor accurate.
    pub branch_bias_pm: u16,
    /// Mean trip count of inner loops.
    pub avg_trip: u32,
    /// Inclusive range of body-block sizes (instructions).
    pub block_size: (usize, usize),
    /// Number of loop segments in the program's endless ring.
    pub num_segments: usize,
}

impl WorkloadProfile {
    /// A small, neutral profile for unit tests: moderately memory-bound,
    /// small footprints so tests run fast.
    pub fn test_profile() -> Self {
        WorkloadProfile {
            name: "test",
            class: IlpClass::Mid,
            load_frac_pm: 250,
            store_frac_pm: 100,
            branch_frac_pm: 100,
            fp_frac_pm: 300,
            longlat_frac_pm: 50,
            dod_mean: 6.0,
            dod_cap: 24,
            dense_frac_pm: 250,
            dod_gap: 6.0,
            chain_frac_pm: 500,
            miss_load_frac_pm: 200,
            chase_frac_pm: 300,
            stream_frac_pm: 500,
            footprint: 16 << 20,
            hot_footprint: 8 << 10,
            branch_bias_pm: 900,
            avg_trip: 16,
            block_size: (6, 14),
            num_segments: 3,
        }
    }

    /// Sanity-checks internal consistency; used by generator and tests.
    pub fn validate(&self) -> Result<(), String> {
        let mix = self.load_frac_pm as u32 + self.store_frac_pm as u32 + self.branch_frac_pm as u32;
        if mix >= 1000 {
            return Err(format!("{}: instruction mix exceeds 1000 pm", self.name));
        }
        for (what, pm) in [
            ("dense", self.dense_frac_pm),
            ("fp", self.fp_frac_pm),
            ("longlat", self.longlat_frac_pm),
            ("chain", self.chain_frac_pm),
            ("miss_load", self.miss_load_frac_pm),
            ("chase", self.chase_frac_pm),
            ("stream", self.stream_frac_pm),
            ("branch_bias", self.branch_bias_pm),
        ] {
            if pm > 1000 {
                return Err(format!("{}: {what} fraction > 1000 pm", self.name));
            }
        }
        if self.block_size.0 == 0 || self.block_size.0 > self.block_size.1 {
            return Err(format!("{}: bad block size range", self.name));
        }
        if self.num_segments == 0 {
            return Err(format!("{}: needs at least one segment", self.name));
        }
        if !self.footprint.is_power_of_two() {
            return Err(format!("{}: footprint must be a power of two", self.name));
        }
        if self.avg_trip == 0 {
            return Err(format!("{}: avg_trip must be >= 1", self.name));
        }
        if self.dod_gap.is_nan() || self.dod_gap < 0.0 {
            return Err(format!("{}: dod_gap must be non-negative", self.name));
        }
        Ok(())
    }

    /// Expected L2 misses per 1000 instructions implied by the profile
    /// (upper bound; chase streams revisit lines only after a full
    /// period). Useful for calibration tests.
    pub fn expected_miss_rate_pm(&self) -> f64 {
        self.load_frac_pm as f64 * self.miss_load_frac_pm as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_profile_is_valid() {
        WorkloadProfile::test_profile().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_mix() {
        let mut p = WorkloadProfile::test_profile();
        p.load_frac_pm = 600;
        p.store_frac_pm = 300;
        p.branch_frac_pm = 200;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_blocks() {
        let mut p = WorkloadProfile::test_profile();
        p.block_size = (10, 4);
        assert!(p.validate().is_err());
        p.block_size = (0, 4);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_pow2_footprint() {
        let mut p = WorkloadProfile::test_profile();
        p.footprint = 3 << 20;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_overrange_pm() {
        let mut p = WorkloadProfile::test_profile();
        p.chase_frac_pm = 1500;
        assert!(p.validate().is_err());
    }

    #[test]
    fn miss_rate_estimate() {
        let p = WorkloadProfile::test_profile();
        let pm = p.expected_miss_rate_pm();
        assert!((pm - 50.0).abs() < 1e-9, "pm = {pm}");
    }
}
