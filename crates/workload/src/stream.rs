//! Memory access-stream descriptors and their deterministic state.
//!
//! Each static load/store in a synthetic program is permanently bound to
//! one stream (via [`smtsim_isa::StreamId`]). The stream determines the
//! sequence of effective addresses the instruction produces across its
//! dynamic instances — and therefore its cache behaviour, which is what
//! the paper's mechanism keys off (L2 misses).

use crate::rng::mix64;

/// Static description of an access stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamDesc {
    /// Sequential/strided sweep over a region, wrapping at the end.
    /// With `stride` ≥ the L2 line size and `footprint` ≫ the L2
    /// capacity, every access touches a new uncached line — the
    /// streaming behaviour of `art`/`swim`-like codes.
    Strided {
        /// First byte of the region.
        base: u64,
        /// Bytes between consecutive accesses.
        stride: u64,
        /// Region size in bytes (must be a multiple of `stride`).
        footprint: u64,
    },
    /// Pointer-chase over a scattered permutation of lines: consecutive
    /// addresses are data-dependent in the program (the chase load feeds
    /// its own next address), serializing misses — `mcf`-like.
    Chase {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes; `footprint / line` must be a power of
        /// two.
        footprint: u64,
        /// Line granularity of the chase.
        line: u64,
    },
    /// Uniformly pseudo-random line within the region; independent
    /// accesses, so misses can overlap (memory-level parallelism).
    Random {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes (power of two).
        footprint: u64,
    },
    /// Small cache-resident region cycled with a small stride — stack
    /// frames and hot arrays; essentially always hits.
    Hot {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
        /// Bytes between consecutive accesses.
        stride: u64,
    },
}

impl StreamDesc {
    /// Whether this stream is intended to miss the last-level cache
    /// (used by generator bookkeeping and tests; the *actual* behaviour
    /// is determined by the cache model).
    pub fn is_missing(&self, l2_capacity: u64) -> bool {
        match *self {
            StreamDesc::Strided { footprint, .. }
            | StreamDesc::Chase { footprint, .. }
            | StreamDesc::Random { footprint, .. } => footprint > l2_capacity,
            StreamDesc::Hot { .. } => false,
        }
    }

    /// Is this a pointer-chase (serialized) stream?
    pub fn is_chase(&self) -> bool {
        matches!(self, StreamDesc::Chase { .. })
    }
}

/// Per-thread dynamic state of one stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamState {
    /// Access counter / chase position, meaning depends on the kind.
    pos: u64,
}

impl StreamState {
    /// Produces the next effective address and advances the stream.
    pub fn next(&mut self, desc: &StreamDesc) -> u64 {
        match *desc {
            StreamDesc::Strided {
                base,
                stride,
                footprint,
            } => {
                let addr = base + (self.pos * stride) % footprint.max(stride);
                self.pos = self.pos.wrapping_add(1);
                addr
            }
            StreamDesc::Chase {
                base,
                footprint,
                line,
            } => {
                let nlines = (footprint / line).max(1);
                debug_assert!(nlines.is_power_of_two(), "chase footprint/line must be 2^k");
                // Full-period LCG over the line indices: a ≡ 5 (mod 8),
                // c odd ⇒ period = nlines for power-of-two moduli.
                self.pos = (self
                    .pos
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407))
                    & (nlines - 1);
                base + self.pos * line
            }
            StreamDesc::Random { base, footprint } => {
                let addr = (base + (mix64(base, self.pos) & (footprint - 1))) & !0x7;
                self.pos = self.pos.wrapping_add(1);
                base + (addr - base) % footprint
            }
            StreamDesc::Hot {
                base,
                footprint,
                stride,
            } => {
                let addr = base + (self.pos * stride) % footprint.max(stride);
                self.pos = self.pos.wrapping_add(1);
                addr
            }
        }
    }

    /// A plausible address for a *wrong-path* instance of this stream:
    /// derived from the descriptor and a wrong-path counter without
    /// touching the committed stream position.
    pub fn wrong_path_addr(&self, desc: &StreamDesc, wp_counter: u64) -> u64 {
        match *desc {
            StreamDesc::Strided {
                base,
                stride,
                footprint,
            } => base + ((self.pos + wp_counter) * stride) % footprint.max(stride),
            StreamDesc::Chase {
                base,
                footprint,
                line,
            } => {
                let nlines = (footprint / line).max(1);
                base + (mix64(self.pos, wp_counter) & (nlines - 1)) * line
            }
            StreamDesc::Random { base, footprint } => {
                (base + (mix64(base ^ 0xDEAD, self.pos ^ wp_counter) % footprint)) & !0x7
            }
            StreamDesc::Hot {
                base,
                footprint,
                stride,
            } => base + ((self.pos + wp_counter) * stride) % footprint.max(stride),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_wraps_and_advances() {
        let d = StreamDesc::Strided {
            base: 0x1000,
            stride: 64,
            footprint: 256,
        };
        let mut s = StreamState::default();
        let addrs: Vec<u64> = (0..6).map(|_| s.next(&d)).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10C0, 0x1000, 0x1040]);
    }

    #[test]
    fn chase_visits_all_lines_before_repeating() {
        let d = StreamDesc::Chase {
            base: 0,
            footprint: 64 * 128,
            line: 128,
        };
        let mut s = StreamState::default();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let a = s.next(&d);
            assert_eq!(a % 128, 0);
            assert!(a < 64 * 128);
            seen.insert(a);
        }
        // Full-period LCG: all 64 lines visited exactly once.
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn chase_addresses_are_scattered() {
        let d = StreamDesc::Chase {
            base: 0,
            footprint: 1 << 20,
            line: 128,
        };
        let mut s = StreamState::default();
        let a = s.next(&d);
        let b = s.next(&d);
        let c = s.next(&d);
        // Consecutive chase targets should not be neighbouring lines.
        assert!(a.abs_diff(b) > 128);
        assert!(b.abs_diff(c) > 128);
    }

    #[test]
    fn random_stays_in_region() {
        let d = StreamDesc::Random {
            base: 0x10_0000,
            footprint: 1 << 16,
        };
        let mut s = StreamState::default();
        for _ in 0..1000 {
            let a = s.next(&d);
            assert!(
                (0x10_0000..0x10_0000 + (1 << 16)).contains(&a),
                "addr {a:#x}"
            );
        }
    }

    #[test]
    fn hot_region_is_small_and_cyclic() {
        let d = StreamDesc::Hot {
            base: 0x2000,
            footprint: 128,
            stride: 8,
        };
        let mut s = StreamState::default();
        let first: Vec<u64> = (0..16).map(|_| s.next(&d)).collect();
        let second: Vec<u64> = (0..16).map(|_| s.next(&d)).collect();
        assert_eq!(first, second);
        assert!(first.iter().all(|&a| (0x2000..0x2000 + 128).contains(&a)));
    }

    #[test]
    fn missing_classification() {
        let l2 = 2 << 20;
        assert!(StreamDesc::Chase {
            base: 0,
            footprint: 32 << 20,
            line: 128
        }
        .is_missing(l2));
        assert!(!StreamDesc::Hot {
            base: 0,
            footprint: 4096,
            stride: 8
        }
        .is_missing(l2));
        assert!(!StreamDesc::Strided {
            base: 0,
            stride: 64,
            footprint: 64 << 10
        }
        .is_missing(l2));
    }

    #[test]
    fn wrong_path_does_not_advance_state() {
        let d = StreamDesc::Strided {
            base: 0,
            stride: 64,
            footprint: 1 << 20,
        };
        let mut s = StreamState::default();
        s.next(&d);
        let snapshot = s.clone();
        let _ = s.wrong_path_addr(&d, 1);
        let _ = s.wrong_path_addr(&d, 2);
        assert_eq!(s, snapshot);
    }

    #[test]
    fn deterministic_replay() {
        let d = StreamDesc::Random {
            base: 0,
            footprint: 1 << 20,
        };
        let mut a = StreamState::default();
        let mut b = StreamState::default();
        for _ in 0..100 {
            assert_eq!(a.next(&d), b.next(&d));
        }
    }
}
