//! The paper's Table 2: eleven 4-threaded benchmark mixes.

use crate::builder::Workload;

/// Classification label of a mix (Table 2, left column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixClass {
    /// Four memory-bound threads.
    FourLow,
    /// Three memory-bound + one intermediate thread.
    ThreeLowOneMid,
    /// Two memory-bound + two intermediate threads.
    TwoLowTwoMid,
    /// Four execution-bound threads.
    FourHigh,
}

/// One Table 2 workload mix.
#[derive(Clone, Debug)]
pub struct Mix {
    /// "Mix 1" .. "Mix 11".
    pub name: &'static str,
    /// Classification per Table 2.
    pub class: MixClass,
    /// The four benchmark names.
    pub benchmarks: [&'static str; 4],
}

/// The eleven mixes of Table 2, in paper order.
pub fn paper_mixes() -> Vec<Mix> {
    use MixClass::*;
    vec![
        Mix {
            name: "Mix 1",
            class: FourLow,
            benchmarks: ["ammp", "art", "mgrid", "apsi"],
        },
        Mix {
            name: "Mix 2",
            class: FourLow,
            benchmarks: ["art", "mgrid", "apsi", "parser"],
        },
        Mix {
            name: "Mix 3",
            class: FourLow,
            benchmarks: ["ammp", "mgrid", "apsi", "parser"],
        },
        Mix {
            name: "Mix 4",
            class: FourLow,
            benchmarks: ["art", "mgrid", "apsi", "vortex"],
        },
        Mix {
            name: "Mix 5",
            class: ThreeLowOneMid,
            benchmarks: ["ammp", "apsi", "parser", "crafty"],
        },
        Mix {
            name: "Mix 6",
            class: ThreeLowOneMid,
            benchmarks: ["art", "apsi", "parser", "gap"],
        },
        Mix {
            name: "Mix 7",
            class: ThreeLowOneMid,
            benchmarks: ["ammp", "apsi", "vortex", "eon"],
        },
        Mix {
            name: "Mix 8",
            class: TwoLowTwoMid,
            benchmarks: ["art", "parser", "vpr", "gzip"],
        },
        Mix {
            name: "Mix 9",
            class: TwoLowTwoMid,
            benchmarks: ["mgrid", "parser", "perlbmk", "mcf"],
        },
        Mix {
            name: "Mix 10",
            class: FourHigh,
            benchmarks: ["lucas", "twolf", "bzip2", "wupwise"],
        },
        Mix {
            name: "Mix 11",
            class: FourHigh,
            benchmarks: ["equake", "mesa", "swim", "twolf"],
        },
    ]
}

/// Looks a mix up by 1-based index (`1..=11`).
pub fn mix(index: usize) -> Mix {
    assert!(
        (1..=11).contains(&index),
        "mix index {index} out of range 1..=11"
    );
    paper_mixes().swap_remove(index - 1)
}

impl Mix {
    /// Per-thread address-space stride: threads live in disjoint 4 GiB
    /// windows so their code and data never collide in physical address
    /// terms (SPEC processes have separate address spaces; M-Sim maps
    /// them apart).
    pub const THREAD_SPACE: u64 = 1 << 32;

    /// Instantiates the four workloads, one per hardware thread. The
    /// `seed` perturbs program generation so different experiments can
    /// draw independent instances; thread `t` uses seed `seed + t`.
    pub fn instantiate(&self, seed: u64) -> Vec<Workload> {
        self.benchmarks
            .iter()
            .enumerate()
            .map(|(t, name)| {
                let base = Self::THREAD_SPACE * t as u64;
                Workload::spec(
                    name,
                    seed.wrapping_add(t as u64),
                    base + 0x1_0000,
                    base + 0x1000_0000,
                )
            })
            .collect()
    }

    /// Instantiates one benchmark of the mix alone (for the
    /// single-threaded runs that normalize the weighted-IPC metric).
    pub fn instantiate_single(&self, thread: usize, seed: u64) -> Workload {
        let name = self.benchmarks[thread];
        let base = Self::THREAD_SPACE * thread as u64;
        Workload::spec(
            name,
            seed.wrapping_add(thread as u64),
            base + 0x1_0000,
            base + 0x1000_0000,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn eleven_mixes() {
        assert_eq!(paper_mixes().len(), 11);
    }

    #[test]
    fn mix_names_sequential() {
        for (i, m) in paper_mixes().iter().enumerate() {
            assert_eq!(m.name, format!("Mix {}", i + 1));
        }
    }

    #[test]
    fn all_benchmarks_known() {
        for m in paper_mixes() {
            for b in m.benchmarks {
                assert!(spec::BENCHMARKS.contains(&b), "unknown {b} in {}", m.name);
            }
        }
    }

    #[test]
    fn table2_exact_contents() {
        let m = mix(1);
        assert_eq!(m.benchmarks, ["ammp", "art", "mgrid", "apsi"]);
        let m9 = mix(9);
        assert_eq!(m9.benchmarks, ["mgrid", "parser", "perlbmk", "mcf"]);
        let m11 = mix(11);
        assert_eq!(m11.benchmarks, ["equake", "mesa", "swim", "twolf"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mix_zero_panics() {
        let _ = mix(0);
    }

    #[test]
    fn instantiation_gives_disjoint_spaces() {
        let wls = mix(1).instantiate(42);
        assert_eq!(wls.len(), 4);
        for (t, w) in wls.iter().enumerate() {
            let base = Mix::THREAD_SPACE * t as u64;
            assert!(w.program.pc_base() >= base);
            assert!(w.program.pc_base() < base + Mix::THREAD_SPACE);
        }
    }

    #[test]
    fn single_instantiation_matches_mix_slot() {
        let m = mix(2);
        let w = m.instantiate_single(1, 42);
        assert_eq!(w.profile.name, "mgrid");
        // Same seed and slot as the 4-thread instantiation ⇒ identical
        // program (the normalization baseline runs the same binary).
        let w4 = &m.instantiate(42)[1];
        assert_eq!(w.program.num_insts(), w4.program.num_insts());
    }

    #[test]
    fn mix_classes_match_table() {
        assert_eq!(mix(1).class, MixClass::FourLow);
        assert_eq!(mix(5).class, MixClass::ThreeLowOneMid);
        assert_eq!(mix(9).class, MixClass::TwoLowTwoMid);
        assert_eq!(mix(10).class, MixClass::FourHigh);
    }
}
