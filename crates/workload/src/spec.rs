//! Synthetic stand-ins for the SPEC CPU2000 benchmarks of Table 2.
//!
//! **Substitution note (see DESIGN.md §3):** the paper runs precompiled
//! Alpha SPEC binaries under M-Sim. We cannot redistribute SPEC, so each
//! benchmark is replaced by a profile that reproduces the
//! *timing-relevant* characteristics the paper's mechanism interacts
//! with: instruction mix, L2-miss frequency and overlap structure
//! (streaming vs pointer-chasing vs random), per-load dependent counts
//! (DoD), branch predictability and loop structure.
//!
//! Class assignment follows the paper's own low/mid/high ILP
//! classification implied by Table 2's mix groupings (Mixes 1–4 are
//! "4 Low IPC", 10–11 are "4 High IPC", etc.), which reflects the
//! authors' single-threaded simulations of their SimPoint regions:
//!
//! * **Low** (memory-bound): `ammp, art, mgrid, apsi, parser, vortex`
//! * **Mid**: `crafty, gap, eon, vpr, gzip, perlbmk, mcf`
//! * **High** (execution-bound): `lucas, twolf, bzip2, wupwise, equake,
//!   mesa, swim`

use crate::profile::{IlpClass, WorkloadProfile};

/// Names of all benchmarks referenced by the paper's Table 2, in a
/// stable order.
pub const BENCHMARKS: [&str; 20] = [
    "ammp", "art", "mgrid", "apsi", "parser", "vortex", "crafty", "gap", "eon", "vpr", "gzip",
    "perlbmk", "mcf", "lucas", "twolf", "bzip2", "wupwise", "equake", "mesa", "swim",
];

/// Returns the synthetic profile for a benchmark name.
///
/// # Panics
/// Panics on unknown names (the valid set is [`BENCHMARKS`]).
pub fn profile(name: &str) -> WorkloadProfile {
    let p = match name {
        // ---- Low-ILP / memory-bound ------------------------------------
        // ammp: FP molecular dynamics, scattered neighbour-list accesses.
        "ammp" => WorkloadProfile {
            name: "ammp",
            class: IlpClass::Low,
            load_frac_pm: 290,
            store_frac_pm: 90,
            branch_frac_pm: 60,
            fp_frac_pm: 650,
            longlat_frac_pm: 80,
            dod_mean: 7.0,
            dod_cap: 28,
            dense_frac_pm: 400,
            dod_gap: 10.0,
            chain_frac_pm: 450,
            miss_load_frac_pm: 80,
            chase_frac_pm: 500,
            stream_frac_pm: 250,
            footprint: 32 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 930,
            avg_trip: 24,
            block_size: (12, 26),
            num_segments: 8,
        },
        // art: FP neural-net sim, long streaming sweeps over large arrays
        // — independent misses, high MLP potential.
        "art" => WorkloadProfile {
            name: "art",
            class: IlpClass::Low,
            load_frac_pm: 320,
            store_frac_pm: 60,
            branch_frac_pm: 70,
            fp_frac_pm: 700,
            longlat_frac_pm: 60,
            dod_mean: 6.0,
            dod_cap: 24,
            dense_frac_pm: 120,
            dod_gap: 12.0,
            chain_frac_pm: 300,
            miss_load_frac_pm: 120,
            chase_frac_pm: 100,
            stream_frac_pm: 800,
            footprint: 32 << 20,
            hot_footprint: 8 << 10,
            branch_bias_pm: 960,
            avg_trip: 48,
            block_size: (14, 30),
            num_segments: 6,
        },
        // mgrid: FP multigrid solver, strided sweeps with large strides.
        "mgrid" => WorkloadProfile {
            name: "mgrid",
            class: IlpClass::Low,
            load_frac_pm: 330,
            store_frac_pm: 80,
            branch_frac_pm: 30,
            fp_frac_pm: 750,
            longlat_frac_pm: 70,
            dod_mean: 8.0,
            dod_cap: 28,
            dense_frac_pm: 120,
            dod_gap: 10.0,
            chain_frac_pm: 400,
            miss_load_frac_pm: 90,
            chase_frac_pm: 50,
            stream_frac_pm: 850,
            footprint: 64 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 980,
            avg_trip: 64,
            block_size: (18, 36),
            num_segments: 6,
        },
        // apsi: FP meteorology, mixed strided/random over a large grid.
        "apsi" => WorkloadProfile {
            name: "apsi",
            class: IlpClass::Low,
            load_frac_pm: 280,
            store_frac_pm: 110,
            branch_frac_pm: 60,
            fp_frac_pm: 600,
            longlat_frac_pm: 90,
            dod_mean: 8.0,
            dod_cap: 28,
            dense_frac_pm: 250,
            dod_gap: 9.0,
            chain_frac_pm: 500,
            miss_load_frac_pm: 75,
            chase_frac_pm: 200,
            stream_frac_pm: 550,
            footprint: 32 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 940,
            avg_trip: 32,
            block_size: (12, 26),
            num_segments: 8,
        },
        // parser: integer NLP, pointer-heavy dictionary walks, branchy.
        "parser" => WorkloadProfile {
            name: "parser",
            class: IlpClass::Low,
            load_frac_pm: 260,
            store_frac_pm: 100,
            branch_frac_pm: 170,
            fp_frac_pm: 0,
            longlat_frac_pm: 25,
            dod_mean: 6.0,
            dod_cap: 24,
            dense_frac_pm: 500,
            dod_gap: 8.0,
            chain_frac_pm: 600,
            miss_load_frac_pm: 65,
            chase_frac_pm: 650,
            stream_frac_pm: 150,
            footprint: 16 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 870,
            avg_trip: 8,
            block_size: (5, 12),
            num_segments: 10,
        },
        // vortex: integer OO database, pointer chases through objects.
        "vortex" => WorkloadProfile {
            name: "vortex",
            class: IlpClass::Low,
            load_frac_pm: 300,
            store_frac_pm: 130,
            branch_frac_pm: 150,
            fp_frac_pm: 0,
            longlat_frac_pm: 15,
            dod_mean: 7.0,
            dod_cap: 24,
            dense_frac_pm: 450,
            dod_gap: 9.0,
            chain_frac_pm: 550,
            miss_load_frac_pm: 55,
            chase_frac_pm: 550,
            stream_frac_pm: 200,
            footprint: 16 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 910,
            avg_trip: 10,
            block_size: (6, 14),
            num_segments: 10,
        },
        // ---- Mid-ILP ---------------------------------------------------
        // crafty: chess, cache-resident bitboards, branchy, some misses.
        "crafty" => WorkloadProfile {
            name: "crafty",
            class: IlpClass::Mid,
            load_frac_pm: 270,
            store_frac_pm: 80,
            branch_frac_pm: 160,
            fp_frac_pm: 0,
            longlat_frac_pm: 35,
            dod_mean: 6.0,
            dod_cap: 24,
            dense_frac_pm: 350,
            dod_gap: 7.0,
            chain_frac_pm: 500,
            miss_load_frac_pm: 10,
            chase_frac_pm: 300,
            stream_frac_pm: 300,
            footprint: 8 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 880,
            avg_trip: 12,
            block_size: (6, 14),
            num_segments: 8,
        },
        // gap: group theory, integer, moderate working set.
        "gap" => WorkloadProfile {
            name: "gap",
            class: IlpClass::Mid,
            load_frac_pm: 250,
            store_frac_pm: 120,
            branch_frac_pm: 140,
            fp_frac_pm: 0,
            longlat_frac_pm: 45,
            dod_mean: 6.0,
            dod_cap: 24,
            dense_frac_pm: 350,
            dod_gap: 7.0,
            chain_frac_pm: 450,
            miss_load_frac_pm: 15,
            chase_frac_pm: 400,
            stream_frac_pm: 300,
            footprint: 8 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 900,
            avg_trip: 16,
            block_size: (7, 16),
            num_segments: 8,
        },
        // eon: C++ ray tracer, compute-heavy with some FP.
        "eon" => WorkloadProfile {
            name: "eon",
            class: IlpClass::Mid,
            load_frac_pm: 240,
            store_frac_pm: 120,
            branch_frac_pm: 130,
            fp_frac_pm: 350,
            longlat_frac_pm: 90,
            dod_mean: 7.0,
            dod_cap: 28,
            dense_frac_pm: 300,
            dod_gap: 8.0,
            chain_frac_pm: 550,
            miss_load_frac_pm: 5,
            chase_frac_pm: 200,
            stream_frac_pm: 400,
            footprint: 4 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 920,
            avg_trip: 10,
            block_size: (8, 18),
            num_segments: 8,
        },
        // vpr: FPGA place & route, graph walks over mid-size structures.
        "vpr" => WorkloadProfile {
            name: "vpr",
            class: IlpClass::Mid,
            load_frac_pm: 280,
            store_frac_pm: 90,
            branch_frac_pm: 150,
            fp_frac_pm: 120,
            longlat_frac_pm: 30,
            dod_mean: 6.0,
            dod_cap: 24,
            dense_frac_pm: 450,
            dod_gap: 7.0,
            chain_frac_pm: 550,
            miss_load_frac_pm: 18,
            chase_frac_pm: 500,
            stream_frac_pm: 200,
            footprint: 8 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 890,
            avg_trip: 10,
            block_size: (6, 13),
            num_segments: 8,
        },
        // gzip: compression, small window, very cache friendly, branchy.
        "gzip" => WorkloadProfile {
            name: "gzip",
            class: IlpClass::Mid,
            load_frac_pm: 230,
            store_frac_pm: 110,
            branch_frac_pm: 170,
            fp_frac_pm: 0,
            longlat_frac_pm: 10,
            dod_mean: 5.0,
            dod_cap: 20,
            dense_frac_pm: 250,
            dod_gap: 6.0,
            chain_frac_pm: 600,
            miss_load_frac_pm: 6,
            chase_frac_pm: 100,
            stream_frac_pm: 700,
            footprint: 4 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 860,
            avg_trip: 14,
            block_size: (5, 12),
            num_segments: 8,
        },
        // perlbmk: interpreter loop, branchy, moderate locality.
        "perlbmk" => WorkloadProfile {
            name: "perlbmk",
            class: IlpClass::Mid,
            load_frac_pm: 270,
            store_frac_pm: 120,
            branch_frac_pm: 180,
            fp_frac_pm: 0,
            longlat_frac_pm: 15,
            dod_mean: 6.0,
            dod_cap: 24,
            dense_frac_pm: 400,
            dod_gap: 7.0,
            chain_frac_pm: 550,
            miss_load_frac_pm: 13,
            chase_frac_pm: 450,
            stream_frac_pm: 250,
            footprint: 8 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 880,
            avg_trip: 8,
            block_size: (5, 12),
            num_segments: 10,
        },
        // mcf: network simplex; pointer-chasing but the authors' SimPoint
        // region classifies as mid in their Table 2 grouping.
        "mcf" => WorkloadProfile {
            name: "mcf",
            class: IlpClass::Mid,
            load_frac_pm: 310,
            store_frac_pm: 70,
            branch_frac_pm: 160,
            fp_frac_pm: 0,
            longlat_frac_pm: 10,
            dod_mean: 6.0,
            dod_cap: 20,
            dense_frac_pm: 600,
            dod_gap: 9.0,
            chain_frac_pm: 650,
            miss_load_frac_pm: 30,
            chase_frac_pm: 750,
            stream_frac_pm: 100,
            footprint: 32 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 890,
            avg_trip: 12,
            block_size: (5, 11),
            num_segments: 10,
        },
        // ---- High-ILP / execution-bound --------------------------------
        // lucas: FP FFT-based primality, blocked cache-resident kernels.
        "lucas" => WorkloadProfile {
            name: "lucas",
            class: IlpClass::High,
            load_frac_pm: 240,
            store_frac_pm: 120,
            branch_frac_pm: 25,
            fp_frac_pm: 800,
            longlat_frac_pm: 60,
            dod_mean: 9.0,
            dod_cap: 28,
            dense_frac_pm: 100,
            dod_gap: 5.0,
            chain_frac_pm: 350,
            miss_load_frac_pm: 0,
            chase_frac_pm: 0,
            stream_frac_pm: 900,
            footprint: 1 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 985,
            avg_trip: 96,
            block_size: (20, 40),
            num_segments: 3,
        },
        // twolf: place & route with a small hot set in this region.
        "twolf" => WorkloadProfile {
            name: "twolf",
            class: IlpClass::High,
            load_frac_pm: 260,
            store_frac_pm: 80,
            branch_frac_pm: 150,
            fp_frac_pm: 60,
            longlat_frac_pm: 25,
            dod_mean: 6.0,
            dod_cap: 24,
            dense_frac_pm: 300,
            dod_gap: 5.0,
            chain_frac_pm: 500,
            miss_load_frac_pm: 1,
            chase_frac_pm: 300,
            stream_frac_pm: 300,
            footprint: 1 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 900,
            avg_trip: 12,
            block_size: (6, 14),
            num_segments: 6,
        },
        // bzip2: compression, hot working set, predictable loops.
        "bzip2" => WorkloadProfile {
            name: "bzip2",
            class: IlpClass::High,
            load_frac_pm: 250,
            store_frac_pm: 100,
            branch_frac_pm: 140,
            fp_frac_pm: 0,
            longlat_frac_pm: 10,
            dod_mean: 7.0,
            dod_cap: 24,
            dense_frac_pm: 200,
            dod_gap: 5.0,
            chain_frac_pm: 500,
            miss_load_frac_pm: 0,
            chase_frac_pm: 0,
            stream_frac_pm: 800,
            footprint: 1 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 910,
            avg_trip: 24,
            block_size: (7, 16),
            num_segments: 5,
        },
        // wupwise: FP quantum chromodynamics, dense linear algebra.
        "wupwise" => WorkloadProfile {
            name: "wupwise",
            class: IlpClass::High,
            load_frac_pm: 230,
            store_frac_pm: 110,
            branch_frac_pm: 30,
            fp_frac_pm: 780,
            longlat_frac_pm: 80,
            dod_mean: 9.0,
            dod_cap: 28,
            dense_frac_pm: 100,
            dod_gap: 5.0,
            chain_frac_pm: 400,
            miss_load_frac_pm: 0,
            chase_frac_pm: 0,
            stream_frac_pm: 900,
            footprint: 1 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 990,
            avg_trip: 128,
            block_size: (22, 44),
            num_segments: 2,
        },
        // equake: FP earthquake sim; this region is cache-resident.
        "equake" => WorkloadProfile {
            name: "equake",
            class: IlpClass::High,
            load_frac_pm: 280,
            store_frac_pm: 90,
            branch_frac_pm: 60,
            fp_frac_pm: 650,
            longlat_frac_pm: 50,
            dod_mean: 8.0,
            dod_cap: 28,
            dense_frac_pm: 150,
            dod_gap: 5.0,
            chain_frac_pm: 450,
            miss_load_frac_pm: 1,
            chase_frac_pm: 100,
            stream_frac_pm: 700,
            footprint: 1 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 960,
            avg_trip: 48,
            block_size: (14, 28),
            num_segments: 3,
        },
        // mesa: software 3D rasterizer, compute-dense, tiny misses.
        "mesa" => WorkloadProfile {
            name: "mesa",
            class: IlpClass::High,
            load_frac_pm: 220,
            store_frac_pm: 130,
            branch_frac_pm: 90,
            fp_frac_pm: 550,
            longlat_frac_pm: 70,
            dod_mean: 8.0,
            dod_cap: 28,
            dense_frac_pm: 150,
            dod_gap: 5.0,
            chain_frac_pm: 500,
            miss_load_frac_pm: 0,
            chase_frac_pm: 0,
            stream_frac_pm: 800,
            footprint: 1 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 940,
            avg_trip: 32,
            block_size: (10, 22),
            num_segments: 4,
        },
        // swim: FP shallow-water model; blocked region, cache-friendly.
        "swim" => WorkloadProfile {
            name: "swim",
            class: IlpClass::High,
            load_frac_pm: 270,
            store_frac_pm: 120,
            branch_frac_pm: 20,
            fp_frac_pm: 820,
            longlat_frac_pm: 40,
            dod_mean: 10.0,
            dod_cap: 30,
            dense_frac_pm: 100,
            dod_gap: 5.0,
            chain_frac_pm: 350,
            miss_load_frac_pm: 0,
            chase_frac_pm: 0,
            stream_frac_pm: 950,
            footprint: 1 << 20,
            hot_footprint: 16 << 10,
            branch_bias_pm: 992,
            avg_trip: 128,
            block_size: (24, 48),
            num_segments: 2,
        },
        other => panic!("unknown benchmark '{other}' (see BENCHMARKS)"),
    };
    debug_assert!(p.validate().is_ok(), "{:?}", p.validate());
    p
}

/// All profiles in [`BENCHMARKS`] order.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    BENCHMARKS.iter().map(|n| profile(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in all_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn twenty_benchmarks() {
        assert_eq!(BENCHMARKS.len(), 20);
        assert_eq!(all_profiles().len(), 20);
    }

    #[test]
    fn names_round_trip() {
        for name in BENCHMARKS {
            assert_eq!(profile(name).name, name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = profile("specmax");
    }

    #[test]
    fn class_miss_rates_ordered() {
        // Low-class benchmarks must expect materially more L2 misses
        // than mid, and mid more than high — this ordering is what makes
        // the Table 2 mixes meaningful.
        let avg = |c: IlpClass| {
            let v: Vec<f64> = all_profiles()
                .into_iter()
                .filter(|p| p.class == c)
                .map(|p| p.expected_miss_rate_pm())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let (lo, mid, hi) = (avg(IlpClass::Low), avg(IlpClass::Mid), avg(IlpClass::High));
        assert!(lo > 2.0 * mid, "low {lo} vs mid {mid}");
        assert!(mid > 2.0 * hi, "mid {mid} vs high {hi}");
    }

    #[test]
    fn low_class_footprints_exceed_l2() {
        let l2 = 2u64 << 20;
        for p in all_profiles() {
            if p.class == IlpClass::Low {
                assert!(p.footprint > 4 * l2, "{} footprint too small", p.name);
            }
        }
    }

    #[test]
    fn integer_benchmarks_have_no_fp() {
        for name in [
            "parser", "vortex", "crafty", "gap", "gzip", "perlbmk", "mcf", "bzip2",
        ] {
            assert_eq!(profile(name).fp_frac_pm, 0, "{name}");
        }
    }
}
