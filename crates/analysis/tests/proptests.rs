//! Property tests of the static DoD analysis: for arbitrary generated
//! workloads, a dynamic register-taint walk over the correct-path
//! instruction stream never finds more dependents in a first-level
//! window than the static per-load bound — the soundness contract the
//! pipeline oracle relies on.

use proptest::prelude::*;
use smtsim_analysis::{has_errors, lint_workload, DodAnalysis, L1_WINDOW};
use smtsim_isa::{ArchReg, OpClass};
use smtsim_workload::{exec::Executor, spec, Workload};
use std::sync::Arc;

fn arb_bench() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(spec::BENCHMARKS.to_vec())
}

/// Taint bit for `r` under the hardwired-zero rule — must mirror the
/// analysis (`smtsim-analysis`) and the pipeline's exact-count walk.
fn bit(r: Option<ArchReg>) -> u64 {
    match r {
        Some(r) if !r.is_zero() => 1u64 << r.flat_index(),
        _ => 0,
    }
}

/// Exact dependent count of the load at `trace[i]` over the next
/// `window` correct-path instructions.
fn dynamic_dependents(trace: &[smtsim_isa::DynInst], i: usize, window: usize) -> u32 {
    let mut taint = bit(trace[i].dst);
    let mut count = 0;
    if taint == 0 {
        return 0;
    }
    for d in trace.iter().skip(i + 1).take(window) {
        let dependent = d.srcs.iter().any(|&s| bit(s) & taint != 0);
        let dst = bit(d.dst);
        if dependent {
            count += 1;
            taint |= dst;
        } else {
            taint &= !dst;
            if taint == 0 {
                break;
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dynamic_dependents_never_exceed_static_max(bench in arb_bench(), seed in 0u64..64) {
        let wl = Arc::new(Workload::spec(bench, seed, 0x1_0000, 0x1000_0000));
        let analysis = DodAnalysis::compute(&wl.program, L1_WINDOW);
        prop_assert!(analysis.all_exact(), "generated CFGs stay within the state budget");
        let mut ex = Executor::new(wl, seed);
        let trace: Vec<_> = (0..4_000).map(|_| ex.next_inst()).collect();
        let mut loads_checked = 0u64;
        for i in 0..trace.len() {
            if trace[i].op != OpClass::Load {
                continue;
            }
            let b = analysis.for_pc(trace[i].pc);
            prop_assert!(b.is_some(), "executed load {:#x} missing from the analysis", trace[i].pc);
            let b = b.unwrap();
            let exact = dynamic_dependents(&trace, i, L1_WINDOW);
            prop_assert!(
                exact <= b.max,
                "load {:#x} at seq {i}: {exact} dynamic dependents exceed static max {}",
                trace[i].pc, b.max
            );
            // A full-length dynamic window is one complete semantic
            // path, so the static minimum binds it from below.
            if i + L1_WINDOW < trace.len() {
                prop_assert!(
                    exact >= b.min,
                    "load {:#x} at seq {i}: {exact} dynamic dependents under static min {}",
                    trace[i].pc, b.min
                );
            }
            loads_checked += 1;
        }
        prop_assert!(loads_checked > 0, "trace of 4k instructions must contain loads");
    }

    #[test]
    fn analysis_is_deterministic_and_generated_workloads_lint_clean(bench in arb_bench(), seed in 0u64..32) {
        let wl = Workload::spec(bench, seed, 0x1_0000, 0x1000_0000);
        let a = DodAnalysis::compute(&wl.program, L1_WINDOW);
        let b = DodAnalysis::compute(&wl.program, L1_WINDOW);
        prop_assert_eq!(a.loads, b.loads);
        // Generator output must be well-formed: warnings are allowed
        // (the BASE register convention reads before any local def),
        // errors are not.
        let findings = lint_workload(&wl);
        prop_assert!(!has_errors(&findings), "lint errors: {:?}", findings);
    }

    #[test]
    fn widening_the_window_is_monotone(bench in arb_bench(), seed in 0u64..16) {
        let wl = Workload::spec(bench, seed, 0x1_0000, 0x1000_0000);
        let narrow = DodAnalysis::compute(&wl.program, 8);
        let wide = DodAnalysis::compute(&wl.program, L1_WINDOW);
        for (n, w) in narrow.loads.iter().zip(&wide.loads) {
            prop_assert_eq!(n.pc, w.pc);
            prop_assert!(n.max <= w.max, "load {:#x}: max shrank {} -> {}", n.pc, n.max, w.max);
            prop_assert!(n.min <= w.min, "load {:#x}: min shrank {} -> {}", n.pc, n.min, w.min);
        }
    }
}
