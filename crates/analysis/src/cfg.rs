//! Control-flow scaffolding shared by every pass: semantic successor
//! edges, reachability, and strongly connected components.
//!
//! The edges used here are *semantic*, not structural: a branch whose
//! behaviour makes one direction impossible contributes only the
//! possible edge. [`BranchBehavior::Always`] never falls through,
//! [`BranchBehavior::Loop`] with `trip == 1` never takes (the back-edge
//! fires `trip - 1` times per loop entry), and a
//! [`BranchBehavior::Biased`] branch with a saturated per-mille
//! probability is one-directional. Analysing the structural graph
//! instead would both miss dead code (a never-taken edge keeps a block
//! "reachable") and weaken dependence bounds (impossible paths widen
//! the min/max interval).

use smtsim_isa::{BasicBlock, BlockId, BranchBehavior, Program};

/// Semantic successor blocks of `block`, in a fixed (taken-first)
/// order. Every block has at least one successor: programs are endless.
pub fn successors(block: &BasicBlock) -> Vec<BlockId> {
    match block.terminator().and_then(|t| t.branch_info()) {
        None => vec![block.fallthrough],
        Some((behavior, target)) => match behavior {
            BranchBehavior::Always => vec![target],
            BranchBehavior::Loop { trip } if trip <= 1 => vec![block.fallthrough],
            BranchBehavior::Biased { taken_pm: 0 } => vec![block.fallthrough],
            BranchBehavior::Biased { taken_pm } if taken_pm >= 1000 => vec![target],
            BranchBehavior::Loop { .. } | BranchBehavior::Biased { .. } => {
                vec![target, block.fallthrough]
            }
        },
    }
}

/// Blocks reachable from the entry over semantic edges.
/// `reachable(p)[b]` is `true` iff block `b` can execute.
pub fn reachable(p: &Program) -> Vec<bool> {
    let mut seen = vec![false; p.num_blocks()];
    let mut stack = vec![p.entry()];
    seen[p.entry().0 as usize] = true;
    while let Some(b) = stack.pop() {
        for s in successors(p.block(b)) {
            if !seen[s.0 as usize] {
                seen[s.0 as usize] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Semantic predecessor lists for every block.
pub fn predecessors(p: &Program) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); p.num_blocks()];
    for (id, b) in p.iter_blocks() {
        for s in successors(b) {
            preds[s.0 as usize].push(id);
        }
    }
    preds
}

/// Strongly connected components of the semantic CFG, as a component
/// id per block (ids are arbitrary but dense). Uses Kosaraju's
/// algorithm with explicit stacks so deep CFGs cannot overflow the call
/// stack.
pub fn scc_ids(p: &Program) -> Vec<u32> {
    let n = p.num_blocks();
    // Pass 1: finish-order DFS on the forward graph.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in 0..n {
        if seen[root] {
            continue;
        }
        // (block, next-successor-index) stack frames.
        let mut stack = vec![(root, 0usize)];
        seen[root] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = successors(p.block(BlockId(b as u32)));
            if *i < succs.len() {
                let s = succs[*i].0 as usize;
                *i += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
    }
    // Pass 2: DFS on the transposed graph in reverse finish order.
    let preds = predecessors(p);
    let mut comp = vec![u32::MAX; n];
    let mut next_id = 0u32;
    for &root in order.iter().rev() {
        if comp[root] != u32::MAX {
            continue;
        }
        let mut stack = vec![root];
        comp[root] = next_id;
        while let Some(b) = stack.pop() {
            for pb in &preds[b] {
                let pb = pb.0 as usize;
                if comp[pb] == u32::MAX {
                    comp[pb] = next_id;
                    stack.push(pb);
                }
            }
        }
        next_id += 1;
    }
    comp
}

/// Dense global instruction indexing over a program: maps between
/// `(block, idx)` positions, flat indices, and PCs.
pub struct InstIndex {
    /// Flat index of the first instruction of each block.
    base: Vec<u32>,
    total: u32,
}

impl InstIndex {
    /// Builds the index for `p`.
    pub fn new(p: &Program) -> Self {
        let mut base = Vec::with_capacity(p.num_blocks());
        let mut total = 0u32;
        for (_, b) in p.iter_blocks() {
            base.push(total);
            total += u32::try_from(b.insts.len()).expect("block larger than u32");
        }
        InstIndex { base, total }
    }

    /// Total instruction count.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Flat index of instruction `idx` of `block`.
    pub fn flat(&self, block: BlockId, idx: usize) -> u32 {
        self.base[block.0 as usize] + idx as u32
    }

    /// Inverse of [`InstIndex::flat`].
    pub fn position(&self, flat: u32) -> (BlockId, usize) {
        let b = match self.base.binary_search(&flat) {
            Ok(b) => b,
            Err(ins) => ins - 1,
        };
        (BlockId(b as u32), (flat - self.base[b]) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_isa::{ArchReg, OpClass, StaticInst};

    fn blk(n: usize, term: Option<StaticInst>, fall: u32) -> BasicBlock {
        let mut insts = vec![
            StaticInst::compute(
                OpClass::IntAlu,
                ArchReg::int(1),
                [Some(ArchReg::int(1)), None]
            );
            n
        ];
        if let Some(t) = term {
            insts.push(t);
        }
        BasicBlock::new(insts, BlockId(fall))
    }

    fn br(b: BranchBehavior, target: u32) -> StaticInst {
        StaticInst::branch(Some(ArchReg::int(1)), b, BlockId(target))
    }

    #[test]
    fn always_branch_has_single_successor() {
        let p = Program::new(
            "t",
            vec![
                blk(1, Some(br(BranchBehavior::Always, 0)), 1),
                blk(1, None, 0),
            ],
            BlockId(0),
            0,
        );
        assert_eq!(successors(p.block(BlockId(0))), vec![BlockId(0)]);
        let r = reachable(&p);
        assert!(r[0]);
        assert!(!r[1], "fallthrough of an Always branch never executes");
    }

    #[test]
    fn trip_one_loop_never_takes() {
        let p = Program::new(
            "t",
            vec![
                blk(1, Some(br(BranchBehavior::Loop { trip: 1 }, 0)), 1),
                blk(1, None, 0),
            ],
            BlockId(0),
            0,
        );
        assert_eq!(successors(p.block(BlockId(0))), vec![BlockId(1)]);
    }

    #[test]
    fn biased_saturation_is_one_directional() {
        let mk = |pm| {
            Program::new(
                "t",
                vec![
                    blk(1, Some(br(BranchBehavior::Biased { taken_pm: pm }, 0)), 1),
                    blk(1, None, 0),
                ],
                BlockId(0),
                0,
            )
        };
        assert_eq!(successors(mk(0).block(BlockId(0))), vec![BlockId(1)]);
        assert_eq!(successors(mk(1000).block(BlockId(0))), vec![BlockId(0)]);
        assert_eq!(
            successors(mk(500).block(BlockId(0))),
            vec![BlockId(0), BlockId(1)]
        );
    }

    #[test]
    fn scc_separates_ring_from_trap() {
        // b0 -> b1 -> b0 is the ring; b2 is a trap self-loop.
        let p = Program::new(
            "t",
            vec![
                blk(1, None, 1),
                blk(1, Some(br(BranchBehavior::Biased { taken_pm: 500 }, 0)), 2),
                blk(1, Some(br(BranchBehavior::Always, 2)), 0),
            ],
            BlockId(0),
            0,
        );
        let ids = scc_ids(&p);
        assert_eq!(ids[0], ids[1]);
        assert_ne!(ids[0], ids[2]);
    }

    #[test]
    fn inst_index_round_trips() {
        let p = Program::new(
            "t",
            vec![blk(3, None, 1), blk(2, None, 0)],
            BlockId(0),
            0x1000,
        );
        let ix = InstIndex::new(&p);
        assert_eq!(ix.total(), 5);
        assert_eq!(ix.flat(BlockId(1), 1), 4);
        for f in 0..5 {
            let (b, i) = ix.position(f);
            assert_eq!(ix.flat(b, i), f);
        }
    }
}
