//! Static analyzer CLI: lint generated workloads, dump dependence
//! graphs, and print DoD bounds.
//!
//! ```text
//! analyze [--spec NAME | --mix N] [--seed S] [--window W]
//!         [--lint] [--bounds] [--dot PATH] [--json PATH] [--quiet]
//! ```
//!
//! * `--spec NAME` analyzes one synthetic SPEC benchmark; `--mix N`
//!   analyzes all four programs of Table 2 mix `N` (default: every
//!   mix, i.e. the full seeded corpus).
//! * `--lint` exits non-zero when any error-severity finding fires —
//!   the CI contract.
//! * `--dot` / `--json` dump the dependence graph (`-` = stdout; with
//!   multiple programs the program name is appended to the path).
//! * `--bounds` prints the per-load static DoD table.
//!
//! Fully offline and deterministic: same arguments, same bytes.

use smtsim_analysis::{dod, lint, DepGraph, DodAnalysis};
use smtsim_workload::{mix, Workload};
use std::process::ExitCode;

struct Args {
    spec: Option<String>,
    mix: Option<usize>,
    seed: u64,
    window: usize,
    lint: bool,
    bounds: bool,
    dot: Option<String>,
    json: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        spec: None,
        mix: None,
        seed: 42,
        window: dod::L1_WINDOW,
        lint: false,
        bounds: false,
        dot: None,
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--spec" => a.spec = Some(value("--spec")?),
            "--mix" => {
                let v = value("--mix")?;
                a.mix = Some(v.parse().map_err(|_| format!("bad --mix value {v:?}"))?);
            }
            "--seed" => {
                let v = value("--seed")?;
                a.seed = v.parse().map_err(|_| format!("bad --seed value {v:?}"))?;
            }
            "--window" => {
                let v = value("--window")?;
                a.window = v.parse().map_err(|_| format!("bad --window value {v:?}"))?;
            }
            "--lint" => a.lint = true,
            "--bounds" => a.bounds = true,
            "--dot" => a.dot = Some(value("--dot")?),
            "--json" => a.json = Some(value("--json")?),
            "--quiet" => a.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: analyze [--spec NAME | --mix N] [--seed S] [--window W] \
                     [--lint] [--bounds] [--dot PATH] [--json PATH] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if a.spec.is_some() && a.mix.is_some() {
        return Err("--spec and --mix are mutually exclusive".into());
    }
    Ok(a)
}

/// Writes `content` to `path` (`-` = stdout); with several programs in
/// one invocation, `suffix` disambiguates file names.
fn dump(path: &str, suffix: Option<&str>, content: &str) -> Result<(), String> {
    if path == "-" {
        print!("{content}");
        return Ok(());
    }
    let path = match suffix {
        Some(s) => format!("{path}.{s}"),
        None => path.to_string(),
    };
    std::fs::write(&path, content).map_err(|e| format!("writing {path}: {e}"))
}

fn analyze_one(w: &Workload, a: &Args, suffix: Option<&str>) -> Result<bool, String> {
    let p = &w.program;
    let findings = lint::lint_workload(w);
    let analysis = DodAnalysis::compute(p, a.window);
    let errors = lint::has_errors(&findings);

    if !a.quiet {
        println!(
            "{}: {} blocks, {} insts, {} loads ({} to missing streams), window {}",
            p.name(),
            p.num_blocks(),
            p.num_insts(),
            analysis.loads.len(),
            w.static_missing_loads,
            a.window,
        );
        for f in &findings {
            println!("  {f}");
        }
        let inexact = analysis.loads.iter().filter(|l| !l.exact).count();
        let max_max = analysis.loads.iter().map(|l| l.max).max().unwrap_or(0);
        println!("  static DoD: max-over-loads {max_max}, {inexact} load(s) hit the state budget");
    }
    if a.bounds {
        for l in &analysis.loads {
            println!(
                "  {:#010x} b{}+{}  dod in [{}, {}]{}",
                l.pc,
                l.block.0,
                l.idx,
                l.min,
                l.max,
                if l.exact { "" } else { " (conservative)" }
            );
        }
    }
    if a.dot.is_some() || a.json.is_some() {
        let g = DepGraph::build(p);
        if let Some(path) = &a.dot {
            dump(
                path,
                suffix.map(|s| format!("{s}.dot")).as_deref(),
                &g.to_dot(p),
            )?;
        }
        if let Some(path) = &a.json {
            dump(
                path,
                suffix.map(|s| format!("{s}.json")).as_deref(),
                &g.to_json(p),
            )?;
        }
    }
    Ok(errors)
}

fn main() -> ExitCode {
    let a = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let workloads: Vec<Workload> = if let Some(name) = &a.spec {
        vec![Workload::spec(name, a.seed, 0x1_0000, 0x1000_0000)]
    } else {
        let mixes: Vec<usize> = match a.mix {
            Some(m) => vec![m],
            None => (1..=11).collect(),
        };
        mixes
            .iter()
            .flat_map(|&m| mix(m).instantiate(a.seed))
            .collect()
    };
    let many = workloads.len() > 1;
    let mut any_errors = false;
    for (i, w) in workloads.iter().enumerate() {
        let suffix = many.then(|| format!("{i}-{}", w.program.name()));
        match analyze_one(w, &a, suffix.as_deref()) {
            Ok(errors) => any_errors |= errors,
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if a.lint && any_errors {
        eprintln!("analyze: lint errors found");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
