//! The interprocedural (cross-block) def-use / data-dependence graph.
//!
//! Built from reaching definitions over the semantic CFG: an edge
//! `def -> use` means the value written by instruction `def` can still
//! be in its destination register when instruction `use` reads that
//! register on some executable path. A use that can be reached by
//! *program entry itself* (no prior def on some path from the entry)
//! records an entry-use — the input of the use-before-def lint.
//!
//! The graph serializes to Graphviz DOT and to a small hand-rolled
//! JSON dialect (the workspace builds offline with no serde), both
//! deterministic byte-for-byte.

use crate::cfg::{predecessors, reachable, successors, InstIndex};
use smtsim_isa::{ArchReg, BlockId, Program};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One def-use edge: `def` (flat instruction index) reaches `use_` for
/// register `reg`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DepEdge {
    /// Defining instruction (flat index).
    pub def: u32,
    /// Using instruction (flat index).
    pub use_: u32,
    /// The register carrying the dependence.
    pub reg: ArchReg,
}

/// A read that may observe the machine's initial register state (no
/// def on some semantic path from the entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EntryUse {
    /// The reading instruction (flat index).
    pub use_: u32,
    /// The possibly-undefined register.
    pub reg: ArchReg,
}

/// The dependence graph of one program.
pub struct DepGraph {
    ix: InstIndex,
    /// Def-use edges, sorted.
    pub edges: Vec<DepEdge>,
    /// Reads reachable from the entry without an intervening def.
    pub entry_uses: Vec<EntryUse>,
}

/// Sentinel reaching-"definition" standing for the program entry.
const ENTRY_DEF: u32 = u32::MAX;

impl DepGraph {
    /// Builds the graph for `p`.
    pub fn build(p: &Program) -> Self {
        let ix = InstIndex::new(p);
        let live = reachable(p);
        let preds = predecessors(p);
        let nb = p.num_blocks();
        let mut edges = BTreeSet::new();
        let mut entry_uses = BTreeSet::new();
        // Per-register reaching-defs fixpoint at block granularity.
        // Registers are independent, so solve one at a time; each
        // solve is O(blocks × defs-of-reg) per iteration and the def
        // sets are tiny.
        for flat_reg in 0..ArchReg::FLAT_COUNT {
            let reg = unflatten(flat_reg);
            if reg.is_zero() {
                continue;
            }
            // Block-local transfer: last def of `reg` in the block.
            let mut gen_def = vec![None; nb];
            let mut reads_reg = vec![false; nb];
            for (id, b) in p.iter_blocks() {
                for (i, inst) in b.insts.iter().enumerate() {
                    if inst.srcs.contains(&Some(reg)) {
                        reads_reg[id.0 as usize] = true;
                    }
                    if inst.dst == Some(reg) {
                        gen_def[id.0 as usize] = Some(ix.flat(id, i));
                    }
                }
            }
            if gen_def.iter().all(Option::is_none) && !reads_reg.iter().any(|&r| r) {
                continue;
            }
            // in[b] / out[b]: sets of flat def indices (ENTRY_DEF =
            // program entry).
            let mut r_in: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nb];
            let mut r_out: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nb];
            let entry = p.entry().0 as usize;
            r_in[entry].insert(ENTRY_DEF);
            let mut work: Vec<usize> = (0..nb).filter(|&b| live[b]).collect();
            while let Some(b) = work.pop() {
                let mut inn = std::mem::take(&mut r_in[b]);
                for pr in &preds[b] {
                    inn.extend(r_out[pr.0 as usize].iter().copied());
                }
                if b == entry {
                    inn.insert(ENTRY_DEF);
                }
                r_in[b] = inn;
                let out: BTreeSet<u32> = match gen_def[b] {
                    Some(d) => std::iter::once(d).collect(),
                    None => r_in[b].clone(),
                };
                if out != r_out[b] {
                    r_out[b] = out;
                    for s in successors(p.block(BlockId(b as u32))) {
                        if live[s.0 as usize] {
                            work.push(s.0 as usize);
                        }
                    }
                }
            }
            // Walk each live block recording an edge per (reaching
            // def, use) pair.
            for (id, b) in p.iter_blocks() {
                if !live[id.0 as usize] {
                    continue;
                }
                let mut current = r_in[id.0 as usize].clone();
                for (i, inst) in b.insts.iter().enumerate() {
                    let use_ = ix.flat(id, i);
                    if inst.srcs.contains(&Some(reg)) {
                        for &d in &current {
                            if d == ENTRY_DEF {
                                entry_uses.insert(EntryUse { use_, reg });
                            } else {
                                edges.insert(DepEdge { def: d, use_, reg });
                            }
                        }
                    }
                    if inst.dst == Some(reg) {
                        current.clear();
                        current.insert(use_);
                    }
                }
            }
        }
        DepGraph {
            ix,
            edges: edges.into_iter().collect(),
            entry_uses: entry_uses.into_iter().collect(),
        }
    }

    /// Number of instructions indexed.
    pub fn num_insts(&self) -> u32 {
        self.ix.total()
    }

    /// Renders the graph as Graphviz DOT, one node per instruction
    /// clustered by basic block.
    pub fn to_dot(&self, p: &Program) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", p.name());
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        for (id, b) in p.iter_blocks() {
            let _ = writeln!(out, "  subgraph cluster_b{} {{", id.0);
            let _ = writeln!(out, "    label=\"b{}\";", id.0);
            for (i, inst) in b.insts.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    i{} [label=\"{:#x}: {}\"];",
                    self.ix.flat(id, i),
                    p.pc_of(id, i),
                    inst
                );
            }
            let _ = writeln!(out, "  }}");
        }
        for e in &self.edges {
            let _ = writeln!(out, "  i{} -> i{} [label=\"{}\"];", e.def, e.use_, e.reg);
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Renders the graph as JSON: instruction list plus edge list.
    pub fn to_json(&self, p: &Program) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"program\":\"{}\",\"insts\":[", p.name());
        let mut first = true;
        for (id, b) in p.iter_blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"id\":{},\"block\":{},\"pc\":{},\"text\":\"{}\"}}",
                    self.ix.flat(id, i),
                    id.0,
                    p.pc_of(id, i),
                    inst
                );
            }
        }
        out.push_str("],\"edges\":[");
        for (n, e) in self.edges.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"def\":{},\"use\":{},\"reg\":\"{}\"}}",
                e.def, e.use_, e.reg
            );
        }
        out.push_str("],\"entry_uses\":[");
        for (n, e) in self.entry_uses.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"use\":{},\"reg\":\"{}\"}}", e.use_, e.reg);
        }
        out.push_str("]}");
        out
    }
}

/// Inverse of [`ArchReg::flat_index`].
fn unflatten(flat: usize) -> ArchReg {
    if flat < smtsim_isa::NUM_ARCH_INT {
        ArchReg::int(flat as u8)
    } else {
        ArchReg::fp((flat - smtsim_isa::NUM_ARCH_INT) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_isa::{BasicBlock, OpClass, StaticInst, StreamId};

    fn alu(dst: u8, src: u8) -> StaticInst {
        StaticInst::compute(
            OpClass::IntAlu,
            ArchReg::int(dst),
            [Some(ArchReg::int(src)), None],
        )
    }

    #[test]
    fn straight_line_edges() {
        // i0: r1 <- r9 ; i1: r2 <- r1 ; i2: r3 <- r2.
        let b0 = BasicBlock::new(vec![alu(1, 9), alu(2, 1), alu(3, 2)], BlockId(0));
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let g = DepGraph::build(&p);
        assert!(g.edges.contains(&DepEdge {
            def: 0,
            use_: 1,
            reg: ArchReg::int(1)
        }));
        assert!(g.edges.contains(&DepEdge {
            def: 1,
            use_: 2,
            reg: ArchReg::int(2)
        }));
        // r9 is never defined: entry use.
        assert!(g.entry_uses.contains(&EntryUse {
            use_: 0,
            reg: ArchReg::int(9)
        }));
    }

    #[test]
    fn cross_block_and_ring_edges() {
        // b0: r1 <- r1 ; b1: r2 <- r1 ; ring. The def in b0 reaches the
        // use in b1 across the block boundary, and b0's own use of r1
        // sees the def from the previous ring iteration.
        let b0 = BasicBlock::new(vec![alu(1, 1)], BlockId(1));
        let b1 = BasicBlock::new(vec![alu(2, 1)], BlockId(0));
        let p = Program::new("t", vec![b0, b1], BlockId(0), 0);
        let g = DepGraph::build(&p);
        assert!(g.edges.contains(&DepEdge {
            def: 0,
            use_: 1,
            reg: ArchReg::int(1)
        }));
        assert!(g.edges.contains(&DepEdge {
            def: 0,
            use_: 0,
            reg: ArchReg::int(1)
        }));
        // First iteration reads the initial machine state.
        assert!(g.entry_uses.contains(&EntryUse {
            use_: 0,
            reg: ArchReg::int(1)
        }));
    }

    #[test]
    fn dot_and_json_are_deterministic_and_complete() {
        let b0 = BasicBlock::new(
            vec![
                StaticInst::load(ArchReg::int(1), None, StreamId(0)),
                alu(2, 1),
            ],
            BlockId(0),
        );
        let p = Program::new("two", vec![b0], BlockId(0), 0x1000);
        let g = DepGraph::build(&p);
        let dot = g.to_dot(&p);
        assert_eq!(dot, DepGraph::build(&p).to_dot(&p));
        assert!(dot.contains("digraph \"two\""));
        assert!(dot.contains("i0 -> i1"));
        let json = g.to_json(&p);
        assert_eq!(json, DepGraph::build(&p).to_json(&p));
        assert!(json.contains("\"def\":0"));
        assert!(json.contains("\"entry_uses\""));
        assert_eq!(g.num_insts(), 2);
    }
}
