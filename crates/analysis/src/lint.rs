//! Well-formedness lints over generated programs.
//!
//! Severity semantics: `Error` findings describe programs the
//! simulator cannot execute meaningfully (dangling stream handles,
//! code that can never run, traps that halt forward progress through
//! the ring); `analyze --lint` fails on them. `Warning` findings
//! describe legal-but-suspicious shapes — in particular reads that may
//! observe the machine's *initial* register state, which the executor
//! defines (every architectural register starts defined), but which a
//! generator normally only produces for the well-known convention
//! registers (`BASE`-style address anchors).

use crate::cfg::{reachable, scc_ids, successors};
use crate::depgraph::DepGraph;
use smtsim_isa::{InstRole, Program};
use smtsim_workload::Workload;
use std::fmt;

/// Lint rule identifiers (stable names for reports and CI logs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// A register read may happen before any write on some path from
    /// the entry (the read observes initial machine state).
    UseBeforeDef,
    /// A block can never execute (no semantic path from the entry).
    UnreachableBlock,
    /// A reachable cycle with no semantic exit edge: once entered,
    /// control never returns to the rest of the program, so loop
    /// trip counts and stream cursors outside it stop advancing — no
    /// commit progress through the ring.
    NoProgressLoop,
    /// A load/store references a stream id with no descriptor.
    UndefinedStream,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::UseBeforeDef => "use-before-def",
            Rule::UnreachableBlock => "unreachable-block",
            Rule::NoProgressLoop => "no-progress-loop",
            Rule::UndefinedStream => "undefined-stream",
        };
        f.write_str(s)
    }
}

/// Finding severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but executable.
    Warning,
    /// The program is ill-formed for simulation purposes.
    Error,
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Severity of this occurrence.
    pub severity: Severity,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}]: {}", self.rule, self.message)
    }
}

/// Lints `p`. `stream_count` is the length of the workload's stream
/// descriptor table (`None` skips the stream check when only a bare
/// program is available).
pub fn lint_program(p: &Program, stream_count: Option<usize>) -> Vec<Finding> {
    let mut out = Vec::new();
    let live = reachable(p);

    for (b, &ok) in live.iter().enumerate() {
        if !ok {
            out.push(Finding {
                rule: Rule::UnreachableBlock,
                severity: Severity::Error,
                message: format!("block b{b} is unreachable from the entry"),
            });
        }
    }

    // Trap loops: a sink SCC (no semantic edge leaving it) that is
    // reachable but does not contain the entry. Every block has a
    // successor, so a sink SCC is necessarily a cycle.
    let scc = scc_ids(p);
    let num_sccs = scc.iter().map(|&c| c + 1).max().unwrap_or(0);
    let mut has_exit = vec![false; num_sccs as usize];
    for (id, b) in p.iter_blocks() {
        for s in successors(b) {
            if scc[s.0 as usize] != scc[id.0 as usize] {
                has_exit[scc[id.0 as usize] as usize] = true;
            }
        }
    }
    let entry_scc = scc[p.entry().0 as usize];
    for (id, _) in p.iter_blocks() {
        let c = scc[id.0 as usize];
        let first_of_scc = scc.iter().position(|&x| x == c) == Some(id.0 as usize);
        if live[id.0 as usize] && !has_exit[c as usize] && c != entry_scc && first_of_scc {
            let members: Vec<String> = scc
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x == c)
                .map(|(b, _)| format!("b{b}"))
                .collect();
            out.push(Finding {
                rule: Rule::NoProgressLoop,
                severity: Severity::Error,
                message: format!(
                    "reachable loop {{{}}} has no exit: the ring beyond it never commits again",
                    members.join(", ")
                ),
            });
        }
    }

    // Stream handles must index the descriptor table.
    if let Some(n) = stream_count {
        for (id, b) in p.iter_blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                if let InstRole::Mem { stream } = inst.role {
                    if stream.0 as usize >= n {
                        out.push(Finding {
                            rule: Rule::UndefinedStream,
                            severity: Severity::Error,
                            message: format!(
                                "{:#x} ({inst}) references stream s{} but only {n} descriptors exist",
                                p.pc_of(id, i),
                                stream.0
                            ),
                        });
                    }
                }
            }
        }
    }

    // Reads that may observe initial machine state, reported once per
    // register (the first offending instruction, by flat index).
    let g = DepGraph::build(p);
    let mut seen_regs = Vec::new();
    for eu in &g.entry_uses {
        if seen_regs.contains(&eu.reg) {
            continue;
        }
        seen_regs.push(eu.reg);
        out.push(Finding {
            rule: Rule::UseBeforeDef,
            severity: Severity::Warning,
            message: format!(
                "{} may be read before any def (first at flat inst {}); \
                 the read observes initial machine state",
                eu.reg, eu.use_
            ),
        });
    }

    out
}

/// Lints a full workload (program + stream descriptor table).
pub fn lint_workload(w: &Workload) -> Vec<Finding> {
    lint_program(&w.program, Some(w.streams.len()))
}

/// Do any findings have `Error` severity?
pub fn has_errors(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_isa::{ArchReg, BasicBlock, BlockId, BranchBehavior, OpClass, StaticInst, StreamId};

    fn alu(dst: u8, src: u8) -> StaticInst {
        StaticInst::compute(
            OpClass::IntAlu,
            ArchReg::int(dst),
            [Some(ArchReg::int(src)), None],
        )
    }

    fn findings_for(p: &Program, rule: Rule) -> Vec<Finding> {
        lint_program(p, None)
            .into_iter()
            .filter(|f| f.rule == rule)
            .collect()
    }

    #[test]
    fn unreachable_block_detected() {
        // b0 always branches to itself; b1 can never run.
        let b0 = BasicBlock::new(
            vec![StaticInst::branch(None, BranchBehavior::Always, BlockId(0))],
            BlockId(1),
        );
        let b1 = BasicBlock::new(vec![alu(1, 1)], BlockId(0));
        let p = Program::new("t", vec![b0, b1], BlockId(0), 0);
        let f = findings_for(&p, Rule::UnreachableBlock);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("b1"));
        assert!(has_errors(&lint_program(&p, None)));
    }

    #[test]
    fn trap_loop_detected() {
        // Ring b0 -> b1(biased) -> {b0 | b2}; b2 always loops on itself.
        let b0 = BasicBlock::new(vec![alu(1, 1)], BlockId(1));
        let b1 = BasicBlock::new(
            vec![StaticInst::branch(
                Some(ArchReg::int(1)),
                BranchBehavior::Biased { taken_pm: 500 },
                BlockId(0),
            )],
            BlockId(2),
        );
        let b2 = BasicBlock::new(
            vec![StaticInst::branch(None, BranchBehavior::Always, BlockId(2))],
            BlockId(0),
        );
        let p = Program::new("t", vec![b0, b1, b2], BlockId(0), 0);
        let f = findings_for(&p, Rule::NoProgressLoop);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("b2"));
    }

    #[test]
    fn entry_scc_is_not_a_trap() {
        // The whole ring is one SCC containing the entry: clean.
        let b0 = BasicBlock::new(vec![alu(1, 1)], BlockId(1));
        let b1 = BasicBlock::new(vec![alu(2, 1)], BlockId(0));
        let p = Program::new("t", vec![b0, b1], BlockId(0), 0);
        assert!(findings_for(&p, Rule::NoProgressLoop).is_empty());
        assert!(findings_for(&p, Rule::UnreachableBlock).is_empty());
    }

    #[test]
    fn undefined_stream_detected() {
        let b0 = BasicBlock::new(
            vec![StaticInst::load(ArchReg::int(1), None, StreamId(9))],
            BlockId(0),
        );
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let f: Vec<Finding> = lint_program(&p, Some(7))
            .into_iter()
            .filter(|f| f.rule == Rule::UndefinedStream)
            .collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Error);
        // With enough descriptors the finding disappears.
        assert!(lint_program(&p, Some(10))
            .iter()
            .all(|f| f.rule != Rule::UndefinedStream));
    }

    #[test]
    fn use_before_def_is_a_warning() {
        // r9 is read but never written anywhere.
        let b0 = BasicBlock::new(vec![alu(1, 9)], BlockId(0));
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let f = findings_for(&p, Rule::UseBeforeDef);
        assert!(f.iter().any(|f| f.message.contains("r9")));
        assert!(f.iter().all(|f| f.severity == Severity::Warning));
        assert!(!has_errors(&f));
    }

    #[test]
    fn generated_workloads_are_error_free() {
        let w = Workload::spec("art", 7, 0x1_0000, 0x1000_0000);
        let findings = lint_workload(&w);
        assert!(
            !has_errors(&findings),
            "generator produced an ill-formed program: {:?}",
            findings
                .iter()
                .filter(|f| f.severity == Severity::Error)
                .collect::<Vec<_>>()
        );
    }
}
