//! Exact static Degree-of-Dependence bounds.
//!
//! The paper's DoD hardware (§4.1) *approximates* the number of
//! instructions dependent on an L2-missing load by counting unexecuted
//! ROB entries in the first-level window behind it. Because smtsim
//! programs are static CFGs with fixed register dataflow, the true
//! quantity is statically computable: for every static load this pass
//! explores all semantic CFG paths of `window` instructions following
//! the load, propagating a register taint set seeded with the load's
//! destination, and reports the **min and max** number of (transitively)
//! dependent instructions over those paths.
//!
//! Soundness contract used by the pipeline oracle: any dynamic window
//! behind the load is a prefix of some semantic path, and taint
//! counting is monotone in path length, so the *exact dependent count*
//! observed at fill time never exceeds [`LoadBounds::max`]. The `min`
//! only applies to full-length windows (a dynamic window is truncated
//! when fewer than `window` younger instructions are in flight).
//!
//! Taint follows the machine's hardwired-zero rule
//! ([`ArchReg::is_zero`]): writes to `r31`/`f31` are discarded and
//! reads return a constant, so dependence never flows through them.

use crate::cfg::{successors, InstIndex};
use smtsim_isa::{ArchReg, BlockId, OpClass, Program, StaticInst};
use std::collections::BTreeMap;

/// Entries the paper's 5-bit counter scans: the 32-entry first level
/// minus the load itself.
pub const L1_WINDOW: usize = 31;

/// Memoization-state budget per load. Beyond it the pass abandons
/// exactness for that load and reports the conservative interval
/// `[0, remaining]` (still sound, never tight). Generated workloads
/// stay orders of magnitude below this; the guard exists for
/// adversarial CFGs (e.g. 31 consecutive single-instruction branch
/// blocks would otherwise enumerate 2^31 paths).
const STATE_BUDGET: usize = 1 << 17;

/// Static dependence interval of one load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadBounds {
    /// The load's PC.
    pub pc: u64,
    /// Containing block.
    pub block: BlockId,
    /// Index within the block.
    pub idx: usize,
    /// Fewest dependent instructions over any full `window`-length path.
    pub min: u32,
    /// Most dependent instructions over any path of up to `window`
    /// instructions.
    pub max: u32,
    /// `false` when the state budget was exhausted and the interval
    /// widened to the conservative fallback.
    pub exact: bool,
}

/// Per-program static DoD analysis result.
pub struct DodAnalysis {
    /// Window length used (instructions scanned behind the load).
    pub window: usize,
    /// One entry per static load, ascending by PC.
    pub loads: Vec<LoadBounds>,
}

impl DodAnalysis {
    /// Computes bounds for every static load of `p` with the given
    /// window (use [`L1_WINDOW`] to match the pipeline's counter).
    pub fn compute(p: &Program, window: usize) -> Self {
        let ix = InstIndex::new(p);
        let mut loads = Vec::new();
        for (id, b) in p.iter_blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                if inst.op != OpClass::Load {
                    continue;
                }
                let (min, max, exact) = bound_one(p, &ix, id, i, inst, window);
                loads.push(LoadBounds {
                    pc: p.pc_of(id, i),
                    block: id,
                    idx: i,
                    min,
                    max,
                    exact,
                });
            }
        }
        loads.sort_by_key(|l| l.pc);
        DodAnalysis { window, loads }
    }

    /// Bound entry for the load at `pc`, if any.
    pub fn for_pc(&self, pc: u64) -> Option<&LoadBounds> {
        self.loads
            .binary_search_by_key(&pc, |l| l.pc)
            .ok()
            .map(|i| &self.loads[i])
    }

    /// The `pc -> max` table the pipeline oracle consumes.
    pub fn max_map(&self) -> BTreeMap<u64, u32> {
        self.loads.iter().map(|l| (l.pc, l.max)).collect()
    }

    /// Were all loads bounded exactly (no state-budget fallback)?
    pub fn all_exact(&self) -> bool {
        self.loads.iter().all(|l| l.exact)
    }
}

/// Taint bit for `r`, or 0 for absent/hardwired-zero registers.
#[inline]
fn taint_bit(r: Option<ArchReg>) -> u64 {
    match r {
        Some(r) if !r.is_zero() => 1u64 << r.flat_index(),
        _ => 0,
    }
}

/// Applies one instruction to the taint set; returns `(dependent,
/// new_taint)`. An instruction is dependent when any source carries
/// taint; its destination then joins the taint set, otherwise the
/// destination is overwritten with an independent value and leaves it.
#[inline]
fn step_taint(inst: &StaticInst, taint: u64) -> (bool, u64) {
    let dependent = inst.srcs.iter().any(|&s| taint_bit(s) & taint != 0);
    let dst = taint_bit(inst.dst);
    let taint = if dependent { taint | dst } else { taint & !dst };
    (dependent, taint)
}

struct Explorer<'a> {
    p: &'a Program,
    ix: &'a InstIndex,
    /// `(flat position, taint, remaining) -> (min, max)`.
    memo: BTreeMap<(u32, u64, u32), (u32, u32)>,
    exhausted: bool,
}

impl Explorer<'_> {
    /// Dependents along every path starting at flat position `pos` with
    /// `remaining` window slots left.
    fn explore(&mut self, pos: u32, taint: u64, remaining: u32) -> (u32, u32) {
        if remaining == 0 || taint == 0 {
            return (0, 0);
        }
        let key = (pos, taint, remaining);
        if let Some(&cached) = self.memo.get(&key) {
            return cached;
        }
        if self.exhausted || self.memo.len() >= STATE_BUDGET {
            self.exhausted = true;
            return (0, remaining);
        }
        let (block, idx) = self.ix.position(pos);
        let b = self.p.block(block);
        let inst = &b.insts[idx];
        let (dependent, taint) = step_taint(inst, taint);
        let c = u32::from(dependent);
        let last = idx + 1 == b.insts.len();
        let (min, max) = if !last {
            self.explore(pos + 1, taint, remaining - 1)
        } else {
            let mut min = u32::MAX;
            let mut max = 0;
            for s in successors(b) {
                let (lo, hi) = self.explore(self.ix.flat(s, 0), taint, remaining - 1);
                min = min.min(lo);
                max = max.max(hi);
            }
            (min, max)
        };
        let out = (c + min, c + max);
        if !self.exhausted {
            self.memo.insert(key, out);
        }
        out
    }
}

fn bound_one(
    p: &Program,
    ix: &InstIndex,
    block: BlockId,
    idx: usize,
    load: &StaticInst,
    window: usize,
) -> (u32, u32, bool) {
    let seed = taint_bit(load.dst);
    if seed == 0 {
        // A load into the hardwired zero register can have no
        // dependents.
        return (0, 0, true);
    }
    let mut ex = Explorer {
        p,
        ix,
        memo: BTreeMap::new(),
        exhausted: false,
    };
    let b = p.block(block);
    let remaining = u32::try_from(window).unwrap_or(u32::MAX);
    let (min, max) = if idx + 1 < b.insts.len() {
        ex.explore(ix.flat(block, idx + 1), seed, remaining)
    } else {
        let mut min = u32::MAX;
        let mut max = 0;
        for s in successors(b) {
            let (lo, hi) = ex.explore(ix.flat(s, 0), seed, remaining);
            min = min.min(lo);
            max = max.max(hi);
        }
        (min, max)
    };
    (min, max, !ex.exhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_isa::{BasicBlock, BranchBehavior, StreamId};

    fn ld(dst: u8, addr: Option<u8>) -> StaticInst {
        StaticInst::load(ArchReg::int(dst), addr.map(ArchReg::int), StreamId(0))
    }

    fn alu(dst: u8, a: u8, b: Option<u8>) -> StaticInst {
        StaticInst::compute(
            OpClass::IntAlu,
            ArchReg::int(dst),
            [Some(ArchReg::int(a)), b.map(ArchReg::int)],
        )
    }

    #[test]
    fn straight_line_chain_counts_transitively() {
        // load r1; r2 <- r1; r3 <- r2; r4 <- r5 (independent); ring.
        let b0 = BasicBlock::new(
            vec![
                ld(1, None),
                alu(2, 1, None),
                alu(3, 2, None),
                alu(4, 5, None),
            ],
            BlockId(0),
        );
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let a = DodAnalysis::compute(&p, 3);
        assert_eq!(a.loads.len(), 1);
        let l = &a.loads[0];
        assert_eq!((l.min, l.max), (2, 2));
        assert!(l.exact);
    }

    #[test]
    fn kill_stops_the_chain() {
        // load r1; r1 <- r5 (overwrite kills taint); r2 <- r1.
        let b0 = BasicBlock::new(
            vec![ld(1, None), alu(1, 5, None), alu(2, 1, None)],
            BlockId(0),
        );
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let a = DodAnalysis::compute(&p, 2);
        let l = &a.loads[0];
        assert_eq!((l.min, l.max), (0, 0));
    }

    #[test]
    fn zero_register_never_carries_dependence() {
        // load r31 (hardwired); r2 <- r31 reads a constant.
        let b0 = BasicBlock::new(vec![ld(31, None), alu(2, 31, None)], BlockId(0));
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let l = &DodAnalysis::compute(&p, 8).loads[0];
        assert_eq!((l.min, l.max), (0, 0));
    }

    #[test]
    fn branch_divergence_widens_the_interval() {
        // b0: load r1; biased branch -> b2 (taken skips the dependent).
        // b1: r2 <- r1; r3 <- r1   (2 dependents, fallthrough path)
        // b2: r4 <- r5             (independent, both paths converge)
        let b0 = BasicBlock::new(
            vec![
                ld(1, None),
                StaticInst::branch(
                    Some(ArchReg::int(5)),
                    BranchBehavior::Biased { taken_pm: 500 },
                    BlockId(2),
                ),
            ],
            BlockId(1),
        );
        let b1 = BasicBlock::new(vec![alu(2, 1, None), alu(3, 1, None)], BlockId(2));
        let b2 = BasicBlock::new(vec![alu(4, 5, None)], BlockId(0));
        let p = Program::new("t", vec![b0, b1, b2], BlockId(0), 0);
        let a = DodAnalysis::compute(&p, 4);
        let l = &a.loads[0];
        // Taken path: branch, b2, wraps to b0 (load re-defines r1 -> no
        // further dependents). Fallthrough: branch, r2<-r1, r3<-r1, b2.
        assert_eq!((l.min, l.max), (0, 2));
    }

    #[test]
    fn window_truncates_the_count() {
        // Chain of 6 dependents but window of 3 sees only 3.
        let mut insts = vec![ld(1, None)];
        for d in 2..8 {
            insts.push(alu(d, d - 1, None));
        }
        let b0 = BasicBlock::new(insts, BlockId(0));
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let l = &DodAnalysis::compute(&p, 3).loads[0];
        assert_eq!((l.min, l.max), (3, 3));
    }

    #[test]
    fn self_chase_load_re_taints_across_the_ring() {
        // Pointer chase: load r1 <- [r1]; the wrapped-around next
        // instance of the load itself is address-dependent.
        let b0 = BasicBlock::new(vec![ld(1, Some(1)), alu(2, 5, None)], BlockId(0));
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let l = &DodAnalysis::compute(&p, 4).loads[0];
        // Window after the load: alu(indep), load(dep), alu(indep),
        // load(dep) -> exactly 2 dependents on every path.
        assert_eq!((l.min, l.max), (2, 2));
    }

    #[test]
    fn max_map_and_lookup_agree() {
        let b0 = BasicBlock::new(vec![ld(1, None), alu(2, 1, None)], BlockId(0));
        let p = Program::new("t", vec![b0], BlockId(0), 0x4000);
        let a = DodAnalysis::compute(&p, L1_WINDOW);
        let m = a.max_map();
        assert_eq!(m.len(), 1);
        assert_eq!(a.for_pc(0x4000).map(|l| l.max), m.get(&0x4000).copied());
        assert!(a.for_pc(0x4004).is_none());
        assert!(a.all_exact());
    }
}
