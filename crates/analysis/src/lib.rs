//! Static analysis over smtsim programs: the dependence graph, exact
//! Degree-of-Dependence bounds, register liveness, and program lints.
//!
//! The paper's DoD counter (§4.1) and PC-indexed predictors (§4.2) are
//! *approximations* of the true number of load-dependent in-flight
//! instructions. Generated programs are static CFGs with fixed register
//! dataflow, so the true quantity has statically computable bounds —
//! this crate computes them and the simulator harness uses them as an
//! oracle: the exact dependent count measured at L2-fill time must
//! never exceed [`dod::LoadBounds::max`], and the gap between the
//! hardware's unexecuted-entry count and the exact count is the
//! *counter error* reported per scheme.
//!
//! Passes:
//! * [`depgraph`] — interprocedural def-use / data-dependence graph
//!   with DOT and JSON export;
//! * [`dod`] — per-static-load min/max dependent instructions within a
//!   `W`-instruction window (`W` = the 32-entry first-level ROB minus
//!   the load itself);
//! * [`liveness`] — per-block register liveness;
//! * [`lint`] — well-formedness lints (use-before-def, unreachable
//!   blocks, no-progress trap loops, dangling stream ids);
//! * [`cfg`] — shared semantic-CFG scaffolding.
//!
//! The `analyze` binary drives all of them over generated workloads.

pub mod cfg;
pub mod depgraph;
pub mod dod;
pub mod lint;
pub mod liveness;

pub use depgraph::{DepEdge, DepGraph, EntryUse};
pub use dod::{DodAnalysis, LoadBounds, L1_WINDOW};
pub use lint::{has_errors, lint_program, lint_workload, Finding, Rule, Severity};
pub use liveness::Liveness;
