//! Per-block register liveness over the semantic CFG.
//!
//! Classic backward may-analysis: a register is live at a point when
//! some semantic path from that point reads it before writing it.
//! Register sets are `u64` bitmasks over [`ArchReg::flat_index`]
//! (64 architectural registers across both classes); the hardwired
//! zero registers are never considered live — reads of them return a
//! constant, not a carried value.

use crate::cfg::{predecessors, successors};
use smtsim_isa::{ArchReg, BlockId, Program};

/// Bit for `r` in a liveness mask (0 for absent/zero registers).
#[inline]
fn bit(r: Option<ArchReg>) -> u64 {
    match r {
        Some(r) if !r.is_zero() => 1u64 << r.flat_index(),
        _ => 0,
    }
}

/// Liveness fixpoint result.
pub struct Liveness {
    /// Registers live at block entry, indexed by block.
    pub live_in: Vec<u64>,
    /// Registers live at block exit, indexed by block.
    pub live_out: Vec<u64>,
}

impl Liveness {
    /// Computes liveness for `p`.
    pub fn compute(p: &Program) -> Self {
        let n = p.num_blocks();
        // Per-block transfer masks: `used` = read before any write in
        // the block, `defined` = written anywhere in the block.
        let mut used = vec![0u64; n];
        let mut defined = vec![0u64; n];
        for (id, b) in p.iter_blocks() {
            let (u, d) = (&mut used[id.0 as usize], &mut defined[id.0 as usize]);
            for inst in &b.insts {
                for &s in &inst.srcs {
                    let sb = bit(s);
                    if sb & *d == 0 {
                        *u |= sb;
                    }
                }
                *d |= bit(inst.dst);
            }
        }
        let preds = predecessors(p);
        let mut live_in = vec![0u64; n];
        let mut live_out = vec![0u64; n];
        // Worklist iteration to fixpoint (sets only grow).
        let mut work: Vec<usize> = (0..n).collect();
        while let Some(b) = work.pop() {
            let out = successors(p.block(BlockId(b as u32)))
                .iter()
                .fold(0u64, |m, s| m | live_in[s.0 as usize]);
            live_out[b] = out;
            let inn = used[b] | (out & !defined[b]);
            if inn != live_in[b] {
                live_in[b] = inn;
                for pr in &preds[b] {
                    work.push(pr.0 as usize);
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Is `r` live at the entry of `block`?
    pub fn live_at_entry(&self, block: BlockId, r: ArchReg) -> bool {
        !r.is_zero() && self.live_in[block.0 as usize] & (1u64 << r.flat_index()) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_isa::{BasicBlock, OpClass, StaticInst};

    fn alu(dst: u8, src: u8) -> StaticInst {
        StaticInst::compute(
            OpClass::IntAlu,
            ArchReg::int(dst),
            [Some(ArchReg::int(src)), None],
        )
    }

    #[test]
    fn straight_ring_liveness() {
        // b0: r1 <- r2 ; b1: r2 <- r1 ; ring. Both r1 and r2 circulate.
        let b0 = BasicBlock::new(vec![alu(1, 2)], BlockId(1));
        let b1 = BasicBlock::new(vec![alu(2, 1)], BlockId(0));
        let p = Program::new("t", vec![b0, b1], BlockId(0), 0);
        let lv = Liveness::compute(&p);
        assert!(lv.live_at_entry(BlockId(0), ArchReg::int(2)));
        assert!(lv.live_at_entry(BlockId(1), ArchReg::int(1)));
        // r1 is re-defined in b0 before any read on the path from b0.
        assert!(!lv.live_at_entry(BlockId(0), ArchReg::int(1)));
    }

    #[test]
    fn define_before_use_kills_liveness() {
        // b0: r3 <- r4 ; r5 <- r3. r3 is defined before its only use.
        let b0 = BasicBlock::new(vec![alu(3, 4), alu(5, 3)], BlockId(0));
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let lv = Liveness::compute(&p);
        assert!(!lv.live_at_entry(BlockId(0), ArchReg::int(3)));
        assert!(lv.live_at_entry(BlockId(0), ArchReg::int(4)));
    }

    #[test]
    fn zero_register_is_never_live() {
        let b0 = BasicBlock::new(
            vec![StaticInst::compute(
                OpClass::IntAlu,
                ArchReg::int(1),
                [Some(ArchReg::int(31)), None],
            )],
            BlockId(0),
        );
        let p = Program::new("t", vec![b0], BlockId(0), 0);
        let lv = Liveness::compute(&p);
        assert!(!lv.live_at_entry(BlockId(0), ArchReg::int(31)));
    }
}
