//! Property tests for [`EpisodeReconstructor`]: reconstruction over
//! interleaved multi-thread streams must be exactly the per-thread
//! reconstruction, and squash censoring must match a naive oracle.
//!
//! Run with `--features slow-tests`.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use smtsim_obs::{
    Cycle, DenyReason, DodSource, Episode, EpisodeReconstructor, EpisodeSummary, ThreadId,
    TraceEvent,
};
use std::collections::{BTreeMap, BTreeSet};

const THREADS: usize = 3;
const TAGS: u64 = 10;

/// Strategy over one episode-relevant event with its cycle. Tags and
/// threads are drawn from small domains so streams collide on keys
/// (same `(thread, tag)` touched by several events) often.
fn arb_event() -> impl Strategy<Value = (Cycle, TraceEvent)> {
    (
        0u64..2_000, // cycle
        0usize..THREADS,
        0u64..TAGS,
        0u8..8,        // kind selector
        any::<bool>(), // wrong_path / reason / source refinement
        0u32..40,      // dod value
    )
        .prop_map(|(cycle, thread, tag, kind, flag, value)| {
            let ev = match kind {
                0 | 1 => TraceEvent::L2MissDetected {
                    thread,
                    tag,
                    pc: 0x1000 + tag * 4,
                    wrong_path: flag,
                },
                2 => TraceEvent::L2Fill {
                    thread,
                    tag,
                    wrong_path: flag,
                },
                3 => TraceEvent::DodSampled {
                    thread,
                    tag,
                    value,
                    source: if flag {
                        DodSource::CounterAtFill
                    } else {
                        DodSource::CounterAtDecision
                    },
                },
                4 => TraceEvent::L2RobAllocated { thread, tag },
                5 => TraceEvent::L2RobDenied {
                    thread,
                    tag,
                    reason: if flag {
                        DenyReason::Busy
                    } else {
                        DenyReason::HighDod
                    },
                },
                6 => TraceEvent::L2RobReleased {
                    thread,
                    trigger_tag: tag,
                },
                _ => TraceEvent::Squash {
                    thread,
                    first_tag: tag,
                },
            };
            (cycle, ev)
        })
}

/// Strategy over a whole multi-thread stream.
fn arb_stream() -> impl Strategy<Value = Vec<(Cycle, TraceEvent)>> {
    prop::collection::vec(arb_event(), 0..120)
}

/// Splits a stream into per-thread streams, preserving order.
fn per_thread(events: &[(Cycle, TraceEvent)]) -> Vec<Vec<(Cycle, TraceEvent)>> {
    let mut out = vec![Vec::new(); THREADS];
    for &(c, e) in events {
        let t = e.thread().expect("all generated events carry a thread");
        out[t].push((c, e));
    }
    out
}

/// Merges per-thread streams into one, choosing the source thread of
/// each next event with `seed`; per-thread order is preserved.
fn interleave(lanes: &[Vec<(Cycle, TraceEvent)>], seed: u64) -> Vec<(Cycle, TraceEvent)> {
    let mut rng = TestRng::with_seed(seed);
    let mut cursors = vec![0usize; lanes.len()];
    let mut out = Vec::new();
    loop {
        let live: Vec<usize> = (0..lanes.len())
            .filter(|&t| cursors[t] < lanes[t].len())
            .collect();
        if live.is_empty() {
            return out;
        }
        let t = live[rng.below(live.len() as u64) as usize];
        out.push(lanes[t][cursors[t]]);
        cursors[t] += 1;
    }
}

/// Naive squash-censoring oracle: replays the stream linearly and
/// computes, for every `(thread, tag)` key that ever gets an episode
/// entry, the cycle of the first squash that hits it — a squash hits
/// keys that already exist, on the same thread, with `tag >=
/// first_tag`.
fn squash_oracle(events: &[(Cycle, TraceEvent)]) -> BTreeMap<(ThreadId, u64), Option<Cycle>> {
    let mut created: BTreeSet<(ThreadId, u64)> = BTreeSet::new();
    let mut squashed: BTreeMap<(ThreadId, u64), Option<Cycle>> = BTreeMap::new();
    for &(cycle, ev) in events {
        match ev {
            TraceEvent::Squash { thread, first_tag } => {
                for &(t, tag) in created.range((thread, first_tag)..(thread, u64::MAX)) {
                    let slot = squashed.entry((t, tag)).or_insert(None);
                    if slot.is_none() {
                        *slot = Some(cycle);
                    }
                }
            }
            TraceEvent::L2MissDetected { thread, tag, .. }
            | TraceEvent::L2Fill { thread, tag, .. }
            | TraceEvent::DodSampled { thread, tag, .. }
            | TraceEvent::L2RobAllocated { thread, tag }
            | TraceEvent::L2RobDenied { thread, tag, .. }
            | TraceEvent::L2RobReleased {
                thread,
                trigger_tag: tag,
            } => {
                created.insert((thread, tag));
                squashed.entry((thread, tag)).or_insert(None);
            }
            _ => {}
        }
    }
    squashed
}

/// Episodes of `events` restricted to `thread`.
fn episodes_on(events: &[(Cycle, TraceEvent)], thread: ThreadId) -> Vec<Episode> {
    EpisodeReconstructor::from_events(events)
        .into_iter()
        .filter(|e| e.thread == thread)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn reconstruction_is_interleaving_invariant(events in arb_stream(), seed in 0u64..1_000_000) {
        // Threads never interact inside the reconstructor, so any
        // interleaving that preserves per-thread order yields the same
        // episodes as the original stream.
        let lanes = per_thread(&events);
        let shuffled = interleave(&lanes, seed);
        prop_assert_eq!(shuffled.len(), events.len());
        prop_assert_eq!(
            EpisodeReconstructor::from_events(&shuffled),
            EpisodeReconstructor::from_events(&events)
        );
    }

    #[test]
    fn reconstruction_equals_per_thread_projection(events in arb_stream()) {
        // Feeding only thread t's events reconstructs exactly the
        // thread-t episodes of the full stream.
        let lanes = per_thread(&events);
        for (t, lane) in lanes.iter().enumerate() {
            prop_assert_eq!(
                EpisodeReconstructor::from_events(lane),
                episodes_on(&events, t)
            );
        }
    }

    #[test]
    fn squash_censoring_matches_the_naive_oracle(events in arb_stream()) {
        // `squashed_at` semantics: the first squash on the same thread
        // with `first_tag <= tag` that arrives *after* the episode
        // entry exists censors it; later squashes and younger-only
        // squashes do not.
        let episodes = EpisodeReconstructor::from_events(&events);
        let oracle = squash_oracle(&events);
        prop_assert_eq!(episodes.len(), oracle.len());
        for e in &episodes {
            prop_assert_eq!(
                e.squashed_at,
                oracle[&(e.thread, e.tag)],
                "thread {} tag {}",
                e.thread,
                e.tag
            );
        }
    }

    #[test]
    fn episodes_are_sorted_and_unique_by_key(events in arb_stream()) {
        let episodes = EpisodeReconstructor::from_events(&events);
        let keys: Vec<(ThreadId, u64)> = episodes.iter().map(|e| (e.thread, e.tag)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(keys, sorted);
    }

    #[test]
    fn summary_tallies_are_consistent(events in arb_stream()) {
        let episodes = EpisodeReconstructor::from_events(&events);
        let s = EpisodeSummary::from_episodes(&episodes);
        prop_assert_eq!(s.episodes, episodes.len());
        prop_assert!(s.released <= s.allocated);
        prop_assert!(s.allocated <= s.episodes);
        prop_assert!(s.denied_then_granted <= s.denied);
        prop_assert_eq!(
            s.squashed,
            episodes.iter().filter(|e| e.squashed_at.is_some()).count()
        );
        let by_reason: u64 = s.denials_by_reason.iter().sum();
        let total: usize = episodes.iter().map(|e| e.denials.len()).sum();
        prop_assert_eq!(by_reason as usize, total);
        prop_assert!(s.held_n <= s.allocated as u64);
    }
}
