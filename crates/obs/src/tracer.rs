//! The [`Tracer`] sink abstraction and its two canonical
//! implementations: the zero-cost [`NoopTracer`] and the collecting
//! [`TraceLog`].

use crate::event::TraceEvent;
use crate::Cycle;

/// A sink for [`TraceEvent`]s.
///
/// The simulator is generic over its tracer, so the disabled case
/// monomorphizes to nothing: every emission site is guarded by
/// `if T::ENABLED`, a compile-time constant, and [`NoopTracer::record`]
/// is an empty inline function — the optimizer removes both the branch
/// and the event construction. DESIGN.md §Observability documents how
/// this zero-overhead claim is enforced (`sweep_bench` regression gate).
pub trait Tracer {
    /// Whether this tracer actually records anything. Emission sites
    /// check this constant so event construction itself is skipped for
    /// no-op tracers.
    const ENABLED: bool;

    /// Record `event` as having occurred at `cycle`.
    fn record(&mut self, cycle: Cycle, event: TraceEvent);
}

/// The default tracer: records nothing, occupies no space, and
/// compiles away entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _cycle: Cycle, _event: TraceEvent) {}
}

/// A tracer that collects every event, in emission order, into memory.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    /// The recorded `(cycle, event)` stream, in emission order.
    pub events: Vec<(Cycle, TraceEvent)>,
}

impl TraceLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the log, yielding the event stream.
    #[must_use]
    pub fn into_events(self) -> Vec<(Cycle, TraceEvent)> {
        self.events
    }
}

impl Tracer for TraceLog {
    const ENABLED: bool = true;

    fn record(&mut self, cycle: Cycle, event: TraceEvent) {
        self.events.push((cycle, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallKind;

    #[test]
    fn noop_tracer_is_a_zst_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopTracer>(), 0);
        // ENABLED = false is a compile-time constant; record() must
        // still be callable (and do nothing).
        let mut t = NoopTracer;
        t.record(
            1,
            TraceEvent::ThreadStall {
                thread: 0,
                kind: StallKind::RobFull,
            },
        );
    }

    #[test]
    fn trace_log_collects_in_order() {
        let mut log = TraceLog::new();
        assert!(log.is_empty());
        log.record(3, TraceEvent::L2RobAllocated { thread: 1, tag: 7 });
        log.record(
            5,
            TraceEvent::L2RobReleased {
                thread: 1,
                trigger_tag: 7,
            },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.events[0].0, 3);
        assert_eq!(
            log.into_events()[1].1,
            TraceEvent::L2RobReleased {
                thread: 1,
                trigger_tag: 7
            }
        );
    }
}
