//! Observability layer: structured tracing, a metrics registry, and
//! L2-miss episode analytics — DESIGN.md §Observability.
//!
//! The paper's argument runs through micro-episodes: an L2 miss is
//! detected, the degree-of-dependence counter is consulted, the shared
//! second-level ROB partition is (or is not) allocated, and eventually
//! released. This crate gives every layer of the simulator a typed
//! vocabulary for those moments ([`TraceEvent`]), a sink abstraction
//! that costs nothing when disabled ([`Tracer`] / [`NoopTracer`]), an
//! aggregator ([`MetricsRegistry`]) and a reconstructor that folds the
//! flat event stream back into complete episodes ([`EpisodeReconstructor`]).
//!
//! This crate is a dependency leaf: it defines its own `Cycle` /
//! `ThreadId` aliases (structurally identical to the ones in
//! `smtsim-mem` / `smtsim-isa`) so that the memory hierarchy, the
//! pipeline and the experiment layer can all emit events without
//! introducing dependency cycles.

pub mod episode;
pub mod event;
pub mod json;
pub mod metrics;
pub mod tracer;

/// Simulation time in cycles (alias-compatible with `smtsim_mem::Cycle`).
pub type Cycle = u64;

/// Hardware-thread index (alias-compatible with `smtsim_isa::ThreadId`).
pub type ThreadId = usize;

pub use episode::{
    summary_table_header, Episode, EpisodeReconstructor, EpisodeSummary, ProtocolStep,
};
pub use event::{DenyReason, DodSource, StallKind, TraceEvent};
pub use json::{episode_line, episodes_jsonl, event_line, trace_jsonl};
pub use metrics::{Histogram, MetricsRegistry};
pub use tracer::{NoopTracer, TraceLog, Tracer};
