//! The typed event vocabulary emitted by the pipeline, the ROB
//! allocation policy and the memory hierarchy.
//!
//! Every variant carries only plain integers/enums so events are
//! `Copy`-cheap to construct in the hot path and trivially serializable
//! (see [`crate::json`]). Variant and field names are part of the JSONL
//! format documented in EXPERIMENTS.md — treat renames as breaking.

use crate::{Cycle, ThreadId};

/// Why the shared second-level ROB partition was *not* granted to a
/// candidate miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DenyReason {
    /// The partition is currently owned by another tenure.
    Busy,
    /// The degree-of-dependence count was at/above the scheme threshold.
    HighDod,
    /// The DoD predictor had no confident entry for this PC (P-ROB only).
    ColdPredictor,
}

/// Where a sampled degree-of-dependence value came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DodSource {
    /// The dependence counter consulted at allocation-decision time.
    CounterAtDecision,
    /// The dependence counter read when the miss data returned.
    CounterAtFill,
    /// A PC-indexed predictor lookup (P-ROB scheme).
    Predictor,
}

/// What resource a thread failed to dispatch into this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallKind {
    /// No reorder-buffer capacity under the active allocation grant.
    RobFull,
    /// The shared issue queue is full.
    IqFull,
    /// The DCRA per-thread cap is exhausted.
    DcraCap,
    /// The load/store queue is full.
    LsqFull,
    /// No free rename registers.
    NoRegs,
}

/// One observable moment in a simulation, stamped with the cycle it
/// occurred at by the [`crate::Tracer`] that records it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The L2 informed the core that a load missed (start of an episode).
    L2MissDetected {
        /// Thread that issued the missing load.
        thread: ThreadId,
        /// ROB tag of the missing load.
        tag: u64,
        /// Static PC of the load.
        pc: u64,
        /// Whether the load was on a mispredicted (wrong) path.
        wrong_path: bool,
    },
    /// The miss data returned from memory (end of the memory episode).
    L2Fill {
        /// Thread that issued the missing load.
        thread: ThreadId,
        /// ROB tag of the missing load.
        tag: u64,
        /// Whether the load was on a wrong path when the fill arrived.
        wrong_path: bool,
    },
    /// A degree-of-dependence value was sampled.
    DodSampled {
        /// Thread the sample belongs to.
        thread: ThreadId,
        /// ROB tag of the triggering load.
        tag: u64,
        /// The sampled dependence count.
        value: u32,
        /// Where the value came from.
        source: DodSource,
    },
    /// The shared second-level partition was granted to `thread` for
    /// the miss identified by `tag`.
    L2RobAllocated {
        /// Thread the partition was granted to.
        thread: ThreadId,
        /// ROB tag of the trigger load.
        tag: u64,
    },
    /// An allocation request was denied.
    L2RobDenied {
        /// Thread whose request was denied.
        thread: ThreadId,
        /// ROB tag of the candidate load.
        tag: u64,
        /// Why the request was denied.
        reason: DenyReason,
    },
    /// The tenure anchored on `trigger_tag` released the partition.
    L2RobReleased {
        /// Thread that held the partition.
        thread: ThreadId,
        /// ROB tag of the load whose miss triggered the tenure.
        trigger_tag: u64,
    },
    /// A thread could not dispatch this cycle.
    ThreadStall {
        /// The stalled thread.
        thread: ThreadId,
        /// The resource that blocked dispatch.
        kind: StallKind,
    },
    /// Periodic per-thread reorder-buffer occupancy sample.
    RobOccupancy {
        /// Thread being sampled.
        thread: ThreadId,
        /// Number of in-flight instructions in the thread's ROB.
        occupancy: u32,
    },
    /// A branch misprediction squashed the thread from `first_tag` on.
    Squash {
        /// The squashed thread.
        thread: ThreadId,
        /// Oldest tag removed by the squash.
        first_tag: u64,
    },
    /// An instruction retired architecturally (popped executed from the
    /// ROB head on the correct path). The stream of `Commit` events per
    /// thread *is* the architectural execution — the conformance oracle
    /// (crate `smtsim-conform`) compares it against an in-order
    /// functional reference, so field semantics are load-bearing.
    Commit {
        /// Thread that committed the instruction.
        thread: ThreadId,
        /// ROB tag of the committed instruction.
        tag: u64,
        /// Per-thread architectural sequence number (gapless from 0).
        seq: u64,
        /// Static PC of the instruction.
        pc: u64,
        /// Destination register as `flat_index() + 1`, or 0 for none.
        dst: u32,
        /// Effective memory address for loads/stores, 0 otherwise.
        mem_addr: u64,
        /// Resolved branch direction (false for non-branches).
        taken: bool,
    },
    /// The memory hierarchy scheduled a fill from DRAM.
    MemFillScheduled {
        /// Cache-line address being filled.
        line_addr: u64,
        /// Cycle the transfer completes.
        complete_at: Cycle,
    },
}

impl TraceEvent {
    /// The hardware thread this event belongs to, if it is per-thread.
    #[must_use]
    pub fn thread(&self) -> Option<ThreadId> {
        match *self {
            TraceEvent::L2MissDetected { thread, .. }
            | TraceEvent::L2Fill { thread, .. }
            | TraceEvent::DodSampled { thread, .. }
            | TraceEvent::L2RobAllocated { thread, .. }
            | TraceEvent::L2RobDenied { thread, .. }
            | TraceEvent::L2RobReleased { thread, .. }
            | TraceEvent::ThreadStall { thread, .. }
            | TraceEvent::RobOccupancy { thread, .. }
            | TraceEvent::Squash { thread, .. }
            | TraceEvent::Commit { thread, .. } => Some(thread),
            TraceEvent::MemFillScheduled { .. } => None,
        }
    }

    /// A stable, lowercase name for the variant (the JSONL `event` key
    /// and the metrics-counter key prefix).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::L2MissDetected { .. } => "l2_miss_detected",
            TraceEvent::L2Fill { .. } => "l2_fill",
            TraceEvent::DodSampled { .. } => "dod_sampled",
            TraceEvent::L2RobAllocated { .. } => "l2_rob_allocated",
            TraceEvent::L2RobDenied { .. } => "l2_rob_denied",
            TraceEvent::L2RobReleased { .. } => "l2_rob_released",
            TraceEvent::ThreadStall { .. } => "thread_stall",
            TraceEvent::RobOccupancy { .. } => "rob_occupancy",
            TraceEvent::Squash { .. } => "squash",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::MemFillScheduled { .. } => "mem_fill_scheduled",
        }
    }
}

impl DenyReason {
    /// Number of deny reasons. Tied to [`DenyReason::index`] by the
    /// const check below: adding a variant without updating `COUNT`,
    /// `ALL` and every indexed consumer is a compile error, not a
    /// silently-unknown serialization.
    pub const COUNT: usize = 3;

    /// Every reason, in `index()` order. Iterate this instead of
    /// hand-listing variants so new reasons propagate automatically.
    pub const ALL: [Self; Self::COUNT] = [Self::Busy, Self::HighDod, Self::ColdPredictor];

    /// Dense index for per-reason arrays (`[T; DenyReason::COUNT]`).
    /// The match is exhaustive on purpose — this is the coverage
    /// bridge that breaks the build when a reason is added.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            DenyReason::Busy => 0,
            DenyReason::HighDod => 1,
            DenyReason::ColdPredictor => 2,
        }
    }

    /// Stable lowercase name (JSONL field value / metrics-key suffix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DenyReason::Busy => "busy",
            DenyReason::HighDod => "high_dod",
            DenyReason::ColdPredictor => "cold_predictor",
        }
    }
}

// `ALL` must enumerate every reason exactly once, in `index()` order.
const _: () = {
    let mut i = 0;
    while i < DenyReason::COUNT {
        assert!(
            DenyReason::ALL[i].index() == i,
            "DenyReason::ALL out of index order"
        );
        i += 1;
    }
};

impl DodSource {
    /// Stable lowercase name (JSONL field value / metrics-key suffix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DodSource::CounterAtDecision => "counter_at_decision",
            DodSource::CounterAtFill => "counter_at_fill",
            DodSource::Predictor => "predictor",
        }
    }
}

impl StallKind {
    /// Stable lowercase name (JSONL field value / metrics-key suffix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StallKind::RobFull => "rob_full",
            StallKind::IqFull => "iq_full",
            StallKind::DcraCap => "dcra_cap",
            StallKind::LsqFull => "lsq_full",
            StallKind::NoRegs => "no_regs",
        }
    }
}
