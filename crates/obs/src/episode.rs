//! Folding the flat event stream back into complete L2-miss episodes:
//! detect → decision(s) → fill → release, with cycle timestamps.
//!
//! An *episode* is keyed by `(thread, tag)` of the missing load. The
//! allocation policy may deny the episode several times (the 10-cycle
//! recheck), grant it, and — once granted — the eventual
//! `L2RobReleased` carries the trigger tag, which is how the release
//! is matched back to the episode that opened the tenure.

use crate::event::{DenyReason, DodSource, TraceEvent};
use crate::{Cycle, ThreadId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One reconstructed L2-miss episode.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Episode {
    /// Thread that issued the missing load.
    pub thread: ThreadId,
    /// ROB tag of the missing load.
    pub tag: u64,
    /// Static PC of the load (0 when the detect event was not seen).
    pub pc: u64,
    /// Cycle the miss was detected.
    pub detected_at: Option<Cycle>,
    /// Whether the load was wrong-path at detection time *or* by the
    /// time the fill arrived (merged flag used by the summary).
    pub wrong_path: bool,
    /// Whether the load was already wrong-path when the miss was
    /// detected. Decisions (grant/deny/decision samples) are only
    /// legal for episodes where this is `false` — the allocator never
    /// sees wrong-path misses.
    pub wrong_path_at_detect: bool,
    /// Every denial the episode accumulated, in order.
    pub denials: Vec<(Cycle, DenyReason)>,
    /// Cycle the second-level partition was granted, if ever.
    pub allocated_at: Option<Cycle>,
    /// DoD sampled at decision time (counter or predictor).
    pub dod_at_decision: Option<u32>,
    /// DoD counter value read when the fill arrived.
    pub dod_at_fill: Option<u32>,
    /// Cycle the miss data returned.
    pub filled_at: Option<Cycle>,
    /// Cycle the tenure anchored on this episode released the partition.
    pub released_at: Option<Cycle>,
    /// Cycle the load was squashed, if a squash removed it first.
    pub squashed_at: Option<Cycle>,
}

impl Episode {
    /// Whether the episode was granted the shared partition.
    #[must_use]
    pub fn allocated(&self) -> bool {
        self.allocated_at.is_some()
    }

    /// Tenure length in cycles, when both endpoints were observed.
    #[must_use]
    pub fn held_cycles(&self) -> Option<Cycle> {
        match (self.allocated_at, self.released_at) {
            (Some(a), Some(r)) => Some(r.saturating_sub(a)),
            _ => None,
        }
    }

    /// Miss latency in cycles (detect → fill), when both were observed.
    #[must_use]
    pub fn miss_latency(&self) -> Option<Cycle> {
        match (self.detected_at, self.filled_at) {
            (Some(d), Some(f)) => Some(f.saturating_sub(d)),
            _ => None,
        }
    }

    /// Project the episode onto the abstract transfer-protocol
    /// alphabet, ordered by cycle (ties broken in protocol order:
    /// detect < deny < grant < fill < squash < release). This is the
    /// bridge the model checker (`smtsim-check`) replays against the
    /// abstract per-episode state machine.
    #[must_use]
    pub fn protocol_steps(&self) -> Vec<(Cycle, ProtocolStep)> {
        let mut steps: Vec<(Cycle, ProtocolStep)> = Vec::new();
        if let Some(c) = self.detected_at {
            steps.push((
                c,
                ProtocolStep::Detected {
                    wrong_path: self.wrong_path_at_detect,
                },
            ));
        }
        for &(c, reason) in &self.denials {
            steps.push((c, ProtocolStep::Denied(reason)));
        }
        if let Some(c) = self.allocated_at {
            steps.push((c, ProtocolStep::Granted));
        }
        if let Some(c) = self.filled_at {
            steps.push((c, ProtocolStep::Filled));
        }
        if let Some(c) = self.squashed_at {
            steps.push((c, ProtocolStep::Squashed));
        }
        if let Some(c) = self.released_at {
            steps.push((c, ProtocolStep::Released));
        }
        steps.sort_by_key(|&(c, s)| (c, s.rank()));
        steps
    }
}

/// One abstract transition in an episode's life, in the vocabulary of
/// the protocol model (`smtsim-check`). The projection deliberately
/// drops cycle-accurate detail (DoD values, stall context) — only the
/// protocol-relevant order of moves survives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtocolStep {
    /// The miss entered the system (episode opened).
    Detected {
        /// Wrong-path at detection ⟹ the allocator never saw it.
        wrong_path: bool,
    },
    /// The allocator denied the candidate.
    Denied(DenyReason),
    /// The shared partition was granted to this episode.
    Granted,
    /// The miss data returned.
    Filled,
    /// A squash removed the load.
    Squashed,
    /// The tenure anchored on this episode released the partition.
    Released,
}

impl ProtocolStep {
    /// Canonical intra-cycle ordering used by
    /// [`Episode::protocol_steps`] to break cycle ties.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            ProtocolStep::Detected { .. } => 0,
            ProtocolStep::Denied(_) => 1,
            ProtocolStep::Granted => 2,
            ProtocolStep::Filled => 3,
            ProtocolStep::Squashed => 4,
            ProtocolStep::Released => 5,
        }
    }

    /// Stable lowercase name for reports and counterexample traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtocolStep::Detected { .. } => "detected",
            ProtocolStep::Denied(_) => "denied",
            ProtocolStep::Granted => "granted",
            ProtocolStep::Filled => "filled",
            ProtocolStep::Squashed => "squashed",
            ProtocolStep::Released => "released",
        }
    }
}

/// Aggregate episode statistics for one simulation (one sweep cell).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpisodeSummary {
    /// Total reconstructed episodes.
    pub episodes: usize,
    /// Episodes that were granted the partition.
    pub allocated: usize,
    /// Granted episodes whose release was also observed.
    pub released: usize,
    /// Episodes denied at least once.
    pub denied: usize,
    /// Denials by reason, indexed by [`DenyReason::index`] (so the
    /// layout is `[busy, high_dod, cold_predictor]`; adding a reason
    /// grows this array at compile time).
    pub denials_by_reason: [u64; DenyReason::COUNT],
    /// Episodes that were denied first and granted later (recheck wins).
    pub denied_then_granted: usize,
    /// Episodes whose load was squashed.
    pub squashed: usize,
    /// Wrong-path episodes.
    pub wrong_path: usize,
    /// Sum/count of observed tenure lengths.
    pub held_sum: u64,
    /// Number of episodes contributing to `held_sum`.
    pub held_n: u64,
    /// Sum/count of observed detect→fill latencies.
    pub latency_sum: u64,
    /// Number of episodes contributing to `latency_sum`.
    pub latency_n: u64,
}

impl EpisodeSummary {
    /// Fold `episodes` into a summary.
    #[must_use]
    pub fn from_episodes(episodes: &[Episode]) -> Self {
        let mut s = Self::default();
        for e in episodes {
            s.episodes += 1;
            if e.allocated() {
                s.allocated += 1;
                if e.released_at.is_some() {
                    s.released += 1;
                }
                if !e.denials.is_empty() {
                    s.denied_then_granted += 1;
                }
            }
            if !e.denials.is_empty() {
                s.denied += 1;
            }
            for (_, r) in &e.denials {
                s.denials_by_reason[r.index()] += 1;
            }
            if e.squashed_at.is_some() {
                s.squashed += 1;
            }
            if e.wrong_path {
                s.wrong_path += 1;
            }
            if let Some(h) = e.held_cycles() {
                s.held_sum += h;
                s.held_n += 1;
            }
            if let Some(l) = e.miss_latency() {
                s.latency_sum += l;
                s.latency_n += 1;
            }
        }
        s
    }

    /// Mean tenure length, when any tenure completed.
    #[must_use]
    pub fn mean_held(&self) -> Option<f64> {
        mean(self.held_sum, self.held_n)
    }

    /// Mean detect→fill latency, when any episode completed.
    #[must_use]
    pub fn mean_latency(&self) -> Option<f64> {
        mean(self.latency_sum, self.latency_n)
    }

    /// One fixed-width table row (see [`summary_table_header`]).
    #[must_use]
    pub fn render_row(&self, label: &str) -> String {
        let fmt_mean = |m: Option<f64>| m.map_or_else(|| "n/a".to_owned(), |v| format!("{v:.1}"));
        // Length-checked destructure: a new DenyReason variant changes
        // COUNT and fails here until the table gains a column.
        let [busy, dod, cold] = self.denials_by_reason;
        format!(
            "{label:<28} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9} {:>9}\n",
            self.episodes,
            self.allocated,
            self.released,
            busy,
            dod,
            cold,
            self.denied_then_granted,
            fmt_mean(self.mean_held()),
            fmt_mean(self.mean_latency()),
        )
    }
}

/// Exact mean of two u64 tallies without lossy casts.
fn mean(sum: u64, n: u64) -> Option<f64> {
    if n == 0 {
        return None;
    }
    let to_f64 = |v: u64| u32::try_from(v).map_or_else(|_| f64::from(u32::MAX), f64::from);
    Some(to_f64(sum) / to_f64(n))
}

/// Header line matching [`EpisodeSummary::render_row`].
#[must_use]
pub fn summary_table_header() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9} {:>9}",
        "mix/config",
        "episod",
        "alloc",
        "relsd",
        "d.busy",
        "d.dod",
        "d.cold",
        "re-won",
        "held.avg",
        "lat.avg"
    );
    out
}

/// Folds a `(cycle, event)` stream into [`Episode`]s.
#[derive(Clone, Debug, Default)]
pub struct EpisodeReconstructor {
    /// Completed + in-progress episodes keyed by `(thread, tag)`.
    episodes: BTreeMap<(ThreadId, u64), Episode>,
    /// The trigger tag of the open tenure per thread, to match
    /// releases that arrive without a grant in the stream (none today,
    /// but keeps the fold total).
    open_tenure: BTreeMap<ThreadId, u64>,
}

impl EpisodeReconstructor {
    /// An empty reconstructor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build episodes directly from an event stream.
    #[must_use]
    pub fn from_events(events: &[(Cycle, TraceEvent)]) -> Vec<Episode> {
        let mut rec = Self::new();
        for (cycle, ev) in events {
            rec.feed(*cycle, ev);
        }
        rec.finish()
    }

    fn entry(&mut self, thread: ThreadId, tag: u64) -> &mut Episode {
        self.episodes
            .entry((thread, tag))
            .or_insert_with(|| Episode {
                thread,
                tag,
                ..Episode::default()
            })
    }

    /// Fold one event.
    pub fn feed(&mut self, cycle: Cycle, event: &TraceEvent) {
        match *event {
            TraceEvent::L2MissDetected {
                thread,
                tag,
                pc,
                wrong_path,
            } => {
                let e = self.entry(thread, tag);
                e.pc = pc;
                e.wrong_path = wrong_path;
                e.wrong_path_at_detect = wrong_path;
                e.detected_at = Some(cycle);
            }
            TraceEvent::L2Fill {
                thread,
                tag,
                wrong_path,
            } => {
                let e = self.entry(thread, tag);
                e.filled_at = Some(cycle);
                // A fill can arrive after the path was resolved wrong;
                // keep the episode marked wrong-path either way.
                e.wrong_path |= wrong_path;
            }
            TraceEvent::DodSampled {
                thread,
                tag,
                value,
                source,
            } => {
                let e = self.entry(thread, tag);
                match source {
                    DodSource::CounterAtFill => e.dod_at_fill = Some(value),
                    DodSource::CounterAtDecision | DodSource::Predictor => {
                        e.dod_at_decision = Some(value);
                    }
                }
            }
            TraceEvent::L2RobAllocated { thread, tag } => {
                self.entry(thread, tag).allocated_at = Some(cycle);
                self.open_tenure.insert(thread, tag);
            }
            TraceEvent::L2RobDenied {
                thread,
                tag,
                reason,
            } => {
                self.entry(thread, tag).denials.push((cycle, reason));
            }
            TraceEvent::L2RobReleased {
                thread,
                trigger_tag,
            } => {
                self.entry(thread, trigger_tag).released_at = Some(cycle);
                self.open_tenure.remove(&thread);
            }
            TraceEvent::Squash { thread, first_tag } => {
                for ((t, tag), e) in self.episodes.range_mut((thread, first_tag)..) {
                    if *t != thread {
                        break;
                    }
                    if e.squashed_at.is_none() && *tag >= first_tag {
                        e.squashed_at = Some(cycle);
                    }
                }
            }
            TraceEvent::ThreadStall { .. }
            | TraceEvent::RobOccupancy { .. }
            | TraceEvent::Commit { .. }
            | TraceEvent::MemFillScheduled { .. } => {}
        }
    }

    /// Finish the fold, yielding episodes ordered by `(thread, tag)`.
    #[must_use]
    pub fn finish(self) -> Vec<Episode> {
        self.episodes.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect(thread: ThreadId, tag: u64, pc: u64) -> TraceEvent {
        TraceEvent::L2MissDetected {
            thread,
            tag,
            pc,
            wrong_path: false,
        }
    }

    #[test]
    fn denied_then_granted_on_recheck_is_one_episode() {
        // The Reactive scheme re-evaluates a waiting candidate every 10
        // cycles: a Busy denial at t=100 followed by a grant at t=110
        // must fold into a single episode that records both.
        let events = vec![
            (100, detect(1, 40, 0x4000)),
            (
                100,
                TraceEvent::L2RobDenied {
                    thread: 1,
                    tag: 40,
                    reason: DenyReason::Busy,
                },
            ),
            (110, TraceEvent::L2RobAllocated { thread: 1, tag: 40 }),
            (
                400,
                TraceEvent::L2Fill {
                    thread: 1,
                    tag: 40,
                    wrong_path: false,
                },
            ),
            (
                405,
                TraceEvent::L2RobReleased {
                    thread: 1,
                    trigger_tag: 40,
                },
            ),
        ];
        let eps = EpisodeReconstructor::from_events(&events);
        assert_eq!(eps.len(), 1);
        let e = &eps[0];
        assert_eq!(e.denials, vec![(100, DenyReason::Busy)]);
        assert_eq!(e.allocated_at, Some(110));
        assert_eq!(e.released_at, Some(405));
        assert_eq!(e.held_cycles(), Some(295));
        assert_eq!(e.miss_latency(), Some(300));
        let s = EpisodeSummary::from_episodes(&eps);
        assert_eq!(s.denied_then_granted, 1);
        assert_eq!(s.denials_by_reason, [1, 0, 0]);
    }

    #[test]
    fn fill_during_wrong_path_marks_episode_wrong_path() {
        // The load was fetched down a correct-looking path, missed, and
        // was wrong-path by the time the fill arrived: the episode must
        // be flagged so per-mix accounting can exclude it.
        let events = vec![
            (50, detect(0, 7, 0x100)),
            (
                200,
                TraceEvent::L2Fill {
                    thread: 0,
                    tag: 7,
                    wrong_path: true,
                },
            ),
        ];
        let eps = EpisodeReconstructor::from_events(&events);
        assert_eq!(eps.len(), 1);
        assert!(eps[0].wrong_path);
        assert!(!eps[0].allocated());
        assert_eq!(eps[0].miss_latency(), Some(150));
        assert_eq!(EpisodeSummary::from_episodes(&eps).wrong_path, 1);
    }

    #[test]
    fn release_on_squash_closes_the_tenure() {
        // A squash removes the trigger load; the allocator drains and
        // releases. The episode must carry both the squash cycle and
        // the release cycle, matched through the trigger tag.
        let events = vec![
            (10, detect(2, 90, 0x8000)),
            (10, TraceEvent::L2RobAllocated { thread: 2, tag: 90 }),
            (
                30,
                TraceEvent::Squash {
                    thread: 2,
                    first_tag: 88,
                },
            ),
            (
                31,
                TraceEvent::L2RobReleased {
                    thread: 2,
                    trigger_tag: 90,
                },
            ),
        ];
        let eps = EpisodeReconstructor::from_events(&events);
        assert_eq!(eps.len(), 1);
        let e = &eps[0];
        assert_eq!(e.squashed_at, Some(30));
        assert_eq!(e.released_at, Some(31));
        assert_eq!(e.held_cycles(), Some(21));
        let s = EpisodeSummary::from_episodes(&eps);
        assert_eq!((s.allocated, s.released, s.squashed), (1, 1, 1));
    }

    #[test]
    fn squash_only_hits_tags_at_or_after_first_tag_on_that_thread() {
        let events = vec![
            (5, detect(1, 10, 0x1)),
            (5, detect(1, 20, 0x2)),
            (5, detect(2, 15, 0x3)),
            (
                9,
                TraceEvent::Squash {
                    thread: 1,
                    first_tag: 15,
                },
            ),
        ];
        let eps = EpisodeReconstructor::from_events(&events);
        assert_eq!(eps.len(), 3);
        let by_key: BTreeMap<_, _> = eps.iter().map(|e| ((e.thread, e.tag), e)).collect();
        assert_eq!(by_key[&(1, 10)].squashed_at, None);
        assert_eq!(by_key[&(1, 20)].squashed_at, Some(9));
        assert_eq!(by_key[&(2, 15)].squashed_at, None, "other thread untouched");
    }

    #[test]
    fn dod_samples_route_to_decision_and_fill_slots() {
        let events = vec![
            (1, detect(0, 3, 0x10)),
            (
                1,
                TraceEvent::DodSampled {
                    thread: 0,
                    tag: 3,
                    value: 4,
                    source: DodSource::CounterAtDecision,
                },
            ),
            (
                90,
                TraceEvent::DodSampled {
                    thread: 0,
                    tag: 3,
                    value: 6,
                    source: DodSource::CounterAtFill,
                },
            ),
        ];
        let eps = EpisodeReconstructor::from_events(&events);
        assert_eq!(eps[0].dod_at_decision, Some(4));
        assert_eq!(eps[0].dod_at_fill, Some(6));
    }
}
