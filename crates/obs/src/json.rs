//! Hand-rolled JSONL encoding for traces and episodes.
//!
//! The workspace is dependency-free by design (no serde); every field
//! here is an integer, a bool or a static enum name, so the encoding
//! is a few `write!`s. One event (or episode) per line, keys in a
//! fixed order — byte-identical output is the point (the `trace` bin
//! is under `xtask determinism`).

use crate::episode::Episode;
use crate::event::TraceEvent;
use crate::Cycle;
use std::fmt::Write as _;

/// Encode one `(cycle, event)` pair as a single JSON line (no trailing
/// newline).
#[must_use]
pub fn event_line(cycle: Cycle, event: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"cycle\":{cycle},\"event\":\"{}\"", event.name());
    match *event {
        TraceEvent::L2MissDetected {
            thread,
            tag,
            pc,
            wrong_path,
        } => {
            let _ = write!(
                s,
                ",\"thread\":{thread},\"tag\":{tag},\"pc\":{pc},\"wrong_path\":{wrong_path}"
            );
        }
        TraceEvent::L2Fill {
            thread,
            tag,
            wrong_path,
        } => {
            let _ = write!(
                s,
                ",\"thread\":{thread},\"tag\":{tag},\"wrong_path\":{wrong_path}"
            );
        }
        TraceEvent::DodSampled {
            thread,
            tag,
            value,
            source,
        } => {
            let _ = write!(
                s,
                ",\"thread\":{thread},\"tag\":{tag},\"value\":{value},\"source\":\"{}\"",
                source.name()
            );
        }
        TraceEvent::L2RobAllocated { thread, tag } => {
            let _ = write!(s, ",\"thread\":{thread},\"tag\":{tag}");
        }
        TraceEvent::L2RobDenied {
            thread,
            tag,
            reason,
        } => {
            let _ = write!(
                s,
                ",\"thread\":{thread},\"tag\":{tag},\"reason\":\"{}\"",
                reason.name()
            );
        }
        TraceEvent::L2RobReleased {
            thread,
            trigger_tag,
        } => {
            let _ = write!(s, ",\"thread\":{thread},\"trigger_tag\":{trigger_tag}");
        }
        TraceEvent::ThreadStall { thread, kind } => {
            let _ = write!(s, ",\"thread\":{thread},\"kind\":\"{}\"", kind.name());
        }
        TraceEvent::RobOccupancy { thread, occupancy } => {
            let _ = write!(s, ",\"thread\":{thread},\"occupancy\":{occupancy}");
        }
        TraceEvent::Squash { thread, first_tag } => {
            let _ = write!(s, ",\"thread\":{thread},\"first_tag\":{first_tag}");
        }
        TraceEvent::Commit {
            thread,
            tag,
            seq,
            pc,
            dst,
            mem_addr,
            taken,
        } => {
            let _ = write!(
                s,
                ",\"thread\":{thread},\"tag\":{tag},\"seq\":{seq},\"pc\":{pc},\"dst\":{dst},\"mem_addr\":{mem_addr},\"taken\":{taken}"
            );
        }
        TraceEvent::MemFillScheduled {
            line_addr,
            complete_at,
        } => {
            let _ = write!(
                s,
                ",\"line_addr\":{line_addr},\"complete_at\":{complete_at}"
            );
        }
    }
    s.push('}');
    s
}

/// Encode a whole trace as JSONL (one event per line, trailing newline).
#[must_use]
pub fn trace_jsonl(events: &[(Cycle, TraceEvent)]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for (cycle, ev) in events {
        out.push_str(&event_line(*cycle, ev));
        out.push('\n');
    }
    out
}

/// Encode one reconstructed episode as a single JSON line.
#[must_use]
pub fn episode_line(e: &Episode) -> String {
    let opt = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |x| x.to_string());
    let opt32 = |v: Option<u32>| v.map_or_else(|| "null".to_owned(), |x| x.to_string());
    let mut s = String::with_capacity(160);
    let _ = write!(
        s,
        "{{\"thread\":{},\"tag\":{},\"pc\":{},\"wrong_path\":{},\"detected_at\":{},\"allocated_at\":{},\"filled_at\":{},\"released_at\":{},\"squashed_at\":{},\"dod_at_decision\":{},\"dod_at_fill\":{},\"denials\":[",
        e.thread,
        e.tag,
        e.pc,
        e.wrong_path,
        opt(e.detected_at),
        opt(e.allocated_at),
        opt(e.filled_at),
        opt(e.released_at),
        opt(e.squashed_at),
        opt32(e.dod_at_decision),
        opt32(e.dod_at_fill),
    );
    for (i, (cycle, reason)) in e.denials.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"cycle\":{cycle},\"reason\":\"{}\"}}", reason.name());
    }
    s.push_str("]}");
    s
}

/// Encode reconstructed episodes as JSONL.
#[must_use]
pub fn episodes_jsonl(episodes: &[Episode]) -> String {
    let mut out = String::with_capacity(episodes.len() * 160);
    for e in episodes {
        out.push_str(&episode_line(e));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DenyReason, DodSource};

    #[test]
    fn event_lines_are_stable_json() {
        let line = event_line(
            42,
            &TraceEvent::DodSampled {
                thread: 1,
                tag: 9,
                value: 3,
                source: DodSource::Predictor,
            },
        );
        assert_eq!(
            line,
            "{\"cycle\":42,\"event\":\"dod_sampled\",\"thread\":1,\"tag\":9,\"value\":3,\"source\":\"predictor\"}"
        );
    }

    #[test]
    fn episode_lines_include_denials() {
        let e = Episode {
            thread: 0,
            tag: 5,
            pc: 16,
            detected_at: Some(10),
            denials: vec![(10, DenyReason::Busy), (20, DenyReason::HighDod)],
            allocated_at: Some(30),
            ..Episode::default()
        };
        let line = episode_line(&e);
        assert!(line.starts_with("{\"thread\":0,\"tag\":5,\"pc\":16,"));
        assert!(line.contains("\"allocated_at\":30"));
        assert!(line.contains("\"filled_at\":null"));
        assert!(line.ends_with(
            "\"denials\":[{\"cycle\":10,\"reason\":\"busy\"},{\"cycle\":20,\"reason\":\"high_dod\"}]}"
        ));
    }

    #[test]
    fn jsonl_is_one_line_per_item() {
        let events = vec![
            (1, TraceEvent::L2RobAllocated { thread: 0, tag: 1 }),
            (
                2,
                TraceEvent::L2RobReleased {
                    thread: 0,
                    trigger_tag: 1,
                },
            ),
        ];
        let text = trace_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
