//! A registry of named counters and histograms aggregated from the
//! event stream, per thread and (at the experiment layer) per scheme.
//!
//! Keys are deterministic: `BTreeMap`-backed so iteration order — and
//! therefore every rendered table — is stable across runs and job
//! counts (the repo-wide hash-collection lint enforces this).

use crate::event::TraceEvent;
use crate::Cycle;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A streaming histogram: count/sum/min/max plus a small fixed set of
/// power-of-two buckets (enough shape for DoD values and occupancies
/// without unbounded memory).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (meaningless when `count == 0`).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `buckets[i]` counts samples with value < 2^i; the last bucket
    /// counts everything at/above the penultimate bound.
    pub buckets: [u64; Histogram::BUCKETS],
}

impl Histogram {
    /// Number of power-of-two buckets.
    pub const BUCKETS: usize = 10;

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum += value;
        let mut idx = 0;
        while idx + 1 < Self::BUCKETS && value >= (1u64 << idx) {
            idx += 1;
        }
        self.buckets[idx] += 1;
    }

    /// Mean of the recorded samples (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        // Counter magnitudes here are bounded by run length (≪ 2^53),
        // so the into-f64 conversions are exact.
        let sum: u32 = u32::try_from(self.sum.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
        let count: u32 = u32::try_from(self.count.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
        if u64::from(sum) == self.sum && u64::from(count) == self.count {
            Some(f64::from(sum) / f64::from(count))
        } else {
            // Fallback for astronomically long runs: integer mean.
            let whole = self.sum / self.count;
            let w = u32::try_from(whole.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
            Some(f64::from(w))
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// Named counters and histograms folded from a trace.
///
/// Counter keys follow `"{event}[.{qualifier}].t{thread}"` (e.g.
/// `l2_rob_denied.high_dod.t2`), plus an unsuffixed machine-wide
/// total per event kind.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a registry by absorbing every event in `events`.
    #[must_use]
    pub fn from_events(events: &[(Cycle, TraceEvent)]) -> Self {
        let mut reg = Self::new();
        for (cycle, ev) in events {
            reg.absorb(*cycle, ev);
        }
        reg
    }

    /// Increment the named counter.
    pub fn bump(&mut self, key: &str) {
        if let Some(c) = self.counters.get_mut(key) {
            *c += 1;
        } else {
            self.counters.insert(key.to_owned(), 1);
        }
    }

    /// Add `n` to the named counter (a `bump` of weight `n`; used by
    /// the sweep layer to fold precomputed counts — retry totals,
    /// journal hits — into one registry).
    pub fn bump_by(&mut self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self.counters.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Record a histogram sample under `key`.
    pub fn observe(&mut self, key: &str, value: u64) {
        self.histograms
            .entry(key.to_owned())
            .or_default()
            .record(value);
    }

    /// Read a counter (0 when never bumped).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Read a histogram, if any samples were recorded under `key`.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold one event into the registry.
    pub fn absorb(&mut self, _cycle: Cycle, event: &TraceEvent) {
        let name = event.name();
        self.bump(name);
        if let Some(t) = event.thread() {
            self.bump(&format!("{name}.t{t}"));
        }
        match *event {
            TraceEvent::L2RobDenied { thread, reason, .. } => {
                self.bump(&format!("{name}.{}", reason.name()));
                self.bump(&format!("{name}.{}.t{thread}", reason.name()));
            }
            TraceEvent::ThreadStall { thread, kind } => {
                self.bump(&format!("{name}.{}", kind.name()));
                self.bump(&format!("{name}.{}.t{thread}", kind.name()));
            }
            TraceEvent::DodSampled { value, source, .. } => {
                self.observe(&format!("dod.{}", source.name()), u64::from(value));
            }
            TraceEvent::RobOccupancy { thread, occupancy } => {
                self.observe(&format!("rob_occupancy.t{thread}"), u64::from(occupancy));
            }
            _ => {}
        }
    }

    /// Merge another registry into this one (used when aggregating
    /// per-cell registries per scheme).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Render the registry as a deterministic plain-text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} = {v}");
        }
        for (k, h) in &self.histograms {
            let mean = h.mean().unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{k}: count={} sum={} min={} max={} mean={mean:.2}",
                h.count, h.sum, h.min, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DenyReason, DodSource, StallKind};

    #[test]
    fn histogram_tracks_shape() {
        let mut h = Histogram::default();
        for v in [0, 1, 3, 9, 900] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 913);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 900);
        assert!((h.mean().unwrap() - 182.6).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // value 0 (< 1)
        assert_eq!(h.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn registry_folds_events_per_thread_and_reason() {
        let events = vec![
            (
                1,
                TraceEvent::L2RobDenied {
                    thread: 2,
                    tag: 5,
                    reason: DenyReason::HighDod,
                },
            ),
            (
                2,
                TraceEvent::L2RobDenied {
                    thread: 2,
                    tag: 5,
                    reason: DenyReason::Busy,
                },
            ),
            (
                3,
                TraceEvent::ThreadStall {
                    thread: 0,
                    kind: StallKind::RobFull,
                },
            ),
            (
                4,
                TraceEvent::DodSampled {
                    thread: 0,
                    tag: 9,
                    value: 7,
                    source: DodSource::CounterAtFill,
                },
            ),
        ];
        let reg = MetricsRegistry::from_events(&events);
        assert_eq!(reg.counter("l2_rob_denied"), 2);
        assert_eq!(reg.counter("l2_rob_denied.t2"), 2);
        assert_eq!(reg.counter("l2_rob_denied.high_dod"), 1);
        assert_eq!(reg.counter("l2_rob_denied.high_dod.t2"), 1);
        assert_eq!(reg.counter("thread_stall.rob_full.t0"), 1);
        assert_eq!(reg.counter("never_bumped"), 0);
        let h = reg.histogram("dod.counter_at_fill").unwrap();
        assert_eq!((h.count, h.sum), (1, 7));
    }

    #[test]
    fn bump_by_is_weighted_and_skips_zero() {
        let mut r = MetricsRegistry::new();
        r.bump_by("sweep.cells_ok", 5);
        r.bump_by("sweep.cells_ok", 2);
        r.bump_by("sweep.cells_failed", 0);
        assert_eq!(r.counter("sweep.cells_ok"), 7);
        // A zero bump must not materialize a key in the rendering.
        assert!(!r.render().contains("cells_failed"));
    }

    #[test]
    fn merge_is_additive_and_render_is_deterministic() {
        let mut a = MetricsRegistry::new();
        a.bump("x");
        a.observe("h", 3);
        let mut b = MetricsRegistry::new();
        b.bump("x");
        b.bump("y");
        b.observe("h", 5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 2);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.histogram("h").unwrap().sum, 8);
        let r1 = a.render();
        let r2 = a.clone().render();
        assert_eq!(r1, r2);
        assert!(r1.contains("x = 2"));
    }
}
