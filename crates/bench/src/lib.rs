//! Shared harness glue for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a binary here
//! (`cargo run --release -p smtsim-bench --bin fig2`) that prints the
//! same rows/series the paper reports, and a Criterion bench target
//! exercising the same code path at a reduced budget.
//!
//! Environment knobs for the binaries:
//!
//! * `BUDGET` — committed instructions per run (default 40 000; the
//!   paper uses 100 M SimPoints, see EXPERIMENTS.md for scaling notes).
//! * `WARMUP` — functional warm-up instructions (default 60 000).
//! * `SEED` — workload generation seed (default 42).
//! * `MIXES` — comma-separated mix indices (default all 11).

use smtsim_rob2::Lab;

/// Parses an environment integer, exiting with a clear message on a
/// malformed value (a silent fallback would hide a typo'd budget).
fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name}={v} is not an integer");
            std::process::exit(2);
        }),
    }
}

/// Reads `BUDGET`/`WARMUP`/`SEED` from the environment and builds the
/// experiment driver.
pub fn lab_from_env() -> Lab {
    let budget = env_u64("BUDGET", 40_000);
    let warmup = env_u64("WARMUP", 60_000);
    let seed = env_u64("SEED", 42);
    let mut lab = Lab::new(seed).with_budgets(budget, budget);
    lab.warmup = warmup;
    lab
}

/// Reads `MIXES` from the environment (default: all 11 paper mixes),
/// exiting with a clear message on malformed or out-of-range entries.
pub fn mixes_from_env() -> Vec<usize> {
    let Ok(v) = std::env::var("MIXES") else {
        return smtsim_rob2::ALL_MIXES.to_vec();
    };
    v.split(',')
        .map(|x| {
            let idx: usize = x.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: MIXES entry '{x}' is not an integer");
                std::process::exit(2);
            });
            if !(1..=11).contains(&idx) {
                eprintln!("error: MIXES entry {idx} out of range 1..=11");
                std::process::exit(2);
            }
            idx
        })
        .collect()
}

/// A small lab for Criterion benches: low budget, reduced warm-up.
pub fn bench_lab(seed: u64) -> Lab {
    let mut lab = Lab::new(seed).with_budgets(4_000, 4_000);
    lab.warmup = 10_000;
    lab
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let lab = lab_from_env();
        assert!(lab.mt_budget > 0);
        let mixes = mixes_from_env();
        assert!(!mixes.is_empty() && mixes.iter().all(|&m| (1..=11).contains(&m)));
    }

    #[test]
    fn bench_lab_is_small() {
        let lab = bench_lab(1);
        assert!(lab.mt_budget <= 10_000);
    }
}
