//! Shared harness glue for the figure-regeneration binaries and
//! benches.
//!
//! Every table and figure of the paper's evaluation has a binary here
//! (`cargo run --release -p smtsim-bench --bin fig2`) that prints the
//! same rows/series the paper reports, and a bench target exercising
//! the same code path at a reduced budget.
//!
//! Environment knobs for the binaries:
//!
//! * `BUDGET` — committed instructions per multithreaded run (default
//!   40 000; the paper uses 100 M SimPoints, see EXPERIMENTS.md for
//!   scaling notes).
//! * `ST_BUDGET` — committed instructions per *single-threaded*
//!   normalization run (default: `BUDGET`). The two budgets are
//!   distinct knobs: the multithreaded budget caps the contended run
//!   while the single-threaded budget controls how long the healthy
//!   reference each weighted IPC divides by is measured for.
//! * `WARMUP` — functional warm-up instructions (default 60 000).
//! * `SEED` — workload generation seed (default 42).
//! * `MIXES` — comma-separated mix indices (default all 11).
//!
//! Integrity knobs (see DESIGN.md "Failure model & fault injection"):
//!
//! * `DEADLOCK_CYCLES` — watchdog threshold: cycles without a commit
//!   before the run fails with a deadlock snapshot (default 1 000 000).
//! * `INVARIANT_INTERVAL` — deep invariant-scan cadence in cycles;
//!   `0` (the default) leaves only the cheap per-cycle checks on.
//!
//! Fault-injection knobs (all default off; 1-in-N denominators — `0`
//! disables, `1` fires every opportunity):
//!
//! * `FAULT_SEED` — decision seed for all fault categories (default 0).
//! * `FAULT_DROP_FILL` — 1-in-N L2 fills never delivered (deadlock).
//! * `FAULT_DELAY_FILL` / `FAULT_DELAY_CYCLES` — 1-in-N fills delayed
//!   by the given number of cycles (absorbed, not an error).
//! * `FAULT_CORRUPT_DOD` — 1-in-N fill notifications with a garbled
//!   DoD count (predictor noise).
//! * `FAULT_WITHHOLD_RELEASE` — 1-in-N allocator fill notifications
//!   suppressed (exercises two-level release fallback).

use smtsim_pipeline::FaultPlan;
use smtsim_rob2::Lab;

/// Parses an environment integer, exiting with a clear message on a
/// malformed value (a silent fallback would hide a typo'd budget).
fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name}={v} is not an integer");
            std::process::exit(2);
        }),
    }
}

/// Reads the environment knobs from the module header and builds the
/// experiment driver. The single-threaded normalization budget follows
/// `ST_BUDGET`, defaulting to `BUDGET` — the two were conflated into
/// one value here before the knob existed.
pub fn lab_from_env() -> Lab {
    let budget = env_u64("BUDGET", 40_000);
    let st_budget = env_u64("ST_BUDGET", budget);
    let warmup = env_u64("WARMUP", 60_000);
    let seed = env_u64("SEED", 42);
    let mut lab = Lab::new(seed).with_budgets(budget, st_budget);
    lab.warmup = warmup;
    lab.machine.deadlock_cycles = env_u64("DEADLOCK_CYCLES", lab.machine.deadlock_cycles);
    lab.machine.invariant_interval = env_u64("INVARIANT_INTERVAL", lab.machine.invariant_interval);
    if let Some(plan) = fault_plan_from_env() {
        lab.set_fault(None, plan);
    }
    lab
}

/// Builds a [`FaultPlan`] from the `FAULT_*` environment knobs, or
/// `None` when every category is off (the common case: no plan is
/// installed and the hooks stay on their zero-cost path).
pub fn fault_plan_from_env() -> Option<FaultPlan> {
    let plan = FaultPlan {
        seed: env_u64("FAULT_SEED", 0),
        drop_fill: env_u64("FAULT_DROP_FILL", 0) as u32,
        delay_fill: env_u64("FAULT_DELAY_FILL", 0) as u32,
        delay_cycles: env_u64("FAULT_DELAY_CYCLES", 300),
        corrupt_dod: env_u64("FAULT_CORRUPT_DOD", 0) as u32,
        withhold_release: env_u64("FAULT_WITHHOLD_RELEASE", 0) as u32,
        ..FaultPlan::default()
    };
    plan.is_active().then_some(plan)
}

/// Reads `MIXES` from the environment (default: all 11 paper mixes),
/// exiting with a clear message on malformed or out-of-range entries.
pub fn mixes_from_env() -> Vec<usize> {
    let Ok(v) = std::env::var("MIXES") else {
        return smtsim_rob2::ALL_MIXES.to_vec();
    };
    v.split(',')
        .map(|x| {
            let idx: usize = x.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: MIXES entry '{x}' is not an integer");
                std::process::exit(2);
            });
            if !(1..=11).contains(&idx) {
                eprintln!("error: MIXES entry {idx} out of range 1..=11");
                std::process::exit(2);
            }
            idx
        })
        .collect()
}

/// A small lab for Criterion benches: low budget, reduced warm-up.
pub fn bench_lab(seed: u64) -> Lab {
    let mut lab = Lab::new(seed).with_budgets(4_000, 4_000);
    lab.warmup = 10_000;
    lab
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let lab = lab_from_env();
        assert!(lab.mt_budget > 0);
        // Without ST_BUDGET the normalization budget follows BUDGET.
        assert_eq!(lab.st_budget, lab.mt_budget);
        // No FAULT_* knobs set: no plan installed anywhere.
        assert!((1..=11).all(|m| lab.fault_for(m).is_none()));
        let mixes = mixes_from_env();
        assert!(!mixes.is_empty() && mixes.iter().all(|&m| (1..=11).contains(&m)));
    }

    #[test]
    fn fault_plan_from_env_is_none_by_default() {
        assert_eq!(fault_plan_from_env(), None);
    }

    #[test]
    fn bench_lab_is_small() {
        let lab = bench_lab(1);
        assert!(lab.mt_budget <= 10_000);
    }
}
