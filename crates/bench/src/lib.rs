//! Shared harness glue for the figure-regeneration binaries and
//! benches.
//!
//! Every table and figure of the paper's evaluation has a binary here
//! (`cargo run --release -p smtsim-bench --bin fig2`) that prints the
//! same rows/series the paper reports, and a bench target exercising
//! the same code path at a reduced budget. Each binary is a thin
//! wrapper over [`run_spec`] and its committed `experiments/<bin>.toml`
//! declarative spec (DESIGN.md §16); the generic `spec` bin runs any
//! spec named by `SMTSIM_SPEC`.
//!
//! All environment knobs are parsed in one place — [`BenchEnv`] — and
//! no other module in the workspace reads `std::env::var` (enforced by
//! `cargo xtask lint`). The table below is the authoritative knob
//! list; EXPERIMENTS.md §"Environment knobs" mirrors it.
//!
//! * `BUDGET` — committed instructions per multithreaded run (default
//!   40 000; the paper uses 100 M SimPoints, see EXPERIMENTS.md for
//!   scaling notes).
//! * `ST_BUDGET` — committed instructions per *single-threaded*
//!   normalization run (default: `BUDGET`). The two budgets are
//!   distinct knobs: the multithreaded budget caps the contended run
//!   while the single-threaded budget controls how long the healthy
//!   reference each weighted IPC divides by is measured for.
//! * `WARMUP` — functional warm-up instructions (default 60 000).
//! * `SEED` — workload generation seed (default 42).
//! * `MIXES` — comma-separated mix indices (default all 11).
//! * `SMTSIM_JOBS` — worker threads for the phase-2 sweep fan-out
//!   (default `0` = the machine's available parallelism; `1` forces
//!   the serial path). Figure output is byte-identical at any value.
//! * `BENCH_ITERS` — timed iterations per bench target (default 5;
//!   consumed by `cargo bench -p smtsim-bench`).
//! * `SMTSIM_NO_SKIP` — any nonzero value disables event-driven cycle
//!   skipping in every simulator the harness builds (default 0 =
//!   skipping on). Validation-only: skipping is timing-transparent, so
//!   output is byte-identical either way — `cargo xtask determinism`
//!   proves it by re-running a figure with the knob set and comparing
//!   bytes. It does not participate in the journal universe
//!   fingerprint.
//! * `SMTSIM_SPEC` — path of the experiment spec the generic `spec`
//!   bin runs (e.g. `SMTSIM_SPEC=experiments/fig2.toml`); the
//!   dedicated bins ignore it, each being hard-bound to its committed
//!   spec. Env knobs compose with spec `[knobs]`/`mixes` values key by
//!   key as explicit env > spec > built-in default (DESIGN.md §16).
//!
//! Serve knobs (consumed by the `serve` daemon, DESIGN.md §17):
//!
//! * `SMTSIM_SERVE_SOCKET` — Unix socket the daemon listens on
//!   (default: `smtsim-serve.sock` under the system temp dir).
//! * `SMTSIM_SERVE_CACHE` — persistent content-addressed result-cache
//!   directory (default: `smtsim-serve-cache` under the CWD). A
//!   restarted daemon pointed at the same directory comes back warm.
//! * `SMTSIM_SERVE_QUEUE` — admission bound: maximum concurrently
//!   admitted requests (≥ 1, default 8); the next submission is
//!   answered with a typed retryable `queue-full` rejection.
//!
//! Resilience knobs (DESIGN.md §13 "Crash-tolerance model"):
//!
//! * `SMTSIM_JOURNAL` — resumable sweep-journal path. Completed cells
//!   are appended durably as they finish; relaunching the same command
//!   with the same path skips them and produces byte-identical output.
//!   A journal recorded under different knobs (seed, budgets, machine,
//!   faults…) is rejected with exit status 2, never silently reused.
//! * `SMTSIM_CELL_TIMEOUT` — wall-clock watchdog per sweep cell, in
//!   milliseconds (default 0 = unlimited). A cell over budget becomes
//!   a typed timeout rendered `n/a`; the sweep continues. Wall-clock
//!   firing is machine-dependent — prefer `SMTSIM_CELL_CYCLES` where
//!   determinism matters.
//! * `SMTSIM_CELL_CYCLES` — simulated-cycle watchdog per sweep cell
//!   (default 0 = unlimited). Deterministic: fires at the exact cycle
//!   on every machine and job count.
//! * `SMTSIM_CELL_RETRIES` — retries per transiently-failed cell
//!   (default 0). Retries run after all first attempts, in an order
//!   derived from `SEED` — deterministic backoff, not wall-clock.
//!
//! Conformance knobs (consumed by the `conform` bin, DESIGN.md §12):
//!
//! * `FUZZ_CASES` — fresh machine-generated fuzz cases per `conform`
//!   run (default 4).
//! * `FUZZ_SEED` — base seed the fresh cases derive from (default
//!   2026). Generated programs and verdicts are a pure function of
//!   this seed, independent of `SMTSIM_JOBS`.
//!
//! Model-checking knobs (consumed by the `check` bin, DESIGN.md §14):
//!
//! * `CHECK_THREADS` — thread bound for the bounded exploration
//!   (1..=4, default 3). The outstanding-miss bound follows: 3 misses
//!   per thread up to 3 threads, 2 at 4 threads (the 4-thread ×
//!   3-miss product is exhaustive too but takes ~30 s in release —
//!   run it explicitly, not in CI).
//! * `CHECK_L2` — shared L2-partition entry bound (1..=4, default 2).
//!
//! Integrity knobs (see DESIGN.md "Failure model & fault injection"):
//!
//! * `DEADLOCK_CYCLES` — watchdog threshold: cycles without a commit
//!   before the run fails with a deadlock snapshot (default 1 000 000).
//! * `INVARIANT_INTERVAL` — deep invariant-scan cadence in cycles;
//!   `0` (the default) leaves only the cheap per-cycle checks on.
//!
//! Fault-injection knobs (all default off; 1-in-N denominators — `0`
//! disables, `1` fires every opportunity):
//!
//! * `FAULT_SEED` — decision seed for all fault categories (default 0).
//! * `FAULT_DROP_FILL` — 1-in-N L2 fills never delivered (deadlock).
//! * `FAULT_DELAY_FILL` / `FAULT_DELAY_CYCLES` — 1-in-N fills delayed
//!   by the given number of cycles (absorbed, not an error).
//! * `FAULT_CORRUPT_DOD` — 1-in-N fill notifications with a garbled
//!   DoD count (predictor noise).
//! * `FAULT_WITHHOLD_RELEASE` — 1-in-N allocator fill notifications
//!   suppressed (exercises two-level release fallback).

pub mod env;
pub mod serve_support;
pub mod spec_run;

pub use env::{try_env_u64, BenchEnv};
pub use spec_run::{run_named_spec, run_spec, spec_dir};

use smtsim_pipeline::{FaultPlan, SimError};
use smtsim_rob2::{JournalError, Lab};

/// A harness binary failure, classified by the workspace-wide exit
/// policy: **invalid configuration exits 2** (malformed knobs, a
/// journal recorded under a different experiment universe), **runtime
/// failures exit 1** (I/O, journal corruption, simulation divergence).
/// Every binary funnels through [`run_bin`], so the exit codes are
/// uniform across all of them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinError {
    /// The invocation itself is wrong; exits with status 2.
    Config(String),
    /// The run failed; exits with status 1.
    Runtime(String),
}

impl BinError {
    /// The process exit status for this failure class.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            BinError::Config(_) => 2,
            BinError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Config(m) | BinError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl From<SimError> for BinError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::InvalidConfig { .. } => BinError::Config(e.to_string()),
            other => BinError::Runtime(other.to_string()),
        }
    }
}

impl From<JournalError> for BinError {
    fn from(e: JournalError) -> Self {
        match e {
            // Pointing a run at a journal recorded under different
            // knobs is a configuration mistake, like a malformed knob.
            JournalError::UniverseMismatch { .. } => BinError::Config(e.to_string()),
            other => BinError::Runtime(other.to_string()),
        }
    }
}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Runtime(e.to_string())
    }
}

/// Prints a [`BinError`] and exits with its status code.
pub fn exit_bin(e: &BinError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(e.exit_code());
}

/// The uniform `main` wrapper for every harness binary: runs `f`,
/// exits 0 on success, and maps failures through the [`BinError`]
/// exit-code policy (configuration → 2, runtime → 1).
pub fn run_bin(f: impl FnOnce() -> Result<(), BinError>) -> ! {
    match f() {
        Ok(()) => std::process::exit(0),
        Err(e) => exit_bin(&e),
    }
}

/// Builds the lab `env` describes and pre-validates its resilience
/// configuration: an armed `SMTSIM_JOURNAL` is opened *here*, so a
/// stale or damaged journal surfaces as a typed [`BinError`] (exit 2
/// or 1) instead of a mid-sweep panic. Logs a resume note when the
/// journal already holds completed cells.
pub fn prepared_lab(env: &BenchEnv) -> Result<Lab, BinError> {
    let mut lab = env.lab();
    let resumed = lab.open_journal()?;
    if resumed > 0 {
        eprintln!("journal: resuming — {resumed} completed cell(s) on file");
    }
    Ok(lab)
}

/// Reads the environment knobs from the module header and builds the
/// experiment driver. Thin wrapper over [`BenchEnv::from_env`] +
/// [`BenchEnv::lab`].
pub fn try_lab_from_env() -> Result<Lab, SimError> {
    BenchEnv::from_env().map(|e| e.lab())
}

/// Infallible form of [`try_lab_from_env`] for the figure binaries:
/// exits with status 2 on a malformed knob.
pub fn lab_from_env() -> Lab {
    BenchEnv::read().lab()
}

/// Builds a [`FaultPlan`] from the `FAULT_*` environment knobs, or
/// `None` when every category is off. Thin wrapper over
/// [`BenchEnv::from_env`].
pub fn try_fault_plan_from_env() -> Result<Option<FaultPlan>, SimError> {
    BenchEnv::from_env().map(|e| e.fault)
}

/// Infallible form of [`try_fault_plan_from_env`]: exits with status 2
/// on a malformed knob.
pub fn fault_plan_from_env() -> Option<FaultPlan> {
    BenchEnv::read().fault
}

/// Reads `MIXES` from the environment (default: all 11 paper mixes).
/// Thin wrapper over [`BenchEnv::from_env`].
pub fn try_mixes_from_env() -> Result<Vec<usize>, SimError> {
    BenchEnv::from_env().map(|e| e.mixes)
}

/// Infallible form of [`try_mixes_from_env`] for the figure binaries:
/// exits with status 2 on a malformed entry.
pub fn mixes_from_env() -> Vec<usize> {
    BenchEnv::read().mixes
}

/// A small lab for Criterion benches: low budget, reduced warm-up.
pub fn bench_lab(seed: u64) -> Lab {
    Lab::new(seed)
        .with_budgets(4_000, 4_000)
        .with_warmup(10_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests below mutate process-global environment variables; they
    /// serialize on this lock so the parallel test harness can't
    /// observe each other's knobs.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn defaults_are_sane() {
        let _g = ENV_LOCK.lock().unwrap();
        let env = BenchEnv::from_env().expect("clean environment parses");
        assert!(env.budget > 0);
        // Without ST_BUDGET the normalization budget follows BUDGET.
        assert_eq!(env.st_budget, env.budget);
        assert_eq!(env.bench_iters, 5);
        assert!(env.fault.is_none());
        let lab = env.lab();
        assert_eq!(lab.mt_budget, env.budget);
        assert_eq!(lab.st_budget, env.st_budget);
        assert_eq!(lab.warmup, env.warmup);
        // No FAULT_* knobs set: no plan installed anywhere.
        assert!((1..=11).all(|m| lab.fault_for(m).is_none()));
        assert!(!env.mixes.is_empty() && env.mixes.iter().all(|&m| (1..=11).contains(&m)));
    }

    #[test]
    fn smtsim_jobs_knob_pins_the_worker_count() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("SMTSIM_JOBS", "4");
        let lab = lab_from_env();
        assert_eq!(lab.jobs, Some(4));
        assert_eq!(lab.effective_jobs(), 4);
        std::env::set_var("SMTSIM_JOBS", "0");
        assert_eq!(lab_from_env().jobs, None, "0 means auto");
        std::env::set_var("SMTSIM_JOBS", "four");
        let Err(err) = try_lab_from_env() else {
            panic!("SMTSIM_JOBS=four must be rejected")
        };
        assert_eq!(err.kind(), "invalid-config");
        assert!(err.to_string().contains("SMTSIM_JOBS=four"), "{err}");
        std::env::remove_var("SMTSIM_JOBS");
    }

    #[test]
    fn fault_plan_from_env_is_none_by_default() {
        let _g = ENV_LOCK.lock().unwrap();
        assert_eq!(fault_plan_from_env(), None);
    }

    #[test]
    fn malformed_env_integer_is_a_typed_config_error() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("SMTSIM_TEST_KNOB", "40k");
        let err = try_env_u64("SMTSIM_TEST_KNOB", 1).expect_err("'40k' must not parse");
        std::env::remove_var("SMTSIM_TEST_KNOB");
        assert_eq!(err.kind(), "invalid-config");
        assert!(err.to_string().contains("SMTSIM_TEST_KNOB=40k"), "{err}");
        // Missing and well-formed values still succeed.
        assert_eq!(try_env_u64("SMTSIM_TEST_KNOB", 7).unwrap(), 7);
        std::env::set_var("SMTSIM_TEST_KNOB", " 12 ");
        assert_eq!(try_env_u64("SMTSIM_TEST_KNOB", 7).unwrap(), 12);
        std::env::remove_var("SMTSIM_TEST_KNOB");
    }

    #[test]
    fn malformed_budget_fails_lab_construction() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("ST_BUDGET", "lots");
        let Err(err) = try_lab_from_env() else {
            panic!("ST_BUDGET=lots must be rejected")
        };
        std::env::remove_var("ST_BUDGET");
        assert_eq!(err.kind(), "invalid-config");
        assert!(err.to_string().contains("ST_BUDGET=lots"), "{err}");
    }

    #[test]
    fn malformed_and_out_of_range_mixes_are_typed_config_errors() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("MIXES", "1,two,3");
        let err = try_mixes_from_env().expect_err("'two' must not parse");
        assert_eq!(err.kind(), "invalid-config");
        assert!(err.to_string().contains("'two'"), "{err}");
        std::env::set_var("MIXES", "1,12");
        let err = try_mixes_from_env().expect_err("12 is out of range");
        assert!(err.to_string().contains("out of range"), "{err}");
        std::env::set_var("MIXES", "2, 9");
        assert_eq!(try_mixes_from_env().unwrap(), vec![2, 9]);
        std::env::remove_var("MIXES");
    }

    #[test]
    fn bench_iters_knob_is_parsed_and_bounded() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("BENCH_ITERS", "9");
        assert_eq!(BenchEnv::from_env().unwrap().bench_iters, 9);
        std::env::set_var("BENCH_ITERS", "9999999999999");
        let err = BenchEnv::from_env().expect_err("must not overflow u32");
        assert_eq!(err.kind(), "invalid-config");
        std::env::remove_var("BENCH_ITERS");
    }

    #[test]
    fn bench_lab_is_small() {
        let lab = bench_lab(1);
        assert!(lab.mt_budget <= 10_000);
    }

    #[test]
    fn resilience_knobs_arm_the_lab() {
        let _g = ENV_LOCK.lock().unwrap();
        // Defaults: everything off, no footer machinery armed.
        let lab = lab_from_env();
        assert!(!lab.resilience_active());
        std::env::set_var("SMTSIM_JOURNAL", "/tmp/j.jsonl");
        std::env::set_var("SMTSIM_CELL_TIMEOUT", "1500");
        std::env::set_var("SMTSIM_CELL_CYCLES", "200000");
        std::env::set_var("SMTSIM_CELL_RETRIES", "2");
        let env = BenchEnv::from_env().unwrap();
        let lab = env.lab();
        assert_eq!(
            lab.journal_path.as_deref(),
            Some(std::path::Path::new("/tmp/j.jsonl"))
        );
        assert_eq!(lab.cell_wall_ms, Some(1_500));
        assert_eq!(lab.cell_cycle_budget, Some(200_000));
        assert_eq!(lab.retries, 2);
        assert!(lab.resilience_active());
        // 0 means "unlimited", and an empty journal path means "off".
        std::env::set_var("SMTSIM_JOURNAL", "  ");
        std::env::set_var("SMTSIM_CELL_TIMEOUT", "0");
        std::env::set_var("SMTSIM_CELL_CYCLES", "0");
        std::env::set_var("SMTSIM_CELL_RETRIES", "0");
        let lab = lab_from_env();
        assert!(!lab.resilience_active());
        std::env::set_var("SMTSIM_CELL_RETRIES", "two");
        let err = BenchEnv::from_env().expect_err("'two' must not parse");
        assert_eq!(err.kind(), "invalid-config");
        for k in [
            "SMTSIM_JOURNAL",
            "SMTSIM_CELL_TIMEOUT",
            "SMTSIM_CELL_CYCLES",
            "SMTSIM_CELL_RETRIES",
        ] {
            std::env::remove_var(k);
        }
    }

    #[test]
    fn bin_error_exit_codes_follow_the_policy() {
        use smtsim_pipeline::SimError;
        use smtsim_rob2::JournalError;
        let config: BinError = SimError::InvalidConfig { reason: "x".into() }.into();
        assert_eq!(config.exit_code(), 2);
        let runtime: BinError = SimError::CellTimeout {
            cycle: 1,
            detail: "x".into(),
        }
        .into();
        assert_eq!(runtime.exit_code(), 1);
        let stale: BinError = JournalError::UniverseMismatch {
            expected: "a".into(),
            found: "b".into(),
        }
        .into();
        assert_eq!(stale.exit_code(), 2, "stale journal is a config error");
        let corrupt: BinError = JournalError::Corrupt {
            line: 3,
            detail: "x".into(),
        }
        .into();
        assert_eq!(corrupt.exit_code(), 1);
        let io: BinError = std::io::Error::other("disk").into();
        assert_eq!(io.exit_code(), 1);
    }

    #[test]
    fn committed_specs_round_trip_through_the_canonical_rendering() {
        use smtsim_rob2::ExperimentSpec;
        let dir = spec_dir();
        let mut stems: Vec<String> = std::fs::read_dir(&dir)
            .expect("experiments/ is committed")
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
            .collect();
        stems.sort();
        assert!(
            stems.len() >= 19,
            "all 18 bins plus l2_partition_sweep have committed specs, got {stems:?}"
        );
        for stem in &stems {
            let path = dir.join(format!("{stem}.toml"));
            let spec = ExperimentSpec::load(&path)
                .unwrap_or_else(|e| panic!("{stem}.toml must parse: {e}"));
            assert_eq!(&spec.id, stem, "spec id matches its file name");
            // parse → render → parse → render is a fixed point, and
            // the fingerprint is invariant across the round trip.
            let rendered = spec.render();
            let reparsed = ExperimentSpec::parse(&format!("{stem}.toml"), &rendered)
                .unwrap_or_else(|e| panic!("{stem}.toml canonical form must re-parse: {e}"));
            assert_eq!(reparsed.render(), rendered, "{stem}: render not canonical");
            assert_eq!(
                reparsed.fingerprint, spec.fingerprint,
                "{stem}: unstable fingerprint"
            );
        }
    }

    #[test]
    fn explicit_env_knobs_override_spec_knobs() {
        use smtsim_rob2::ExperimentSpec;
        let _g = ENV_LOCK.lock().unwrap();
        let spec = ExperimentSpec::parse(
            "t.toml",
            "[experiment]\nid = \"t\"\ntitle = \"T\"\nkind = \"figure\"\n\
             schemes = [\"r-rob-16\"]\nmixes = [1, 2]\n\
             [knobs]\nbudget = 1234\nwarmup = 99\nseed = 7\n",
        )
        .unwrap();
        // No env overrides: the spec's knobs land; unset knobs keep
        // the built-in defaults.
        let merged = BenchEnv::from_env().unwrap().with_spec(&spec);
        assert_eq!(merged.budget, 1234);
        assert_eq!(merged.warmup, 99);
        assert_eq!(merged.seed, 7);
        assert_eq!(merged.mixes, vec![1, 2]);
        // The spec's budget also drives the st_budget fallback when
        // neither ST_BUDGET nor a spec st_budget is given.
        assert_eq!(merged.st_budget, 1234);
        // Explicit env wins over the spec, key by key.
        std::env::set_var("BUDGET", "777");
        std::env::set_var("MIXES", "9");
        let merged = BenchEnv::from_env().unwrap().with_spec(&spec);
        assert_eq!(merged.budget, 777, "explicit BUDGET beats the spec");
        assert_eq!(merged.warmup, 99, "untouched keys still come from the spec");
        assert_eq!(merged.mixes, vec![9], "explicit MIXES beats the spec");
        std::env::remove_var("BUDGET");
        std::env::remove_var("MIXES");
    }

    #[test]
    fn spec_lowering_renders_the_legacy_bytes_at_any_job_count() {
        use smtsim_rob2::{figures, report, ExperimentSpec, RobConfig};
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("BUDGET", "2500");
        std::env::set_var("WARMUP", "1000");
        std::env::set_var("MIXES", "1");
        let env = BenchEnv::from_env().unwrap();
        let fig2 = ExperimentSpec::load(&spec_dir().join("fig2.toml")).unwrap();
        let merged = env.with_spec(&fig2);
        for jobs in [1, 4] {
            let mut legacy_lab = env.lab().with_jobs(Some(jobs));
            let legacy = report::render_figure(&figures::fig2(&mut legacy_lab, &env.mixes));
            let mut spec_lab = merged.lab_for_spec(&fig2).with_jobs(Some(jobs));
            let pairs: Vec<(String, RobConfig)> = fig2
                .variants
                .iter()
                .map(|v| (v.label.clone(), v.config))
                .collect();
            let title = fig2.title.as_deref().unwrap();
            let from_spec = report::render_figure(&figures::ft_sweep(
                &mut spec_lab,
                title,
                pairs,
                &merged.mixes,
            ));
            assert_eq!(from_spec, legacy, "fig2 spec output drifted at jobs={jobs}");
        }
        let table1 = ExperimentSpec::load(&spec_dir().join("table1.toml")).unwrap();
        assert_eq!(
            report::render_table1(&env.with_spec(&table1).lab_for_spec(&table1).machine),
            report::render_table1(&env.lab().machine),
            "table1 spec output drifted"
        );
        std::env::remove_var("BUDGET");
        std::env::remove_var("WARMUP");
        std::env::remove_var("MIXES");
    }

    #[test]
    fn malformed_spec_files_become_typed_config_errors() {
        use smtsim_rob2::ExperimentSpec;
        // The committed determinism fixture: a typo'd `[knobs]` key.
        let fixture = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../xtask/fixtures/malformed-spec.toml");
        let err = ExperimentSpec::load(&fixture).expect_err("fixture must be refused");
        assert_eq!(err.kind(), "invalid-config");
        assert!(err.to_string().contains("budgett"), "{err}");
        let bin: BinError = err.into();
        assert_eq!(bin.exit_code(), 2);
        // A missing file is also a typed config error naming the path.
        let err = ExperimentSpec::load(std::path::Path::new("/nonexistent/spec.toml"))
            .expect_err("missing file must be refused");
        assert_eq!(err.kind(), "invalid-config");
        assert!(err.to_string().contains("/nonexistent/spec.toml"), "{err}");
    }
}
