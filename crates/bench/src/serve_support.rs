//! Bench-layer glue for the `smtsim-serve` daemon (DESIGN.md §17):
//! the env-to-[`ServeConfig`] funnel, the [`SpecLowering`] strategy
//! that makes served bytes identical to the offline `spec` bin, and a
//! minimal blocking client the `serve_bench` runner and the serve test
//! suites speak the wire protocol with.
//!
//! The daemon crate itself is deliberately env-free; every
//! `SMTSIM_SERVE_*` knob is parsed in [`BenchEnv`] like all the
//! others, and this module is the only bridge between the two.

use crate::{BenchEnv, BinError};
use smtsim_rob2::journal::{parse_json, Json};
use smtsim_rob2::ExperimentSpec;
use smtsim_serve::{ServeConfig, Server, SpecLowering};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

/// [`SpecLowering`] over the bench environment: merges the submitted
/// spec's `[knobs]`/`mixes` under the documented precedence
/// ([`BenchEnv::with_spec`]) and lowers exactly like the offline bins
/// ([`BenchEnv::lab_for_spec`]) — the reason `tests/serve.rs` can
/// demand byte-identical figures from the daemon and the `spec` bin.
#[derive(Clone, Debug)]
pub struct EnvLowering {
    /// The parsed environment the daemon was launched under.
    pub env: BenchEnv,
}

impl SpecLowering for EnvLowering {
    fn lower(&self, spec: &ExperimentSpec) -> Result<(smtsim_rob2::Lab, Vec<usize>), String> {
        let merged = self.env.with_spec(spec);
        Ok((merged.lab_for_spec(spec), merged.mixes.clone()))
    }
}

/// Builds the daemon configuration from the `SMTSIM_SERVE_*` knobs
/// (socket, cache directory, admission bound) plus `SMTSIM_JOBS` for
/// the worker-pool size.
#[must_use]
pub fn serve_config(env: &BenchEnv, spec_dir: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        socket: env.serve_socket.clone(),
        cache_dir: env.serve_cache.clone(),
        queue_limit: env.serve_queue,
        workers: env.jobs.unwrap_or(0),
        spec_dir,
    }
}

/// Entry point of the `serve` bin: starts the daemon on the
/// environment's socket/cache/queue knobs with the committed
/// `experiments/` directory as the spec registry, then blocks until a
/// protocol `shutdown` drains it.
pub fn run_serve() -> Result<(), BinError> {
    let env = BenchEnv::from_env()?;
    let config = serve_config(&env, Some(crate::spec_dir()));
    let socket = config.socket.clone();
    let cache = config.cache_dir.clone();
    let server = Server::start(config, Box::new(EnvLowering { env }))
        .map_err(|e| BinError::Runtime(format!("cannot start daemon: {e}")))?;
    eprintln!(
        "smtsim-serve: listening on {} (cache: {})",
        socket.display(),
        cache.display()
    );
    server.wait();
    Ok(())
}

/// Sends one request line to a running daemon and collects every
/// response line until the daemon ends the exchange. The write half
/// stays open throughout, as the protocol requires (client EOF means
/// *cancel*).
pub fn request_lines(socket: &Path, request: &str) -> io::Result<Vec<String>> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    BufReader::new(stream).lines().collect()
}

/// A `submit` request line for a registry spec id.
#[must_use]
pub fn submit_registry(id: &str) -> String {
    format!(
        "{{\"op\":\"submit\",\"spec\":{}}}",
        smtsim_rob2::journal::json_string(id)
    )
}

/// A `submit` request line carrying an inline spec TOML body.
#[must_use]
pub fn submit_inline(toml: &str) -> String {
    format!(
        "{{\"op\":\"submit\",\"spec_toml\":{}}}",
        smtsim_rob2::journal::json_string(toml)
    )
}

/// Extracts a string field from a response line's JSON.
#[must_use]
pub fn line_str(line: &str, field: &str) -> Option<String> {
    parse_json(line)
        .ok()?
        .get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// Extracts an integer field from a response line's JSON.
#[must_use]
pub fn line_u64(line: &str, field: &str) -> Option<u64> {
    parse_json(line).ok()?.get(field).and_then(Json::as_u64)
}

/// The terminal line of a collected exchange, verified to be the
/// given `type`. Any `error` line in the stream is surfaced instead.
pub fn terminal_line<'a>(lines: &'a [String], want: &str) -> Result<&'a String, BinError> {
    if let Some(err) = lines
        .iter()
        .find(|l| line_str(l, "type").as_deref() == Some("error"))
    {
        return Err(BinError::Runtime(format!("daemon answered: {err}")));
    }
    let last = lines
        .last()
        .ok_or_else(|| BinError::Runtime("daemon closed the stream without a reply".into()))?;
    if line_str(last, "type").as_deref() == Some(want) {
        Ok(last)
    } else {
        Err(BinError::Runtime(format!(
            "expected a terminal {want:?} line, got: {last}"
        )))
    }
}

/// The decoded rendered figure from a submit exchange's `done` line.
pub fn figure_of(lines: &[String]) -> Result<String, BinError> {
    let done = terminal_line(lines, "done")?;
    line_str(done, "figure")
        .ok_or_else(|| BinError::Runtime(format!("done line lacks a figure: {done}")))
}

/// Reads one daemon counter via a `metrics` exchange (0 if the counter
/// has never been bumped).
pub fn counter_of(socket: &Path, key: &str) -> Result<u64, BinError> {
    let lines = request_lines(socket, "{\"op\":\"metrics\"}")?;
    let line = terminal_line(&lines, "metrics")?;
    let v = parse_json(line).map_err(|e| BinError::Runtime(format!("bad metrics line: {e}")))?;
    Ok(v.get("counters")
        .and_then(|c| c.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0))
}
