//! Wall-clock benchmark of the serve daemon's content-addressed
//! cache: cold submit vs warm replay of the listed figure specs
//! (byte-identity and all-hits enforced); records the measurement to
//! `BENCH_serve.json`.
//! Thin wrapper over the committed `experiments/serve_bench.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("serve_bench"))
}
