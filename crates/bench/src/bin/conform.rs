//! Differential conformance run: prove every ROB scheme is
//! timing-only (DESIGN.md §12). Committed mixes + corpus replay +
//! fresh fuzz; exits 1 on the first divergence, 2 on malformed knobs.
//! Thin wrapper over the committed `experiments/conform.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("conform"))
}
