//! Differential conformance run: prove every ROB scheme is timing-only.
//!
//! Three passes, all through `smtsim-conform` (DESIGN.md §12):
//!
//! 1. **Committed mixes** — every paper mix in `MIXES` runs the full
//!    scheme × baseline matrix; all commit streams must equal the
//!    in-order functional reference.
//! 2. **Corpus replay** — every committed case under `tests/corpus/`
//!    (resolved relative to the source tree, so the scratch-CWD
//!    determinism harness replays the same files) must pass.
//! 3. **Fresh fuzz** — `FUZZ_CASES` machine-generated cases derived
//!    from `FUZZ_SEED`, fanned out over `SMTSIM_JOBS` workers with an
//!    index-ordered merge, so stdout is byte-identical at any job
//!    count.
//!
//! Exits 1 on the first divergence (the typed failure, including the
//! first divergent commit and its episode context, goes to stdout so
//! drift is visible in CI logs), 2 on malformed knobs.

use smtsim_conform::{check_workloads, parse_case, run_fresh_cases, CaseVerdict};
use smtsim_workload::mix;
use std::path::PathBuf;
use std::sync::Arc;

/// The committed corpus directory, pinned to the source tree (the
/// binary's CWD is a scratch directory under `cargo xtask determinism`).
fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn main() {
    smtsim_bench::run_bin(run)
}

fn run() -> Result<(), smtsim_bench::BinError> {
    let env = smtsim_bench::BenchEnv::from_env()?;
    let mut failures = 0usize;

    println!("Conformance differential (committed mixes)");
    for &m in &env.mixes {
        let wls: Vec<_> = mix(m)
            .instantiate(env.seed)
            .into_iter()
            .map(Arc::new)
            .collect();
        match check_workloads(&wls, env.seed, env.budget, env.warmup) {
            Ok(report) => println!(
                "  mix {m:>2}: ok ({} commits compared, {} configs)",
                report.commits_compared,
                report.configs.len()
            ),
            Err(e) => {
                failures += 1;
                println!("  mix {m:>2}: FAIL\n{e}");
            }
        }
    }

    println!("Corpus replay (tests/corpus)");
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect(),
        Err(e) => {
            return Err(smtsim_bench::BinError::Config(format!(
                "cannot read {}: {e}",
                dir.display()
            )));
        }
    };
    paths.sort();
    if paths.is_empty() {
        failures += 1;
        println!("  FAIL: no .case files in {}", dir.display());
    }
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let spec = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_case(&t))
        {
            Ok(s) => s,
            Err(e) => {
                failures += 1;
                println!("  {name}: FAIL (unreadable: {e})");
                continue;
            }
        };
        match smtsim_conform::run_case(&spec) {
            CaseVerdict::Pass { commits } => println!("  {name}: pass ({commits} commits)"),
            CaseVerdict::Skipped { reason } => {
                failures += 1;
                println!("  {name}: FAIL (committed case skipped: {reason})");
            }
            CaseVerdict::Fail { failure, shrunk } => {
                failures += 1;
                println!("  {name}: FAIL (shrunk to {shrunk:?})\n{failure}");
            }
        }
    }

    println!(
        "Fresh fuzz (seed={}, cases={})",
        env.fuzz_seed, env.fuzz_cases
    );
    let jobs = env.jobs.unwrap_or(0);
    for (i, (spec, verdict)) in run_fresh_cases(env.fuzz_seed, env.fuzz_cases, jobs)
        .iter()
        .enumerate()
    {
        match verdict {
            CaseVerdict::Pass { commits } => {
                println!("  case {i} (seed={}): pass ({commits} commits)", spec.seed);
            }
            CaseVerdict::Skipped { reason } => {
                println!("  case {i} (seed={}): skipped ({reason})", spec.seed);
            }
            CaseVerdict::Fail { failure, shrunk } => {
                failures += 1;
                println!(
                    "  case {i} (seed={}): FAIL (shrunk to {shrunk:?})\n{failure}",
                    spec.seed
                );
            }
        }
    }

    if failures > 0 {
        println!("conform: {failures} check(s) FAILED");
        return Err(smtsim_bench::BinError::Runtime(format!(
            "{failures} conformance check(s) failed"
        )));
    }
    println!("conform: all checks passed");
    Ok(())
}
