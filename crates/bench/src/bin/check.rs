//! Bounded model checking + trace conformance for the two-level ROB
//! transfer protocol (DESIGN.md §14).
//!
//! Three passes, all through `smtsim-check`:
//!
//! 1. **Bounded exploration** — every scheme family × release policy
//!    is exhaustively explored at `CHECK_THREADS` × `CHECK_L2` bounds
//!    (3 outstanding misses per thread up to 3 threads, 2 at 4). All
//!    nine combinations — a superset of the paper's four schemes —
//!    must be clean; a violation prints its minimal counterexample.
//! 2. **Paper-mix conformance** — every mix in `MIXES` runs the four
//!    paper configurations under the live simulator with tracing on,
//!    and every emitted episode stream must be a path the abstract
//!    model accepts.
//! 3. **Corpus conformance** — every committed fuzz case under
//!    `tests/corpus/` replays through the same matrix (resolved
//!    relative to the source tree, so the scratch-CWD determinism
//!    harness replays the same files).
//!
//! Exits 1 on the first violation (the counterexample or the
//! nonconforming cycle goes to stdout so drift is visible in CI
//! logs), 2 on malformed knobs.

use smtsim_check::{explore, replay_case, replay_mix, Bounds, ModelConfig, ReplayOutcome};
use smtsim_conform::parse_case;
use smtsim_rob2::{ReleasePolicy, SchemeKind};
use std::path::PathBuf;

/// The committed corpus directory, pinned to the source tree (the
/// binary's CWD is a scratch directory under `cargo xtask determinism`).
fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// The outstanding-miss bound implied by the thread bound: the full
/// 3-miss product is cheap up to 3 threads; at 4 threads the state
/// space grows ~20× per extra miss, so CI drops to 2 (the 4×3 product
/// is still exhaustive, just a ~30 s release-mode run — see
/// EXPERIMENTS.md).
fn misses_for(threads: usize) -> usize {
    if threads <= 3 {
        3
    } else {
        2
    }
}

fn print_outcomes(outcomes: &[ReplayOutcome]) {
    for o in outcomes {
        println!(
            "    {:<24} ok ({} events, {} episodes, {} grants, {} denials, {} releases)",
            o.label,
            o.conformance.events,
            o.conformance.episodes,
            o.conformance.grants,
            o.conformance.denials,
            o.conformance.releases
        );
    }
}

fn main() {
    smtsim_bench::run_bin(run)
}

fn run() -> Result<(), smtsim_bench::BinError> {
    let env = smtsim_bench::BenchEnv::from_env()?;
    let mut failures = 0usize;

    let bounds = Bounds {
        threads: env.check_threads,
        l2: env.check_l2,
        misses: misses_for(env.check_threads),
    };
    println!(
        "Bounded exploration (threads={}, l2={}, misses={})",
        bounds.threads, bounds.l2, bounds.misses
    );
    for kind in [
        SchemeKind::Reactive,
        SchemeKind::CountDelayed,
        SchemeKind::Predictive,
    ] {
        for release in [
            ReleasePolicy::TriggerServiced,
            ReleasePolicy::DrainAndNoMiss,
            ReleasePolicy::DrainOnly,
        ] {
            let cfg = ModelConfig {
                kind,
                release,
                bounds,
            };
            let report = explore(&cfg)
                .map_err(|e| smtsim_bench::BinError::Config(format!("bad bounds: {e}")))?;
            let label = format!("{kind:?}/{release:?}");
            match &report.violation {
                None => println!(
                    "  {label:<34} clean ({} states, {} transitions, depth {})",
                    report.states, report.transitions, report.depth
                ),
                Some(v) => {
                    failures += 1;
                    println!("  {label:<34} VIOLATION\n{v}");
                }
            }
        }
    }

    println!(
        "Paper-mix conformance (seed={}, budget={}, warmup={})",
        env.seed, env.budget, env.warmup
    );
    for &m in &env.mixes {
        match replay_mix(m, env.seed, env.budget, env.warmup) {
            Ok(outcomes) => {
                println!("  mix {m:>2}:");
                print_outcomes(&outcomes);
            }
            Err(e) => {
                failures += 1;
                println!("  mix {m:>2}: FAIL\n{e}");
            }
        }
    }

    println!("Corpus conformance (tests/corpus)");
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect(),
        Err(e) => {
            return Err(smtsim_bench::BinError::Config(format!(
                "cannot read {}: {e}",
                dir.display()
            )));
        }
    };
    paths.sort();
    if paths.is_empty() {
        failures += 1;
        println!("  FAIL: no .case files in {}", dir.display());
    }
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let spec = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_case(&t))
        {
            Ok(s) => s,
            Err(e) => {
                failures += 1;
                println!("  {name}: FAIL (unreadable: {e})");
                continue;
            }
        };
        match replay_case(&spec) {
            Ok(outcomes) => {
                println!("  {name}:");
                print_outcomes(&outcomes);
            }
            Err(e) => {
                failures += 1;
                println!("  {name}: FAIL\n{e}");
            }
        }
    }

    if failures > 0 {
        println!("check: {failures} check(s) FAILED");
        return Err(smtsim_bench::BinError::Runtime(format!(
            "{failures} model/conformance check(s) failed"
        )));
    }
    println!("check: all checks passed");
    Ok(())
}
