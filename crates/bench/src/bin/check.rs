//! Bounded model checking + trace conformance for the two-level ROB
//! transfer protocol (DESIGN.md §14): exhaustive scheme × release
//! exploration at `CHECK_THREADS` × `CHECK_L2` bounds, then paper-mix
//! and corpus conformance. Exits 1 on the first violation.
//! Thin wrapper over the committed `experiments/check.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("check"))
}
