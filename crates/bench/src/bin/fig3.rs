//! Figure 3: DoD distribution under 2-Level R-ROB16 (+56 % mean
//! captured dependents over Figure 1 in the paper).
fn main() {
    smtsim_bench::run_bin(|| {
        let env = smtsim_bench::BenchEnv::from_env()?;
        let mut lab = smtsim_bench::prepared_lab(&env)?;
        let mixes = env.mixes.clone();
        let base = smtsim_rob2::figures::fig1(&mut lab, &mixes);
        let fig = smtsim_rob2::figures::fig3(&mut lab, &mixes);
        print!("{}", smtsim_rob2::report::render_histogram(&fig));
        println!(
            "mean dependents vs Figure 1: {:+.1}%",
            (fig.pooled_mean() / base.pooled_mean() - 1.0) * 100.0
        );
        Ok(())
    })
}
