//! Figure 3: DoD distribution under 2-Level R-ROB16 (+56 % mean
//! captured dependents over Figure 1 in the paper).
//! Thin wrapper over the committed `experiments/fig3.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("fig3"))
}
