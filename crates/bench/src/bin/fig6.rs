//! Figure 6: fair throughput of 2-Level P-ROB3 and P-ROB5.
fn main() {
    let env = smtsim_bench::BenchEnv::read();
    let mut lab = env.lab();
    let fig = smtsim_rob2::figures::fig6(&mut lab, &env.mixes);
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
