//! Figure 6: fair throughput of 2-Level P-ROB3 and P-ROB5.
//! Thin wrapper over the committed `experiments/fig6.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("fig6"))
}
