//! Figure 6: fair throughput of 2-Level P-ROB3 and P-ROB5.
fn main() {
    let mut lab = smtsim_bench::lab_from_env();
    let fig = smtsim_rob2::figures::fig6(&mut lab, &smtsim_bench::mixes_from_env());
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
