//! Figure 5: fair throughput of 2-Level CDR-ROB15 (32-cycle snapshot).
fn main() {
    let mut lab = smtsim_bench::lab_from_env();
    let fig = smtsim_rob2::figures::fig5(&mut lab, &smtsim_bench::mixes_from_env());
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
