//! Figure 5: fair throughput of 2-Level CDR-ROB15 (32-cycle count delay).
//! Thin wrapper over the committed `experiments/fig5.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("fig5"))
}
