//! Figure 5: fair throughput of 2-Level CDR-ROB15 (32-cycle count delay).
fn main() {
    smtsim_bench::run_bin(|| {
        let env = smtsim_bench::BenchEnv::from_env()?;
        let mut lab = smtsim_bench::prepared_lab(&env)?;
        let fig = smtsim_rob2::figures::fig5(&mut lab, &env.mixes);
        print!("{}", smtsim_rob2::report::render_figure(&fig));
        Ok(())
    })
}
