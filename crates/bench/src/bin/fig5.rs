//! Figure 5: fair throughput of 2-Level CDR-ROB15 (32-cycle snapshot).
fn main() {
    let env = smtsim_bench::BenchEnv::read();
    let mut lab = env.lab();
    let fig = smtsim_rob2::figures::fig5(&mut lab, &env.mixes);
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
