//! The `smtsim-serve` daemon (DESIGN.md §17): sweep-as-a-service on a
//! Unix socket with a persistent content-addressed result cache.
//! Configured by the `SMTSIM_SERVE_*` knobs plus `SMTSIM_JOBS`; serves
//! registry submissions from the committed `experiments/` directory
//! and inline spec TOML. Runs until a protocol `shutdown` drains it.
fn main() {
    smtsim_bench::run_bin(smtsim_bench::serve_support::run_serve)
}
