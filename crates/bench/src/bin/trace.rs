//! Structured-trace dump and L2-miss episode analytics over the
//! Figure 2 configuration set. Writes `results/episodes.txt`
//! (committed) and `results/trace.jsonl` (scratch; for ad-hoc
//! analysis — `jq 'select(.event=="l2_rob_allocated")'` etc.).
//! Thin wrapper over the committed `experiments/trace.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("trace"))
}
