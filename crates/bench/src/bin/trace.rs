//! Structured-trace dump and L2-miss episode analytics.
//!
//! Runs the Figure 2 configuration set (Baseline_32, Baseline_128,
//! 2-Level R-ROB16) over `MIXES` with tracing armed, then writes:
//!
//! * `results/trace.jsonl` — the raw `(cycle, event)` stream as JSONL,
//!   one cell after another (uncommitted; it is large and exists for
//!   ad-hoc analysis — `jq 'select(.event=="l2_rob_allocated")'` etc.);
//! * `results/episodes.txt` — the per-mix episode summary table
//!   (committed; deterministic at any `SMTSIM_JOBS`, like every other
//!   `results/*.txt`), also printed to stdout.
//!
//! The summary accounts every second-level allocation: for each cell,
//! `alloc` episodes were granted the partition and `relsd` of those
//! observed their release before the run ended (the difference is at
//! most the one tenure still live at the stop cycle).

use smtsim_obs::{trace_jsonl, EpisodeSummary};
use smtsim_rob2::{RobConfig, SweepCell, TwoLevelConfig};
use std::fmt::Write as _;

fn main() {
    smtsim_bench::run_bin(run)
}

fn run() -> Result<(), smtsim_bench::BinError> {
    let env = smtsim_bench::BenchEnv::from_env()?;
    let mut lab = env.lab();
    let configs = [
        RobConfig::Baseline(32),
        RobConfig::Baseline(128),
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
    ];
    let cells: Vec<SweepCell> = env
        .mixes
        .iter()
        .flat_map(|&m| configs.iter().map(move |&c| (m, c)))
        .collect();
    let results = lab.sweep_traced(&cells);

    let mut table = String::from("Episode summary (Figure 2 configuration set)\n");
    table.push_str(&smtsim_obs::summary_table_header());
    let mut jsonl = String::new();
    let mut failed = 0usize;
    for (&(m, cfg), r) in cells.iter().zip(&results) {
        let label = format!("Mix {m} {}", cfg.label());
        match r {
            Ok(traced) => {
                let summary = EpisodeSummary::from_episodes(&traced.episodes);
                table.push_str(&summary.render_row(&label));
                jsonl.push_str(&trace_jsonl(&traced.events));
            }
            Err(e) => {
                failed += 1;
                let _ = writeln!(table, "{label:<28} n/a ({})", e.kind());
            }
        }
    }

    print!("{table}");
    std::fs::create_dir_all("results")?;
    std::fs::write("results/episodes.txt", &table)?;
    eprintln!("results/episodes.txt ({} bytes)", table.len());
    std::fs::write("results/trace.jsonl", &jsonl)?;
    eprintln!(
        "results/trace.jsonl ({} bytes, {} cells)",
        jsonl.len(),
        results.len() - failed
    );
    if failed > 0 {
        return Err(smtsim_bench::BinError::Runtime(format!(
            "{failed} cell(s) failed"
        )));
    }
    Ok(())
}
