//! Kill-and-resume demonstration for the resumable sweep journal
//! (DESIGN.md §13): runs the Figure 2 cell matrix uninterrupted,
//! killed mid-sweep, and resumed, and proves the rendered bytes are
//! identical (exit 1 otherwise).
//! Thin wrapper over the committed `experiments/resume_bench.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("resume_bench"))
}
