//! Figure 2: fair throughput of 2-Level R-ROB16 vs Baseline_32/128.
//! Thin wrapper over the committed `experiments/fig2.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("fig2"))
}
