//! Figure 2: fair throughput of 2-Level R-ROB16 vs Baseline_32/128.
fn main() {
    smtsim_bench::run_bin(|| {
        let env = smtsim_bench::BenchEnv::from_env()?;
        let mut lab = smtsim_bench::prepared_lab(&env)?;
        let fig = smtsim_rob2::figures::fig2(&mut lab, &env.mixes);
        print!("{}", smtsim_rob2::report::render_figure(&fig));
        Ok(())
    })
}
