//! Figure 2: fair throughput of 2-Level R-ROB16 vs Baseline_32/128.
fn main() {
    let env = smtsim_bench::BenchEnv::read();
    let mut lab = env.lab();
    let fig = smtsim_rob2::figures::fig2(&mut lab, &env.mixes);
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
