//! Figure 2: fair throughput of 2-Level R-ROB16 vs Baseline_32/128.
fn main() {
    let mut lab = smtsim_bench::lab_from_env();
    let fig = smtsim_rob2::figures::fig2(&mut lab, &smtsim_bench::mixes_from_env());
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
