//! Figure 1: instructions dependent on a long-latency load, observed
//! in the ROB at miss service time, on the Baseline_32 machine.
//! Thin wrapper over the committed `experiments/fig1.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("fig1"))
}
