//! Figure 1: instructions dependent on a long-latency load, observed
//! in the ROB at miss service time, on the Baseline_32 machine.
fn main() {
    smtsim_bench::run_bin(|| {
        let env = smtsim_bench::BenchEnv::from_env()?;
        let mut lab = smtsim_bench::prepared_lab(&env)?;
        let fig = smtsim_rob2::figures::fig1(&mut lab, &env.mixes);
        print!("{}", smtsim_rob2::report::render_histogram(&fig));
        Ok(())
    })
}
