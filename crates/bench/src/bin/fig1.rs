//! Figure 1: instructions dependent on a long-latency load, observed
//! in the ROB at miss service time, on the Baseline_32 machine.
fn main() {
    let mut lab = smtsim_bench::lab_from_env();
    let fig = smtsim_rob2::figures::fig1(&mut lab, &smtsim_bench::mixes_from_env());
    print!("{}", smtsim_rob2::report::render_histogram(&fig));
}
