//! Figure 1: instructions dependent on a long-latency load, observed
//! in the ROB at miss service time, on the Baseline_32 machine.
fn main() {
    let env = smtsim_bench::BenchEnv::read();
    let mut lab = env.lab();
    let fig = smtsim_rob2::figures::fig1(&mut lab, &env.mixes);
    print!("{}", smtsim_rob2::report::render_histogram(&fig));
}
