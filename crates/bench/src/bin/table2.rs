//! Regenerates Table 2: the simulated benchmark mixes.
fn main() {
    smtsim_bench::run_bin(|| {
        print!("{}", smtsim_rob2::report::render_table2());
        Ok(())
    })
}
