//! Regenerates Table 2: the simulated benchmark mixes.
//! Thin wrapper over the committed `experiments/table2.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("table2"))
}
