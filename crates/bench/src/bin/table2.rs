//! Regenerates Table 2: the simulated benchmark mixes.
fn main() {
    print!("{}", smtsim_rob2::report::render_table2());
}
