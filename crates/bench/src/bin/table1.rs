//! Regenerates Table 1: the simulated machine configuration.
//! Thin wrapper over the committed `experiments/table1.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("table1"))
}
