//! Regenerates Table 1: the simulated machine configuration.
fn main() {
    let env = smtsim_bench::BenchEnv::read();
    print!("{}", smtsim_rob2::report::render_table1(&env.lab().machine));
}
