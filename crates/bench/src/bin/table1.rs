//! Regenerates Table 1: the simulated machine configuration.
fn main() {
    let lab = smtsim_bench::lab_from_env();
    print!("{}", smtsim_rob2::report::render_table1(&lab.machine));
}
