//! Regenerates Table 1: the simulated machine configuration.
fn main() {
    smtsim_bench::run_bin(|| {
        let env = smtsim_bench::BenchEnv::from_env()?;
        print!("{}", smtsim_rob2::report::render_table1(&env.lab().machine));
        Ok(())
    })
}
