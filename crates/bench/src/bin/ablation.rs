//! Ablation A1 (DESIGN.md §6): sensitivity of the two-level design
//! choices (recheck cadence, CDR delay, release policy, L2 size).
fn main() {
    let env = smtsim_bench::BenchEnv::read();
    let mut lab = env.lab();
    let fig = smtsim_rob2::figures::ablation(&mut lab, &env.mixes);
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
