//! Ablation A1 (DESIGN.md §6): sensitivity of the two-level design
//! choices (recheck cadence, CDR delay, release policy, L2 size).
fn main() {
    smtsim_bench::run_bin(|| {
        let env = smtsim_bench::BenchEnv::from_env()?;
        let mut lab = smtsim_bench::prepared_lab(&env)?;
        let fig = smtsim_rob2::figures::ablation(&mut lab, &env.mixes);
        print!("{}", smtsim_rob2::report::render_figure(&fig));
        Ok(())
    })
}
