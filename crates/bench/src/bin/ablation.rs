//! Ablation A1 (DESIGN.md §6): sensitivity of the two-level design
//! choices (recheck cadence, CDR delay, release policy, L2 size).
//! Thin wrapper over the committed `experiments/ablation.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("ablation"))
}
