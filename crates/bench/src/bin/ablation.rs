//! Ablation A1 (DESIGN.md §6): sensitivity of the two-level design
//! choices (recheck cadence, CDR delay, release policy, L2 size).
fn main() {
    let mut lab = smtsim_bench::lab_from_env();
    let fig = smtsim_rob2::figures::ablation(&mut lab, &smtsim_bench::mixes_from_env());
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
