//! Regenerates every table and figure into `results/`, printing a
//! one-line summary per artifact. Sweeps are crash-isolated: a failed
//! cell renders as `n/a` and is listed in the final summary.
//! Thin wrapper over the committed `experiments/all_figures.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("all_figures"))
}
