//! Regenerates every table and figure into `results/`, printing a
//! one-line summary per artifact. Honors the same `BUDGET`/`WARMUP`/
//! `SEED`/`MIXES` environment knobs as the individual binaries (plus
//! the fault/integrity knobs — see `smtsim_bench::BenchEnv`).
//!
//! Sweeps are crash-isolated: a cell whose run fails (deadlock,
//! invariant violation, panic) renders as `n/a` in its figure and is
//! listed in the final summary; the remaining cells still regenerate.
//! Each figure's `mix × config` matrix fans out across `SMTSIM_JOBS`
//! worker threads (default: all cores) after a serial phase-1
//! normalization pass; the written files are byte-identical at any
//! job count.
//!
//! ```sh
//! BUDGET=40000 SMTSIM_JOBS=4 cargo run --release -p smtsim-bench --bin all_figures
//! ```

use smtsim_rob2::{figures, report};
use std::fs;

fn main() {
    smtsim_bench::run_bin(run)
}

fn run() -> Result<(), smtsim_bench::BinError> {
    fs::create_dir_all("results")?;
    let env = smtsim_bench::BenchEnv::from_env()?;
    let mixes = env.mixes.clone();
    let mut lab = smtsim_bench::prepared_lab(&env)?;
    eprintln!(
        "budget={} warmup={} seed={} jobs={} mixes={mixes:?}",
        lab.mt_budget,
        lab.warmup,
        lab.seed,
        lab.effective_jobs()
    );

    let write = |name: &str, contents: String| -> std::io::Result<()> {
        fs::write(format!("results/{name}.txt"), &contents)?;
        eprintln!("results/{name}.txt ({} bytes)", contents.len());
        Ok(())
    };

    let mut failed: Vec<String> = Vec::new();

    write("table1", report::render_table1(&lab.machine))?;
    write("table2", report::render_table2())?;

    let f1 = figures::fig1(&mut lab, &mixes);
    failed.extend(f1.failures.iter().cloned());
    write("fig1", report::render_histogram(&f1))?;

    let f2 = figures::fig2(&mut lab, &mixes);
    failed.extend(f2.failures.iter().cloned());
    write("fig2", report::render_figure(&f2))?;

    // A histogram whose every mix failed pools to a 0 (or NaN) mean;
    // the comparison against Figure 1 is then undefined, not "+0 %".
    let vs_fig1 = |pooled: f64, base: f64| match smtsim_rob2::improvement(pooled, base) {
        Some(d) => format!("{:+.1}%", d * 100.0),
        None => "n/a".to_string(),
    };

    let f3 = figures::fig3(&mut lab, &mixes);
    failed.extend(f3.failures.iter().cloned());
    write(
        "fig3",
        format!(
            "{}mean dependents vs Figure 1: {}\n",
            report::render_histogram(&f3),
            vs_fig1(f3.pooled_mean(), f1.pooled_mean())
        ),
    )?;

    let f4 = figures::fig4(&mut lab, &mixes);
    failed.extend(f4.failures.iter().cloned());
    write("fig4", report::render_figure(&f4))?;

    let f5 = figures::fig5(&mut lab, &mixes);
    failed.extend(f5.failures.iter().cloned());
    write("fig5", report::render_figure(&f5))?;

    let f6 = figures::fig6(&mut lab, &mixes);
    failed.extend(f6.failures.iter().cloned());
    write("fig6", report::render_figure(&f6))?;

    let f7 = figures::fig7(&mut lab, &mixes);
    failed.extend(f7.failures.iter().cloned());
    write(
        "fig7",
        format!(
            "{}mean dependents vs Figure 1: {}\n",
            report::render_histogram(&f7),
            vs_fig1(f7.pooled_mean(), f1.pooled_mean())
        ),
    )?;

    let sweep = figures::threshold_sweep(&mut lab, &mixes, &[1, 2, 4, 8, 12, 16, 24, 32]);
    failed.extend(sweep.failures.iter().cloned());
    write("threshold_sweep", report::render_figure(&sweep))?;

    let abl = figures::ablation(&mut lab, &mixes);
    failed.extend(abl.failures.iter().cloned());
    write("ablation", report::render_figure(&abl))?;

    if failed.is_empty() {
        eprintln!("done");
    } else {
        eprintln!("done with {} failed cell(s):", failed.len());
        for f in &failed {
            eprintln!("  failed: {f}");
        }
    }
    Ok(())
}
