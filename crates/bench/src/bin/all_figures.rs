//! Regenerates every table and figure into `results/`, printing a
//! one-line summary per artifact. Honors the same `BUDGET`/`WARMUP`/
//! `SEED`/`MIXES` environment knobs as the individual binaries (plus
//! the fault/integrity knobs — see `smtsim_bench::lab_from_env`).
//!
//! Sweeps are crash-isolated: a cell whose run fails (deadlock,
//! invariant violation) renders as `n/a` in its figure and is listed in
//! the final summary; the remaining cells still regenerate.
//!
//! ```sh
//! BUDGET=40000 cargo run --release -p smtsim-bench --bin all_figures
//! ```

use smtsim_rob2::{figures, report};
use std::fs;

fn main() -> std::io::Result<()> {
    fs::create_dir_all("results")?;
    let mixes = smtsim_bench::mixes_from_env();
    let mut lab = smtsim_bench::lab_from_env();
    eprintln!(
        "budget={} warmup={} seed={} mixes={mixes:?}",
        lab.mt_budget, lab.warmup, lab.seed
    );

    let write = |name: &str, contents: String| -> std::io::Result<()> {
        fs::write(format!("results/{name}.txt"), &contents)?;
        eprintln!("results/{name}.txt ({} bytes)", contents.len());
        Ok(())
    };

    let mut failed: Vec<String> = Vec::new();

    write("table1", report::render_table1(&lab.machine))?;
    write("table2", report::render_table2())?;

    let f1 = figures::fig1(&mut lab, &mixes);
    failed.extend(f1.failures.iter().cloned());
    write("fig1", report::render_histogram(&f1))?;

    let f2 = figures::fig2(&mut lab, &mixes);
    failed.extend(f2.failures.iter().cloned());
    write("fig2", report::render_figure(&f2))?;

    let f3 = figures::fig3(&mut lab, &mixes);
    failed.extend(f3.failures.iter().cloned());
    write(
        "fig3",
        format!(
            "{}mean dependents vs Figure 1: {:+.1}%\n",
            report::render_histogram(&f3),
            (f3.pooled_mean() / f1.pooled_mean() - 1.0) * 100.0
        ),
    )?;

    let f4 = figures::fig4(&mut lab, &mixes);
    failed.extend(f4.failures.iter().cloned());
    write("fig4", report::render_figure(&f4))?;

    let f5 = figures::fig5(&mut lab, &mixes);
    failed.extend(f5.failures.iter().cloned());
    write("fig5", report::render_figure(&f5))?;

    let f6 = figures::fig6(&mut lab, &mixes);
    failed.extend(f6.failures.iter().cloned());
    write("fig6", report::render_figure(&f6))?;

    let f7 = figures::fig7(&mut lab, &mixes);
    failed.extend(f7.failures.iter().cloned());
    write(
        "fig7",
        format!(
            "{}mean dependents vs Figure 1: {:+.1}%\n",
            report::render_histogram(&f7),
            (f7.pooled_mean() / f1.pooled_mean() - 1.0) * 100.0
        ),
    )?;

    let sweep = figures::threshold_sweep(&mut lab, &mixes, &[1, 2, 4, 8, 12, 16, 24, 32]);
    failed.extend(sweep.failures.iter().cloned());
    write("threshold_sweep", report::render_figure(&sweep))?;

    let abl = figures::ablation(&mut lab, &mixes);
    failed.extend(abl.failures.iter().cloned());
    write("ablation", report::render_figure(&abl))?;

    if failed.is_empty() {
        eprintln!("done");
    } else {
        eprintln!("done with {} failed cell(s):", failed.len());
        for f in &failed {
            eprintln!("  failed: {f}");
        }
    }
    Ok(())
}
