//! Regenerates every table and figure into `results/`, printing a
//! one-line summary per artifact. Honors the same `BUDGET`/`WARMUP`/
//! `SEED`/`MIXES` environment knobs as the individual binaries.
//!
//! ```sh
//! BUDGET=40000 cargo run --release -p smtsim-bench --bin all_figures
//! ```

use smtsim_rob2::{figures, report};
use std::fs;

fn main() -> std::io::Result<()> {
    fs::create_dir_all("results")?;
    let mixes = smtsim_bench::mixes_from_env();
    let mut lab = smtsim_bench::lab_from_env();
    eprintln!(
        "budget={} warmup={} seed={} mixes={mixes:?}",
        lab.mt_budget, lab.warmup, lab.seed
    );

    let write = |name: &str, contents: String| -> std::io::Result<()> {
        fs::write(format!("results/{name}.txt"), &contents)?;
        eprintln!("results/{name}.txt ({} bytes)", contents.len());
        Ok(())
    };

    write("table1", report::render_table1(&lab.machine))?;
    write("table2", report::render_table2())?;

    let f1 = figures::fig1(&mut lab, &mixes);
    write("fig1", report::render_histogram(&f1))?;
    write("fig2", report::render_figure(&figures::fig2(&mut lab, &mixes)))?;
    let f3 = figures::fig3(&mut lab, &mixes);
    write(
        "fig3",
        format!(
            "{}mean dependents vs Figure 1: {:+.1}%\n",
            report::render_histogram(&f3),
            (f3.pooled_mean() / f1.pooled_mean() - 1.0) * 100.0
        ),
    )?;
    write("fig4", report::render_figure(&figures::fig4(&mut lab, &mixes)))?;
    write("fig5", report::render_figure(&figures::fig5(&mut lab, &mixes)))?;
    write("fig6", report::render_figure(&figures::fig6(&mut lab, &mixes)))?;
    let f7 = figures::fig7(&mut lab, &mixes);
    write(
        "fig7",
        format!(
            "{}mean dependents vs Figure 1: {:+.1}%\n",
            report::render_histogram(&f7),
            (f7.pooled_mean() / f1.pooled_mean() - 1.0) * 100.0
        ),
    )?;
    write(
        "threshold_sweep",
        report::render_figure(&figures::threshold_sweep(
            &mut lab,
            &mixes,
            &[1, 2, 4, 8, 12, 16, 24, 32],
        )),
    )?;
    write(
        "ablation",
        report::render_figure(&figures::ablation(&mut lab, &mixes)),
    )?;
    eprintln!("done");
    Ok(())
}
