//! Generic spec runner: executes the experiment spec named by the
//! `SMTSIM_SPEC` environment variable (a path to a `*.toml` file —
//! committed under `experiments/` or anywhere else). The committed
//! harness binaries are thin wrappers over the same machinery with a
//! fixed spec name; this bin runs ad-hoc or out-of-tree specs:
//!
//! ```sh
//! SMTSIM_SPEC=experiments/l2_partition_sweep.toml \
//!     cargo run --release -p smtsim-bench --bin spec
//! ```
fn main() {
    smtsim_bench::run_bin(|| {
        let env = smtsim_bench::BenchEnv::from_env()?;
        let Some(path) = env.spec else {
            return Err(smtsim_bench::BinError::Config(
                "SMTSIM_SPEC must name an experiment spec file (e.g. \
                 SMTSIM_SPEC=experiments/fig2.toml)"
                    .into(),
            ));
        };
        smtsim_bench::run_spec(&path)
    })
}
