//! Wall-clock benchmark of the two-phase sweep engine: serial vs
//! fanned-out figure regeneration (byte-identity enforced), raw
//! kernel throughput, and journal overhead; records the measurement
//! to `BENCH_sweep.json`.
//! Thin wrapper over the committed `experiments/sweep_bench.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("sweep_bench"))
}
