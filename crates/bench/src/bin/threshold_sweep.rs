//! §5.2: DoD-threshold sweep of the reactive scheme (1..16).
fn main() {
    smtsim_bench::run_bin(|| {
        let env = smtsim_bench::BenchEnv::from_env()?;
        let mut lab = smtsim_bench::prepared_lab(&env)?;
        let fig = smtsim_rob2::figures::threshold_sweep(
            &mut lab,
            &env.mixes,
            &[1, 2, 4, 8, 12, 16, 24, 32],
        );
        print!("{}", smtsim_rob2::report::render_figure(&fig));
        Ok(())
    })
}
