//! §5.2: DoD-threshold sweep of the reactive scheme (1..32).
//! Thin wrapper over the committed `experiments/threshold_sweep.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("threshold_sweep"))
}
