//! §5.2: DoD-threshold sweep of the reactive scheme (1..16).
fn main() {
    let mut lab = smtsim_bench::lab_from_env();
    let fig = smtsim_rob2::figures::threshold_sweep(
        &mut lab,
        &smtsim_bench::mixes_from_env(),
        &[1, 2, 4, 8, 12, 16, 24, 32],
    );
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
