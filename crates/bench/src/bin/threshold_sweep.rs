//! §5.2: DoD-threshold sweep of the reactive scheme (1..16).
fn main() {
    let env = smtsim_bench::BenchEnv::read();
    let mut lab = env.lab();
    let fig =
        smtsim_rob2::figures::threshold_sweep(&mut lab, &env.mixes, &[1, 2, 4, 8, 12, 16, 24, 32]);
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
