//! Figure 4: fair throughput of 2-Level Relaxed R-ROB15.
fn main() {
    let mut lab = smtsim_bench::lab_from_env();
    let fig = smtsim_rob2::figures::fig4(&mut lab, &smtsim_bench::mixes_from_env());
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
