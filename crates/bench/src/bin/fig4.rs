//! Figure 4: fair throughput of 2-Level Relaxed R-ROB15.
fn main() {
    let env = smtsim_bench::BenchEnv::read();
    let mut lab = env.lab();
    let fig = smtsim_rob2::figures::fig4(&mut lab, &env.mixes);
    print!("{}", smtsim_rob2::report::render_figure(&fig));
}
