//! Figure 4: fair throughput of 2-Level Relaxed R-ROB15.
//! Thin wrapper over the committed `experiments/fig4.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("fig4"))
}
