//! Figure 7: DoD distribution under 2-Level P-ROB (+120 % mean
//! captured dependents over Figure 1 in the paper).
//! Thin wrapper over the committed `experiments/fig7.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("fig7"))
}
