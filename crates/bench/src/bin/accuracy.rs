//! DoD-accuracy table: the dynamic §4.1 counter and §4.2 predictor
//! cross-checked against the static dependence bounds, per mix, under
//! R-ROB16 and P-ROB5.
fn main() {
    let env = smtsim_bench::BenchEnv::read();
    let mut lab = env.lab();
    let acc = smtsim_rob2::figures::accuracy(&mut lab, &env.mixes);
    print!("{}", smtsim_rob2::report::render_accuracy(&acc));
    if acc.total_violations() > 0 {
        eprintln!(
            "error: {} fill(s) exceeded the static DoD bound",
            acc.total_violations()
        );
        std::process::exit(1);
    }
}
