//! DoD-accuracy table: the dynamic §4.1 counter and §4.2 predictor
//! cross-checked against the static dependence bounds, per mix, under
//! R-ROB16 and P-ROB5.
fn main() {
    smtsim_bench::run_bin(|| {
        let env = smtsim_bench::BenchEnv::from_env()?;
        let mut lab = smtsim_bench::prepared_lab(&env)?;
        let acc = smtsim_rob2::figures::accuracy(&mut lab, &env.mixes);
        print!("{}", smtsim_rob2::report::render_accuracy(&acc));
        if acc.total_violations() > 0 {
            return Err(smtsim_bench::BinError::Runtime(format!(
                "{} fill(s) exceeded the static DoD bound",
                acc.total_violations()
            )));
        }
        Ok(())
    })
}
