//! DoD-accuracy table: the dynamic §4.1 counter and §4.2 predictor
//! cross-checked against the static dependence bounds, per mix, under
//! R-ROB16 and P-ROB5.
//! Thin wrapper over the committed `experiments/accuracy.toml` spec.
fn main() {
    smtsim_bench::run_bin(|| smtsim_bench::run_named_spec("accuracy"))
}
