//! Runner for `kind = "episodes"`: structured-trace dump and L2-miss
//! episode analytics over the spec's scheme set (see the `trace` bin
//! docs for the artifact contract).

use crate::{BenchEnv, BinError};
use smtsim_obs::{trace_jsonl, EpisodeSummary};
use smtsim_rob2::{ExperimentSpec, SweepCell};
use std::fmt::Write as _;

pub(super) fn run(env: &BenchEnv, spec: &ExperimentSpec) -> Result<(), BinError> {
    let mut lab = env.lab_for_spec(spec);
    let cells: Vec<SweepCell> = env
        .mixes
        .iter()
        .flat_map(|&m| spec.variants.iter().map(move |v| (m, v.config)))
        .collect();
    let results = lab.sweep_traced(&cells);

    let mut table = format!(
        "{}\n",
        spec.title.as_deref().expect("validated at parse time")
    );
    table.push_str(&smtsim_obs::summary_table_header());
    let mut jsonl = String::new();
    let mut failed = 0usize;
    for (&(m, cfg), r) in cells.iter().zip(&results) {
        let label = format!("Mix {m} {}", cfg.label());
        match r {
            Ok(traced) => {
                let summary = EpisodeSummary::from_episodes(&traced.episodes);
                table.push_str(&summary.render_row(&label));
                jsonl.push_str(&trace_jsonl(&traced.events));
            }
            Err(e) => {
                failed += 1;
                let _ = writeln!(table, "{label:<28} n/a ({})", e.kind());
            }
        }
    }

    print!("{table}");
    std::fs::create_dir_all("results")?;
    std::fs::write("results/episodes.txt", &table)?;
    eprintln!("results/episodes.txt ({} bytes)", table.len());
    std::fs::write("results/trace.jsonl", &jsonl)?;
    eprintln!(
        "results/trace.jsonl ({} bytes, {} cells)",
        jsonl.len(),
        results.len() - failed
    );
    if failed > 0 {
        return Err(BinError::Runtime(format!("{failed} cell(s) failed")));
    }
    Ok(())
}
