//! Runner for `kind = "suite"`: regenerates every listed sibling spec
//! into `results/<id>.txt` on one shared lab, printing a one-line
//! summary per artifact to stderr.
//!
//! Sweeps are crash-isolated: a cell whose run fails (deadlock,
//! invariant violation, panic) renders as `n/a` in its figure and is
//! listed in the final summary; the remaining cells still regenerate.
//!
//! The shared lab means every sub-spec must agree with the suite on
//! machine, normalization baseline, mixes and knobs — a sub-spec that
//! declares its own would silently be overridden, so that is refused
//! as a configuration error instead. Histogram pooled means are
//! memoized by scheme fingerprint, so a `compare` reference that
//! already rendered earlier in the suite (Figure 1 for Figures 3 and
//! 7) is reused instead of re-run.

use super::{figures, sibling_spec};
use crate::{BenchEnv, BinError};
use smtsim_rob2::{report, ExperimentSpec, SpecKind, SpecKnobs};
use std::collections::BTreeMap;
use std::fs;

/// Refuses a sub-spec whose own experiment parameters would silently
/// be overridden by the suite's shared lab.
fn check_conformity(suite: &ExperimentSpec, sub: &ExperimentSpec) -> Result<(), BinError> {
    let complain = |what: &str| {
        Err(BinError::Config(format!(
            "spec {}: a suite entry must inherit the suite's {what} (the suite runs every \
             entry on one shared lab)",
            sub.id
        )))
    };
    if sub.machine_id != suite.machine_id || sub.fetch_policy_id != suite.fetch_policy_id {
        return complain("machine");
    }
    if sub.norm_id != suite.norm_id {
        return complain("normalization baseline");
    }
    if sub.mixes.is_some() {
        return complain("mix selection");
    }
    if sub.knobs_id.is_some() || sub.knob_overrides != SpecKnobs::default() {
        return complain("knobs");
    }
    Ok(())
}

pub(super) fn run(
    env: &BenchEnv,
    spec: &ExperimentSpec,
    path: &std::path::Path,
) -> Result<(), BinError> {
    fs::create_dir_all("results")?;
    let mut subs = Vec::new();
    for id in &spec.specs {
        let sub = sibling_spec(path, id)?;
        check_conformity(spec, &sub)?;
        subs.push(sub);
    }

    let mixes = env.mixes.clone();
    let mut lab = super::prepared_spec_lab(env, spec)?;
    eprintln!(
        "budget={} warmup={} seed={} jobs={} mixes={mixes:?}",
        lab.mt_budget,
        lab.warmup,
        lab.seed,
        lab.effective_jobs()
    );

    let write = |name: &str, contents: String| -> std::io::Result<()> {
        fs::write(format!("results/{name}.txt"), &contents)?;
        eprintln!("results/{name}.txt ({} bytes)", contents.len());
        Ok(())
    };

    let mut failed: Vec<String> = Vec::new();
    // Pooled mean per already-rendered histogram scheme, so a later
    // histogram's `compare` reference reuses it instead of re-running.
    let mut pooled: BTreeMap<String, f64> = BTreeMap::new();

    for sub in &subs {
        match sub.kind {
            SpecKind::Table1 => write(&sub.id, report::render_table1(&lab.machine))?,
            SpecKind::Table2 => write(&sub.id, report::render_table2())?,
            SpecKind::Figure => {
                let fig = figures::figure_data(&mut lab, &mixes, sub);
                failed.extend(fig.failures.iter().cloned());
                write(&sub.id, report::render_figure(&fig))?;
            }
            SpecKind::Histogram => {
                let base = sub.compare.as_ref().map(|(cmp, label)| {
                    let key = cmp.config.fingerprint();
                    let mean = pooled.get(&key).copied().unwrap_or_else(|| {
                        smtsim_rob2::figures::dod_figure(&mut lab, label, cmp.config, &mixes)
                            .pooled_mean()
                    });
                    (mean, label.clone())
                });
                let fig = figures::histogram_data(&mut lab, &mixes, sub);
                failed.extend(fig.failures.iter().cloned());
                pooled.insert(sub.variants[0].config.fingerprint(), fig.pooled_mean());
                let mut text = report::render_histogram(&fig);
                if let Some((mean, label)) = base {
                    text.push_str(&figures::compare_line(fig.pooled_mean(), mean, &label));
                }
                write(&sub.id, text)?;
            }
            other => {
                return Err(BinError::Config(format!(
                    "spec {}: kind = \"{}\" cannot run inside a suite (only figures, \
                     histograms and tables render to results/)",
                    sub.id,
                    other.as_str()
                )));
            }
        }
    }

    if failed.is_empty() {
        eprintln!("done");
    } else {
        eprintln!("done with {} failed cell(s):", failed.len());
        for f in &failed {
            eprintln!("  failed: {f}");
        }
    }
    Ok(())
}
