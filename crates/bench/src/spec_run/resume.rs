//! Runner for `kind = "resume"`: the kill-and-resume demonstration
//! for the resumable sweep journal (DESIGN.md §13).
//!
//! Runs the spec's cell matrix three ways and proves they render the
//! same bytes:
//!
//! 1. **Uninterrupted** — a journal-armed sweep start to finish;
//! 2. **Killed** — the same sweep against a second journal, abandoned
//!    after half the cells ("the process died mid-sweep");
//! 3. **Resumed** — a fresh lab relaunched on the killed journal:
//!    completed cells are served from disk, the rest are executed.
//!
//! The resumed figure must be byte-identical to the uninterrupted one
//! (exit 1 otherwise), and the resumed pass must have re-executed only
//! the cells the kill left unfinished. `SMTSIM_JOURNAL` (if set)
//! names the *resume* journal, otherwise a scratch path is used.
//! Timings for the cold and resumed passes go to stderr.

use crate::{BenchEnv, BinError};
use smtsim_rob2::{figures, report, ExperimentSpec, Lab, RobConfig, SweepCell};
use std::path::PathBuf;
use std::time::Instant;

/// The spec's cell matrix in `ft_sweep` dispatch order
/// (configuration-major), so `sweep_killed_after` journals exactly the
/// cells the figure sweep would run first.
fn spec_cells(spec: &ExperimentSpec, mixes: &[usize]) -> Vec<SweepCell> {
    spec.variants
        .iter()
        .flat_map(|v| mixes.iter().map(move |&m| (m, v.config)))
        .collect()
}

/// Renders the spec's FT figure on the given (journal-armed) lab.
fn render(lab: &mut Lab, spec: &ExperimentSpec, mixes: &[usize]) -> String {
    let title = spec.title.as_deref().expect("validated at parse time");
    let pairs: Vec<(String, RobConfig)> = spec
        .variants
        .iter()
        .map(|v| (v.label.clone(), v.config))
        .collect();
    report::render_figure(&figures::ft_sweep(lab, title, pairs, mixes))
}

pub(super) fn run(env: &BenchEnv, spec: &ExperimentSpec) -> Result<(), BinError> {
    let mixes = env.mixes.clone();
    let cells = spec_cells(spec, &mixes);
    let kill_after = (cells.len() / 2).max(1);

    let scratch = |tag: &str| -> PathBuf {
        std::env::temp_dir().join(format!("smtsim-resume-{}-{tag}.jsonl", std::process::id()))
    };
    let full_path = scratch("full");
    let resume_path = env.journal.clone().unwrap_or_else(|| scratch("kill"));
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&resume_path);

    // Pass 1: uninterrupted journal-armed sweep — the reference bytes.
    let t0 = Instant::now();
    let reference = {
        let mut lab = env.lab_for_spec(spec).with_journal(full_path.clone());
        lab.open_journal()?;
        render(&mut lab, spec, &mixes)
    };
    let uninterrupted = t0.elapsed();
    eprintln!(
        "uninterrupted: {} cells in {uninterrupted:.2?}",
        cells.len()
    );

    // Pass 2: the "crash" — same sweep, abandoned mid-flight.
    let mut lab = env.lab_for_spec(spec).with_journal(resume_path.clone());
    let executed = lab.sweep_killed_after(&cells, kill_after)?;
    eprintln!("killed after {executed}/{} cells", cells.len());

    // Pass 3: relaunch on the half-written journal with a fresh lab.
    let t0 = Instant::now();
    let mut lab = env.lab_for_spec(spec).with_journal(resume_path.clone());
    let on_file = lab.open_journal()?;
    let resumed_report = lab.sweep_cells(&cells);
    let resumed = t0.elapsed();
    let hits = resumed_report.journal_hits();
    eprintln!(
        "resumed: {on_file} cell(s) on file, {hits} served from journal, \
         {} re-executed in {resumed:.2?}",
        cells.len() - hits
    );

    // The rendered figure goes through the same journal (now complete).
    let mut lab = env.lab_for_spec(spec).with_journal(resume_path.clone());
    lab.open_journal()?;
    let resumed_text = render(&mut lab, spec, &mixes);

    let _ = std::fs::remove_file(&full_path);
    if env.journal.is_none() {
        let _ = std::fs::remove_file(&resume_path);
    }

    if hits < executed {
        return Err(BinError::Runtime(format!(
            "resume re-executed journaled cells: {executed} journaled, only {hits} hits"
        )));
    }
    if resumed_text != reference {
        eprintln!("--- uninterrupted ---\n{reference}");
        eprintln!("--- resumed ---\n{resumed_text}");
        return Err(BinError::Runtime(
            "resumed figure differs from the uninterrupted sweep".into(),
        ));
    }
    println!(
        "resume_bench: byte-identical after kill at {executed}/{} (journal hits: {hits})",
        cells.len()
    );
    Ok(())
}
