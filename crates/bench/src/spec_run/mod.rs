//! The spec executor: runs a parsed [`ExperimentSpec`] end to end.
//!
//! Every harness binary is a thin wrapper over [`run_named_spec`] (or
//! [`run_spec`] for the generic `spec` bin driven by `SMTSIM_SPEC`):
//! the bin names a committed `experiments/*.toml` file, this module
//! loads it, merges the environment knobs under the documented
//! precedence ([`BenchEnv::with_spec`]), lowers the result into the
//! existing [`smtsim_rob2::Lab`] machinery and renders the same bytes
//! the hand-wired bins produced before the migration (`cargo xtask
//! determinism` pins that equivalence).
//!
//! One runner per output kind:
//!
//! * figure / histogram / table1 / table2 / accuracy — [`figures`];
//! * episodes (trace dump) — [`trace`];
//! * conform / check — the differential and model-checking suites;
//! * resume / sweep-bench / serve-bench — the resilience, sweep and
//!   daemon-cache wall-clock benches;
//! * suite — renders each listed sibling spec into `results/<id>.txt`.

mod check;
mod conform;
pub(crate) mod figures;
mod resume;
mod serve_bench;
mod suite;
mod sweep_bench;
mod trace;

use crate::{BenchEnv, BinError};
use smtsim_rob2::{ExperimentSpec, Lab, SpecKind};
use std::path::{Path, PathBuf};

/// The committed spec directory, pinned to the source tree (the
/// binaries' CWD is a scratch directory under `cargo xtask
/// determinism`).
#[must_use]
pub fn spec_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../experiments")
}

/// Runs the committed spec `experiments/<name>.toml`. The entry point
/// every named harness binary delegates to.
pub fn run_named_spec(name: &str) -> Result<(), BinError> {
    run_spec(&spec_dir().join(format!("{name}.toml")))
}

/// Loads, validates and executes one spec file. Malformed specs come
/// back as typed configuration errors (exit 2 through [`crate::run_bin`])
/// with file/line context naming the offending key.
pub fn run_spec(path: &Path) -> Result<(), BinError> {
    let spec = ExperimentSpec::load(path)?;
    let env = BenchEnv::from_env()?;
    let merged = env.with_spec(&spec);
    match spec.kind {
        SpecKind::Figure => figures::run_figure(&merged, &spec),
        SpecKind::Histogram => figures::run_histogram(&merged, &spec),
        SpecKind::Table1 => figures::run_table1(&merged, &spec),
        SpecKind::Table2 => figures::run_table2(),
        SpecKind::Accuracy => figures::run_accuracy(&merged, &spec),
        SpecKind::Episodes => trace::run(&merged, &spec),
        SpecKind::Conform => conform::run(&merged),
        SpecKind::Check => check::run(&merged),
        SpecKind::Resume => resume::run(&merged, &spec),
        SpecKind::SweepBench => sweep_bench::run(&merged, &spec, path),
        SpecKind::ServeBench => serve_bench::run(&merged, &spec, path),
        SpecKind::Suite => suite::run(&merged, &spec, path),
    }
}

/// Loads a sibling spec referenced by id from a `specs = [...]` list,
/// resolved next to the referencing spec file.
fn sibling_spec(parent: &Path, id: &str) -> Result<ExperimentSpec, BinError> {
    let dir = parent.parent().unwrap_or_else(|| Path::new("."));
    Ok(ExperimentSpec::load(&dir.join(format!("{id}.toml")))?)
}

/// Builds the spec's lab and pre-validates its resilience
/// configuration — the spec-layer analogue of [`crate::prepared_lab`]:
/// an armed `SMTSIM_JOURNAL` is opened *here*, so a stale or damaged
/// journal surfaces as a typed [`BinError`] instead of a mid-sweep
/// panic.
fn prepared_spec_lab(env: &BenchEnv, spec: &ExperimentSpec) -> Result<Lab, BinError> {
    let mut lab = env.lab_for_spec(spec);
    let resumed = lab.open_journal()?;
    if resumed > 0 {
        eprintln!("journal: resuming — {resumed} completed cell(s) on file");
    }
    Ok(lab)
}

/// The committed conformance corpus, pinned to the source tree.
fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Collects the sorted `.case` files under the committed corpus; a
/// missing directory is a configuration error naming the path.
fn corpus_cases() -> Result<Vec<PathBuf>, BinError> {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect(),
        Err(e) => {
            return Err(BinError::Config(format!(
                "cannot read {}: {e}",
                dir.display()
            )));
        }
    };
    paths.sort();
    Ok(paths)
}
