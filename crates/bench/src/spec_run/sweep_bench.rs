//! Runner for `kind = "sweep-bench"`: wall-clock benchmark of the
//! two-phase sweep engine. Times the union of the spec's listed
//! sibling figure specs serially (`jobs = 1`) and fanned out
//! (`SMTSIM_JOBS`, default 4), verifies the rendered output is
//! byte-identical, and records the measurement to `BENCH_sweep.json`.
//!
//! Exits 1 if the serial and parallel sweeps disagree (they are
//! defined to be byte-identical) — turning a determinism regression
//! into a hard failure wherever this runs.

use super::{figures, sibling_spec};
use crate::{BenchEnv, BinError};
use smtsim_rob2::{report, ExperimentSpec, SpecKind};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Renders every listed figure spec once on a shared lab and returns
/// the concatenated text — the byte-comparable product of one full
/// sweep.
fn full_figure_sweep(
    lab: &mut smtsim_rob2::Lab,
    mixes: &[usize],
    specs: &[ExperimentSpec],
) -> String {
    let mut out = String::new();
    for spec in specs {
        out.push_str(&report::render_figure(&figures::figure_data(
            lab, mixes, spec,
        )));
    }
    out
}

/// Number of multithreaded cells the sweep dispatches (for the
/// record): the sum of each listed figure's configuration count.
fn cell_count(specs: &[ExperimentSpec], mixes: usize) -> usize {
    specs.iter().map(|s| s.variants.len()).sum::<usize>() * mixes
}

/// Simulated cycles per kernel-throughput run: long enough that the
/// steady-state mix of quiet and busy cycles — not warm-up fills —
/// dominates the measurement.
const KERNEL_CYCLES: u64 = 1_000_000;

/// Times the raw cycle kernel — the Table 1 machine under the
/// heaviest mix with the baseline ROB, the same configuration as the
/// `simulator_20k_cycles_mix1` bench target — over [`KERNEL_CYCLES`]
/// simulated cycles, with event-driven cycle skipping on or off.
fn time_kernel(skip: bool) -> std::time::Duration {
    use smtsim_pipeline::{FixedRob, MachineConfig, Simulator, StopCondition};
    use std::sync::Arc;
    let wls = smtsim_workload::mix(1)
        .instantiate(42)
        .into_iter()
        .map(Arc::new)
        .collect();
    let mut sim = Simulator::builder(
        MachineConfig::icpp08(),
        wls,
        Box::new(FixedRob::new(32)),
        42,
    )
    .cycle_skip(skip)
    .build()
    .expect("Table 1 machine on Mix 1 is a valid configuration");
    let t0 = Instant::now();
    sim.run(StopCondition::Cycles(KERNEL_CYCLES));
    std::hint::black_box(sim.stats().total_committed());
    t0.elapsed()
}

pub(super) fn run(env: &BenchEnv, spec: &ExperimentSpec, path: &Path) -> Result<(), BinError> {
    let mut specs = Vec::new();
    for id in &spec.specs {
        let sub = sibling_spec(path, id)?;
        if sub.kind != SpecKind::Figure {
            return Err(BinError::Config(format!(
                "spec {id}: a sweep-bench entry must be a figure spec, got kind = \"{}\"",
                sub.kind.as_str()
            )));
        }
        specs.push(sub);
    }

    let mixes = env.mixes.clone();
    let base = env.lab_for_spec(spec);
    let jobs = base.jobs.unwrap_or(4).max(2);

    let time = |jobs: usize| {
        let mut lab = env.lab_for_spec(spec).with_jobs(Some(jobs));
        let t0 = Instant::now();
        let text = full_figure_sweep(&mut lab, &mixes, &specs);
        (t0.elapsed(), text)
    };

    eprintln!(
        "sweep_bench: {} cells, budget={} st_budget={} warmup={} seed={}",
        cell_count(&specs, mixes.len()),
        base.mt_budget,
        base.st_budget,
        base.warmup,
        base.seed
    );
    let (serial, serial_text) = time(1);
    eprintln!("serial  (jobs=1): {serial:.2?}");
    let (parallel, parallel_text) = time(jobs);
    eprintln!("parallel (jobs={jobs}): {parallel:.2?}");

    let identical = serial_text == parallel_text;
    // A parallel "speedup" measured on a single hardware thread is
    // scheduler noise, not a measurement — record null instead of a
    // number the trajectory could mistake for a regression (or a win).
    let hardware_threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let speedup =
        (hardware_threads >= 2).then(|| serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9));
    match speedup {
        Some(s) => eprintln!("speedup: {s:.2}x  identical_output: {identical}"),
        None => eprintln!(
            "speedup: n/a ({hardware_threads} hardware thread)  identical_output: {identical}"
        ),
    }

    // Raw kernel throughput, with the cycle-skip engine on and off —
    // the before/after record of the SoA + masked-DoD + skip overhaul.
    let kernel_skip = time_kernel(true);
    let kernel_noskip = time_kernel(false);
    let mcps = |d: std::time::Duration| KERNEL_CYCLES as f64 / d.as_secs_f64().max(1e-9) / 1e6;
    eprintln!(
        "kernel ({KERNEL_CYCLES} cycles): skip {kernel_skip:.2?} ({:.2} Mcycles/s), \
         no-skip {kernel_noskip:.2?} ({:.2} Mcycles/s)",
        mcps(kernel_skip),
        mcps(kernel_noskip)
    );

    // Journal overhead: one figure (unique cells — no cross-figure
    // journal hits) timed serially with and without a cold resumable
    // journal, isolating the pure append+flush cost per completed
    // cell. The full figure set would flatter the journal instead:
    // Baseline cells recur across the listed figures, so later
    // figures get served from the journal and the "overhead" comes
    // out < 1.
    let journal_path =
        std::env::temp_dir().join(format!("smtsim-sweep-bench-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);
    let first = specs
        .first()
        .ok_or_else(|| BinError::Config("a sweep-bench spec needs at least one entry".into()))?;
    let time_first = |journal: bool| -> Result<std::time::Duration, BinError> {
        let mut lab = env.lab_for_spec(spec).with_jobs(Some(1));
        if journal {
            lab = lab.with_journal(journal_path.clone());
            lab.open_journal()?;
        }
        let t0 = Instant::now();
        let _ = report::render_figure(&figures::figure_data(&mut lab, &mixes, first));
        Ok(t0.elapsed())
    };
    let plain_fig2 = time_first(false)?;
    let journaled_fig2 = time_first(true)?;
    let _ = std::fs::remove_file(&journal_path);
    let journal_overhead = journaled_fig2.as_secs_f64() / plain_fig2.as_secs_f64().max(1e-9);
    eprintln!(
        "fig2 serial: plain {plain_fig2:.2?}, journaled {journaled_fig2:.2?}  \
         journal_overhead: {journal_overhead:.3}x"
    );

    // Hand-rolled JSON: the workspace is dependency-free by design.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sweep_bench\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"FT figures 2/4/5/6 over {} mixes ({} multithreaded cells + phase-1 normalization)\",",
        mixes.len(),
        cell_count(&specs, mixes.len())
    );
    let _ = writeln!(json, "  \"budget\": {},", base.mt_budget);
    let _ = writeln!(json, "  \"st_budget\": {},", base.st_budget);
    let _ = writeln!(json, "  \"warmup\": {},", base.warmup);
    let _ = writeln!(json, "  \"seed\": {},", base.seed);
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"serial_ms\": {},", serial.as_millis());
    let _ = writeln!(json, "  \"parallel_ms\": {},", parallel.as_millis());
    match speedup {
        Some(s) => {
            let _ = writeln!(json, "  \"speedup\": {s:.3},");
        }
        None => {
            let _ = writeln!(json, "  \"speedup\": null,");
        }
    }
    let _ = writeln!(json, "  \"kernel_cycles\": {KERNEL_CYCLES},");
    let _ = writeln!(json, "  \"kernel_ms\": {},", kernel_skip.as_millis());
    let _ = writeln!(
        json,
        "  \"kernel_noskip_ms\": {},",
        kernel_noskip.as_millis()
    );
    let _ = writeln!(
        json,
        "  \"kernel_mcycles_per_sec\": {:.2},",
        mcps(kernel_skip)
    );
    let _ = writeln!(json, "  \"fig2_serial_ms\": {},", plain_fig2.as_millis());
    let _ = writeln!(
        json,
        "  \"fig2_journaled_ms\": {},",
        journaled_fig2.as_millis()
    );
    let _ = writeln!(json, "  \"journal_overhead\": {journal_overhead:.3},");
    let _ = writeln!(json, "  \"identical_output\": {identical}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_sweep.json", &json)?;
    eprintln!("wrote BENCH_sweep.json");

    if !identical {
        return Err(BinError::Runtime(
            "serial and parallel sweep output differ".into(),
        ));
    }
    Ok(())
}
