//! Runners for the figure/table/accuracy output kinds: the spec's
//! variant list drives the generic drivers in [`smtsim_rob2::figures`]
//! and the rendering in [`smtsim_rob2::report`].

use super::prepared_spec_lab;
use crate::{BenchEnv, BinError};
use smtsim_rob2::{
    figures, improvement, report, ExperimentSpec, FigureData, HistogramData, Lab, RobConfig,
};

/// The spec's title (validated present for the kinds that render one).
fn title(spec: &ExperimentSpec) -> &str {
    spec.title.as_deref().expect("validated at parse time")
}

/// Lowers the spec's resolved variants into the `(label, config)`
/// pairs [`figures::ft_sweep`] consumes.
fn variant_pairs(spec: &ExperimentSpec) -> Vec<(String, RobConfig)> {
    spec.variants
        .iter()
        .map(|v| (v.label.clone(), v.config))
        .collect()
}

/// Builds the FT figure a `kind = "figure"` spec describes.
pub(super) fn figure_data(lab: &mut Lab, mixes: &[usize], spec: &ExperimentSpec) -> FigureData {
    figures::ft_sweep(lab, title(spec), variant_pairs(spec), mixes)
}

/// Builds the DoD histogram a `kind = "histogram"` spec describes
/// (the main scheme only — the comparison reference is run separately).
pub(super) fn histogram_data(
    lab: &mut Lab,
    mixes: &[usize],
    spec: &ExperimentSpec,
) -> HistogramData {
    figures::dod_figure(lab, title(spec), spec.variants[0].config, mixes)
}

/// Formats the pooled-mean comparison a histogram spec's `compare`
/// key asks for. A histogram whose every mix failed pools to a 0 (or
/// NaN) mean; the comparison is then undefined, not "+0 %".
pub(super) fn compare_line(pooled: f64, base: f64, label: &str) -> String {
    let vs = match improvement(pooled, base) {
        Some(d) => format!("{:+.1}%", d * 100.0),
        None => "n/a".to_string(),
    };
    format!("mean dependents vs {label}: {vs}\n")
}

/// `kind = "figure"`: one FT figure to stdout.
pub(super) fn run_figure(env: &BenchEnv, spec: &ExperimentSpec) -> Result<(), BinError> {
    let mut lab = prepared_spec_lab(env, spec)?;
    let fig = figure_data(&mut lab, &env.mixes, spec);
    print!("{}", report::render_figure(&fig));
    Ok(())
}

/// `kind = "histogram"`: one DoD histogram to stdout, with the
/// optional pooled-mean comparison line. The reference scheme runs
/// *first* on the same lab, matching the legacy fig3/fig7 dispatch
/// order cell for cell.
pub(super) fn run_histogram(env: &BenchEnv, spec: &ExperimentSpec) -> Result<(), BinError> {
    let mut lab = prepared_spec_lab(env, spec)?;
    let base = spec
        .compare
        .as_ref()
        .map(|(cmp, label)| figures::dod_figure(&mut lab, label, cmp.config, &env.mixes));
    let fig = histogram_data(&mut lab, &env.mixes, spec);
    print!("{}", report::render_histogram(&fig));
    if let (Some(base), Some((_, label))) = (&base, &spec.compare) {
        print!(
            "{}",
            compare_line(fig.pooled_mean(), base.pooled_mean(), label)
        );
    }
    Ok(())
}

/// `kind = "table1"`: the machine-configuration table for the spec's
/// machine (environment integrity knobs applied, like every lab).
pub(super) fn run_table1(env: &BenchEnv, spec: &ExperimentSpec) -> Result<(), BinError> {
    print!("{}", report::render_table1(&env.lab_for_spec(spec).machine));
    Ok(())
}

/// `kind = "table2"`: the benchmark-mix table (no knobs consumed).
pub(super) fn run_table2() -> Result<(), BinError> {
    print!("{}", report::render_table2());
    Ok(())
}

/// `kind = "accuracy"`: the DoD-accuracy table over the spec's
/// schemes; any fill exceeding the static dependence bound is a
/// runtime failure (exit 1), as in the legacy bin.
pub(super) fn run_accuracy(env: &BenchEnv, spec: &ExperimentSpec) -> Result<(), BinError> {
    let mut lab = prepared_spec_lab(env, spec)?;
    let configs: Vec<RobConfig> = spec.variants.iter().map(|v| v.config).collect();
    let acc = figures::accuracy_for(&mut lab, title(spec), &configs, &env.mixes);
    print!("{}", report::render_accuracy(&acc));
    if acc.total_violations() > 0 {
        return Err(BinError::Runtime(format!(
            "{} fill(s) exceeded the static DoD bound",
            acc.total_violations()
        )));
    }
    Ok(())
}
