//! Runner for `kind = "conform"`: the three-pass differential
//! conformance suite (committed mixes, corpus replay, fresh fuzz —
//! DESIGN.md §12). Knobs come pre-merged (spec `[knobs]` under
//! explicit env).

use super::{corpus_cases, corpus_dir};
use crate::{BenchEnv, BinError};
use smtsim_conform::{check_workloads, parse_case, run_fresh_cases, CaseVerdict};
use smtsim_workload::mix;
use std::sync::Arc;

pub(super) fn run(env: &BenchEnv) -> Result<(), BinError> {
    let mut failures = 0usize;

    println!("Conformance differential (committed mixes)");
    for &m in &env.mixes {
        let wls: Vec<_> = mix(m)
            .instantiate(env.seed)
            .into_iter()
            .map(Arc::new)
            .collect();
        match check_workloads(&wls, env.seed, env.budget, env.warmup) {
            Ok(report) => println!(
                "  mix {m:>2}: ok ({} commits compared, {} configs)",
                report.commits_compared,
                report.configs.len()
            ),
            Err(e) => {
                failures += 1;
                println!("  mix {m:>2}: FAIL\n{e}");
            }
        }
    }

    println!("Corpus replay (tests/corpus)");
    let paths = corpus_cases()?;
    if paths.is_empty() {
        failures += 1;
        println!("  FAIL: no .case files in {}", corpus_dir().display());
    }
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let spec = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_case(&t))
        {
            Ok(s) => s,
            Err(e) => {
                failures += 1;
                println!("  {name}: FAIL (unreadable: {e})");
                continue;
            }
        };
        match smtsim_conform::run_case(&spec) {
            CaseVerdict::Pass { commits } => println!("  {name}: pass ({commits} commits)"),
            CaseVerdict::Skipped { reason } => {
                failures += 1;
                println!("  {name}: FAIL (committed case skipped: {reason})");
            }
            CaseVerdict::Fail { failure, shrunk } => {
                failures += 1;
                println!("  {name}: FAIL (shrunk to {shrunk:?})\n{failure}");
            }
        }
    }

    println!(
        "Fresh fuzz (seed={}, cases={})",
        env.fuzz_seed, env.fuzz_cases
    );
    let jobs = env.jobs.unwrap_or(0);
    for (i, (spec, verdict)) in run_fresh_cases(env.fuzz_seed, env.fuzz_cases, jobs)
        .iter()
        .enumerate()
    {
        match verdict {
            CaseVerdict::Pass { commits } => {
                println!("  case {i} (seed={}): pass ({commits} commits)", spec.seed);
            }
            CaseVerdict::Skipped { reason } => {
                println!("  case {i} (seed={}): skipped ({reason})", spec.seed);
            }
            CaseVerdict::Fail { failure, shrunk } => {
                failures += 1;
                println!(
                    "  case {i} (seed={}): FAIL (shrunk to {shrunk:?})\n{failure}",
                    spec.seed
                );
            }
        }
    }

    if failures > 0 {
        println!("conform: {failures} check(s) FAILED");
        return Err(BinError::Runtime(format!(
            "{failures} conformance check(s) failed"
        )));
    }
    println!("conform: all checks passed");
    Ok(())
}
