//! Runner for `kind = "serve-bench"`: wall-clock benchmark of the
//! `smtsim-serve` daemon's content-addressed cache. Starts an
//! in-process daemon on a scratch socket with a *cold* scratch cache,
//! submits each listed figure spec twice — cold (every cell computed)
//! and warm (every cell a cache hit) — verifies the two streamed
//! figures are byte-identical, and records cold-vs-warm latency plus
//! cell throughput to `BENCH_serve.json`.
//!
//! Exits 1 if a warm replay differs from its cold run or computes any
//! cell — turning a cache-correctness regression into a hard failure
//! wherever this runs.

use super::sibling_spec;
use crate::serve_support::{self, EnvLowering};
use crate::{BenchEnv, BinError};
use smtsim_rob2::{ExperimentSpec, SpecKind};
use smtsim_serve::{ServeConfig, Server};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// One spec's cold/warm measurement.
struct Leg {
    id: String,
    cells: u64,
    cold: std::time::Duration,
    cold_hits: u64,
    warm: std::time::Duration,
    identical: bool,
}

pub(super) fn run(env: &BenchEnv, spec: &ExperimentSpec, path: &Path) -> Result<(), BinError> {
    for id in &spec.specs {
        let sub = sibling_spec(path, id)?;
        if sub.kind != SpecKind::Figure {
            return Err(BinError::Config(format!(
                "spec {id}: a serve-bench entry must be a figure spec, got kind = \"{}\"",
                sub.kind.as_str()
            )));
        }
    }

    // Scratch socket + cache: the measurement must start cold, and a
    // parallel run on the same machine must not share either.
    let tag = format!("smtsim-serve-bench-{}", std::process::id());
    let socket = std::env::temp_dir().join(format!("{tag}.sock"));
    let cache_dir = std::env::temp_dir().join(format!("{tag}-cache"));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let spec_dir = path.parent().map(Path::to_path_buf);
    let config = ServeConfig {
        socket: socket.clone(),
        cache_dir: cache_dir.clone(),
        queue_limit: env.serve_queue,
        workers: env.jobs.unwrap_or(0),
        spec_dir,
    };
    let workers = config.effective_workers();
    let server = Server::start(config, Box::new(EnvLowering { env: env.clone() }))
        .map_err(|e| BinError::Runtime(format!("cannot start daemon: {e}")))?;

    eprintln!(
        "serve_bench: {} spec(s), budget={} st_budget={} warmup={} seed={} workers={workers}",
        spec.specs.len(),
        env.budget,
        env.st_budget,
        env.warmup,
        env.seed
    );

    let submit = |id: &str| -> Result<(std::time::Duration, Vec<String>), BinError> {
        let t0 = Instant::now();
        let lines = serve_support::request_lines(&socket, &serve_support::submit_registry(id))?;
        Ok((t0.elapsed(), lines))
    };
    let stat = |done: &str, field: &str| serve_support::line_u64(done, field).unwrap_or(0);

    let mut legs = Vec::new();
    let mut run_legs = || -> Result<(), BinError> {
        for id in &spec.specs {
            let (cold, cold_lines) = submit(id)?;
            let cold_fig = serve_support::figure_of(&cold_lines)?;
            let cold_done = serve_support::terminal_line(&cold_lines, "done")?;
            let (warm, warm_lines) = submit(id)?;
            let warm_fig = serve_support::figure_of(&warm_lines)?;
            let warm_done = serve_support::terminal_line(&warm_lines, "done")?;
            let cells = stat(cold_done, "cells");
            let leg = Leg {
                id: id.clone(),
                cells,
                cold,
                cold_hits: stat(cold_done, "cache_hits"),
                warm,
                identical: warm_fig == cold_fig,
            };
            eprintln!(
                "{id}: {cells} cells, cold {cold:.2?} ({:.1} cells/s), warm {warm:.2?}",
                cells as f64 / cold.as_secs_f64().max(1e-9)
            );
            if !leg.identical {
                return Err(BinError::Runtime(format!(
                    "{id}: warm replay is not byte-identical to the cold run"
                )));
            }
            let (warm_hits, warm_misses) = (
                stat(warm_done, "cache_hits"),
                stat(warm_done, "cache_misses"),
            );
            if warm_hits != cells || warm_misses != 0 {
                return Err(BinError::Runtime(format!(
                    "{id}: warm replay computed cells (hits={warm_hits}, misses={warm_misses}, \
                     cells={cells})"
                )));
            }
            legs.push(leg);
        }
        Ok(())
    };
    let outcome = run_legs();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
    outcome?;

    let cells: u64 = legs.iter().map(|l| l.cells).sum();
    let cold: f64 = legs.iter().map(|l| l.cold.as_secs_f64()).sum();
    let warm: f64 = legs.iter().map(|l| l.warm.as_secs_f64()).sum();
    let cold_hits: u64 = legs.iter().map(|l| l.cold_hits).sum();
    let cells_per_sec = cells as f64 / cold.max(1e-9);
    let warm_speedup = cold / warm.max(1e-9);
    let hardware_threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "total: {cells} cells, cold {cold:.2}s ({cells_per_sec:.1} cells/s), \
         warm {warm:.3}s, warm speedup {warm_speedup:.1}x"
    );

    // Hand-rolled JSON: the workspace is dependency-free by design.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve_bench\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"daemon submit of {} figure spec(s), cold cache then warm replay\",",
        spec.specs.len()
    );
    let _ = writeln!(json, "  \"budget\": {},", env.budget);
    let _ = writeln!(json, "  \"st_budget\": {},", env.st_budget);
    let _ = writeln!(json, "  \"warmup\": {},", env.warmup);
    let _ = writeln!(json, "  \"seed\": {},", env.seed);
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"cells\": {cells},");
    let _ = writeln!(json, "  \"cold_ms\": {},", (cold * 1e3) as u64);
    let _ = writeln!(json, "  \"warm_ms\": {},", (warm * 1e3) as u64);
    let _ = writeln!(json, "  \"cold_cells_per_sec\": {cells_per_sec:.2},");
    // A cold-vs-warm "speedup" on one hardware thread still measures
    // the cache (warm serves from disk, no simulation), but the cold
    // side's worker fan-out is scheduler noise there — mirror the
    // sweep-bench convention and record null.
    if hardware_threads >= 2 {
        let _ = writeln!(json, "  \"warm_speedup\": {warm_speedup:.2},");
    } else {
        let _ = writeln!(json, "  \"warm_speedup\": null,");
    }
    let _ = writeln!(json, "  \"cold_cache_hits\": {cold_hits},");
    let _ = writeln!(json, "  \"warm_all_hits\": true,");
    let _ = writeln!(json, "  \"identical_output\": true");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_serve.json", &json)?;
    eprintln!("wrote BENCH_serve.json");

    // Deterministic verdict on stdout (the timings above go to stderr
    // only): `cargo xtask determinism` compares these bytes across job
    // counts.
    println!(
        "serve_bench: {cells} cells over {} spec(s)",
        spec.specs.len()
    );
    for leg in &legs {
        println!(
            "{}: cells={} cold_hits={} warm_all_hits=true byte_identical={}",
            leg.id, leg.cells, leg.cold_hits, leg.identical
        );
    }
    Ok(())
}
