//! Runner for `kind = "check"`: bounded model checking + trace
//! conformance for the two-level transfer protocol (DESIGN.md §14).
//! Bounds and budgets come pre-merged (spec `[knobs]` under explicit
//! env).

use super::{corpus_cases, corpus_dir};
use crate::{BenchEnv, BinError};
use smtsim_check::{explore, replay_case, replay_mix, Bounds, ModelConfig, ReplayOutcome};
use smtsim_conform::parse_case;
use smtsim_rob2::{ReleasePolicy, SchemeKind};

/// The outstanding-miss bound implied by the thread bound: the full
/// 3-miss product is cheap up to 3 threads; at 4 threads the state
/// space grows ~20× per extra miss, so CI drops to 2 (see
/// EXPERIMENTS.md).
fn misses_for(threads: usize) -> usize {
    if threads <= 3 {
        3
    } else {
        2
    }
}

fn print_outcomes(outcomes: &[ReplayOutcome]) {
    for o in outcomes {
        println!(
            "    {:<24} ok ({} events, {} episodes, {} grants, {} denials, {} releases)",
            o.label,
            o.conformance.events,
            o.conformance.episodes,
            o.conformance.grants,
            o.conformance.denials,
            o.conformance.releases
        );
    }
}

pub(super) fn run(env: &BenchEnv) -> Result<(), BinError> {
    let mut failures = 0usize;

    let bounds = Bounds {
        threads: env.check_threads,
        l2: env.check_l2,
        misses: misses_for(env.check_threads),
    };
    println!(
        "Bounded exploration (threads={}, l2={}, misses={})",
        bounds.threads, bounds.l2, bounds.misses
    );
    for kind in [
        SchemeKind::Reactive,
        SchemeKind::CountDelayed,
        SchemeKind::Predictive,
    ] {
        for release in [
            ReleasePolicy::TriggerServiced,
            ReleasePolicy::DrainAndNoMiss,
            ReleasePolicy::DrainOnly,
        ] {
            let cfg = ModelConfig {
                kind,
                release,
                bounds,
            };
            let report = explore(&cfg).map_err(|e| BinError::Config(format!("bad bounds: {e}")))?;
            let label = format!("{kind:?}/{release:?}");
            match &report.violation {
                None => println!(
                    "  {label:<34} clean ({} states, {} transitions, depth {})",
                    report.states, report.transitions, report.depth
                ),
                Some(v) => {
                    failures += 1;
                    println!("  {label:<34} VIOLATION\n{v}");
                }
            }
        }
    }

    println!(
        "Paper-mix conformance (seed={}, budget={}, warmup={})",
        env.seed, env.budget, env.warmup
    );
    for &m in &env.mixes {
        match replay_mix(m, env.seed, env.budget, env.warmup) {
            Ok(outcomes) => {
                println!("  mix {m:>2}:");
                print_outcomes(&outcomes);
            }
            Err(e) => {
                failures += 1;
                println!("  mix {m:>2}: FAIL\n{e}");
            }
        }
    }

    println!("Corpus conformance (tests/corpus)");
    let paths = corpus_cases()?;
    if paths.is_empty() {
        failures += 1;
        println!("  FAIL: no .case files in {}", corpus_dir().display());
    }
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let spec = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_case(&t))
        {
            Ok(s) => s,
            Err(e) => {
                failures += 1;
                println!("  {name}: FAIL (unreadable: {e})");
                continue;
            }
        };
        match replay_case(&spec) {
            Ok(outcomes) => {
                println!("  {name}:");
                print_outcomes(&outcomes);
            }
            Err(e) => {
                failures += 1;
                println!("  {name}: FAIL\n{e}");
            }
        }
    }

    if failures > 0 {
        println!("check: {failures} check(s) FAILED");
        return Err(BinError::Runtime(format!(
            "{failures} model/conformance check(s) failed"
        )));
    }
    println!("check: all checks passed");
    Ok(())
}
