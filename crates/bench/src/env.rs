//! The single funnel for environment-knob parsing.
//!
//! Every knob the harness binaries and benches consume is read here,
//! once, into a typed [`BenchEnv`] — no other module in the workspace
//! reads `std::env::var` (enforced by `cargo xtask lint`). The knob
//! table lives on the crate root (`smtsim-bench` module docs) and in
//! EXPERIMENTS.md §"Environment knobs"; keep all three in sync when
//! adding a knob.

use smtsim_pipeline::{FaultPlan, MachineConfig, SimError};
use smtsim_rob2::{ExperimentSpec, Lab};
use std::path::PathBuf;

/// Parses an environment integer. A missing variable yields `default`;
/// a malformed value is a typed [`SimError::InvalidConfig`] naming the
/// variable (a silent fallback would hide a typo'd budget).
pub fn try_env_u64(name: &str, default: u64) -> Result<u64, SimError> {
    match std::env::var(name) {
        Err(_) => Ok(default),
        Ok(v) => v.trim().parse().map_err(|_| SimError::InvalidConfig {
            reason: format!("{name}={v} is not an unsigned integer"),
        }),
    }
}

/// Reads `MIXES` (comma-separated mix indices, default: all 11 paper
/// mixes); a malformed or out-of-range entry is a typed
/// [`SimError::InvalidConfig`].
fn try_mixes() -> Result<Vec<usize>, SimError> {
    let Ok(v) = std::env::var("MIXES") else {
        return Ok(smtsim_rob2::ALL_MIXES.to_vec());
    };
    v.split(',')
        .map(|x| {
            let idx: usize = x.trim().parse().map_err(|_| SimError::InvalidConfig {
                reason: format!("MIXES entry '{x}' is not an integer"),
            })?;
            if !(1..=11).contains(&idx) {
                return Err(SimError::InvalidConfig {
                    reason: format!("MIXES entry {idx} out of range 1..=11"),
                });
            }
            Ok(idx)
        })
        .collect()
}

/// Builds a [`FaultPlan`] from the `FAULT_*` knobs, or `None` when
/// every category is off (the common case: no plan is installed and
/// the hooks stay on their zero-cost path).
fn try_fault_plan() -> Result<Option<FaultPlan>, SimError> {
    let plan = FaultPlan {
        seed: try_env_u64("FAULT_SEED", 0)?,
        drop_fill: try_env_u64("FAULT_DROP_FILL", 0)? as u32,
        delay_fill: try_env_u64("FAULT_DELAY_FILL", 0)? as u32,
        delay_cycles: try_env_u64("FAULT_DELAY_CYCLES", 300)?,
        corrupt_dod: try_env_u64("FAULT_CORRUPT_DOD", 0)? as u32,
        withhold_release: try_env_u64("FAULT_WITHHOLD_RELEASE", 0)? as u32,
        ..FaultPlan::default()
    };
    Ok(plan.is_active().then_some(plan))
}

/// Reads an optional path knob (`None` when unset or empty).
fn env_path(name: &str) -> Option<PathBuf> {
    match std::env::var(name) {
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// Which spec-overridable knobs the environment set *explicitly*.
///
/// Captured once in [`BenchEnv::from_env`] so the spec merge
/// ([`BenchEnv::with_spec`]) can apply the documented precedence:
/// **explicit env knob > spec value > built-in default**. A knob that
/// merely fell back to its default is not explicit — a spec may still
/// override it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExplicitKnobs {
    /// `BUDGET` was set.
    pub budget: bool,
    /// `ST_BUDGET` was set.
    pub st_budget: bool,
    /// `WARMUP` was set.
    pub warmup: bool,
    /// `SEED` was set.
    pub seed: bool,
    /// `MIXES` was set.
    pub mixes: bool,
    /// `FUZZ_CASES` was set.
    pub fuzz_cases: bool,
    /// `FUZZ_SEED` was set.
    pub fuzz_seed: bool,
    /// `CHECK_THREADS` was set.
    pub check_threads: bool,
    /// `CHECK_L2` was set.
    pub check_l2: bool,
}

impl ExplicitKnobs {
    /// Snapshot of which overridable knobs the environment pins.
    fn capture() -> ExplicitKnobs {
        let set = |name: &str| std::env::var_os(name).is_some();
        ExplicitKnobs {
            budget: set("BUDGET"),
            st_budget: set("ST_BUDGET"),
            warmup: set("WARMUP"),
            seed: set("SEED"),
            mixes: set("MIXES"),
            fuzz_cases: set("FUZZ_CASES"),
            fuzz_seed: set("FUZZ_SEED"),
            check_threads: set("CHECK_THREADS"),
            check_l2: set("CHECK_L2"),
        }
    }
}

/// Every environment knob the harness consumes, parsed once into typed
/// fields. See the crate-root docs for the knob table.
#[derive(Clone, Debug)]
pub struct BenchEnv {
    /// `BUDGET` — committed instructions per multithreaded run.
    pub budget: u64,
    /// `ST_BUDGET` — committed instructions per single-threaded
    /// normalization run (defaults to `BUDGET`).
    pub st_budget: u64,
    /// `WARMUP` — functional warm-up instructions per thread.
    pub warmup: u64,
    /// `SEED` — workload generation seed.
    pub seed: u64,
    /// `MIXES` — the mix indices to run (default: all 11).
    pub mixes: Vec<usize>,
    /// `SMTSIM_JOBS` — sweep worker threads (`None` = available
    /// parallelism; output is byte-identical at any value).
    pub jobs: Option<usize>,
    /// `DEADLOCK_CYCLES` — commitless-cycle watchdog threshold.
    pub deadlock_cycles: u64,
    /// `INVARIANT_INTERVAL` — deep invariant-scan cadence (0 = off).
    pub invariant_interval: u64,
    /// `FAULT_*` — the fault plan, when any category is enabled.
    pub fault: Option<FaultPlan>,
    /// `BENCH_ITERS` — timed iterations per bench target.
    pub bench_iters: u32,
    /// `FUZZ_CASES` — fresh fuzz cases per `conform` run.
    pub fuzz_cases: u64,
    /// `FUZZ_SEED` — base seed for fresh fuzz cases.
    pub fuzz_seed: u64,
    /// `SMTSIM_JOURNAL` — resumable sweep-journal path (unset/empty =
    /// no journaling).
    pub journal: Option<PathBuf>,
    /// `SMTSIM_CELL_TIMEOUT` — wall-clock watchdog per sweep cell, in
    /// milliseconds (`0` = unlimited; non-deterministic by nature).
    pub cell_timeout_ms: Option<u64>,
    /// `SMTSIM_CELL_CYCLES` — simulated-cycle watchdog per sweep cell
    /// (`0` = unlimited; deterministic).
    pub cell_cycles: Option<u64>,
    /// `SMTSIM_CELL_RETRIES` — retries per transiently-failed sweep
    /// cell (default 0).
    pub cell_retries: u32,
    /// `CHECK_THREADS` — thread bound for the `check` bin's model
    /// exploration (1..=4, default 3).
    pub check_threads: usize,
    /// `CHECK_L2` — shared-partition bound for the `check` bin's model
    /// exploration (1..=4, default 2).
    pub check_l2: u8,
    /// `SMTSIM_NO_SKIP` — disables event-driven cycle skipping in
    /// every simulator the harness builds (any nonzero value).
    /// Validation-only: output is byte-identical either way, and the
    /// `xtask determinism` gate proves it on every run.
    pub no_skip: bool,
    /// `SMTSIM_SPEC` — experiment-spec path for the generic `spec`
    /// bin (unset/empty = none).
    pub spec: Option<PathBuf>,
    /// `SMTSIM_SERVE_SOCKET` — Unix socket the `serve` daemon listens
    /// on (default: `smtsim-serve.sock` under the system temp dir).
    pub serve_socket: PathBuf,
    /// `SMTSIM_SERVE_CACHE` — the daemon's persistent result-cache
    /// directory (default: `smtsim-serve-cache` under the CWD, like
    /// journal paths).
    pub serve_cache: PathBuf,
    /// `SMTSIM_SERVE_QUEUE` — the daemon's admission bound: maximum
    /// concurrently admitted requests (≥ 1, default 8); the next
    /// submission is rejected with a retryable `queue-full` error.
    pub serve_queue: usize,
    /// Which spec-overridable knobs the environment set explicitly
    /// (drives [`BenchEnv::with_spec`] precedence).
    pub explicit: ExplicitKnobs,
}

impl BenchEnv {
    /// Reads and validates every knob. The first malformed knob comes
    /// back as a typed [`SimError::InvalidConfig`] naming the variable.
    pub fn from_env() -> Result<BenchEnv, SimError> {
        let machine = MachineConfig::icpp08();
        let budget = try_env_u64("BUDGET", 40_000)?;
        let jobs = try_env_u64("SMTSIM_JOBS", 0)?;
        let bench_iters = try_env_u64("BENCH_ITERS", 5)?;
        Ok(BenchEnv {
            budget,
            st_budget: try_env_u64("ST_BUDGET", budget)?,
            warmup: try_env_u64("WARMUP", 60_000)?,
            seed: try_env_u64("SEED", 42)?,
            mixes: try_mixes()?,
            // 0 (the default) delegates to the machine's available
            // parallelism; any explicit value pins the worker count.
            jobs: (jobs > 0).then_some(jobs as usize),
            deadlock_cycles: try_env_u64("DEADLOCK_CYCLES", machine.deadlock_cycles)?,
            invariant_interval: try_env_u64("INVARIANT_INTERVAL", machine.invariant_interval)?,
            fault: try_fault_plan()?,
            bench_iters: u32::try_from(bench_iters).map_err(|_| SimError::InvalidConfig {
                reason: format!("BENCH_ITERS={bench_iters} exceeds u32"),
            })?,
            fuzz_cases: try_env_u64("FUZZ_CASES", 4)?,
            fuzz_seed: try_env_u64("FUZZ_SEED", 2_026)?,
            journal: env_path("SMTSIM_JOURNAL"),
            // For the watchdog knobs 0 (the default) means unlimited.
            cell_timeout_ms: match try_env_u64("SMTSIM_CELL_TIMEOUT", 0)? {
                0 => None,
                ms => Some(ms),
            },
            cell_cycles: match try_env_u64("SMTSIM_CELL_CYCLES", 0)? {
                0 => None,
                c => Some(c),
            },
            cell_retries: {
                let r = try_env_u64("SMTSIM_CELL_RETRIES", 0)?;
                u32::try_from(r).map_err(|_| SimError::InvalidConfig {
                    reason: format!("SMTSIM_CELL_RETRIES={r} exceeds u32"),
                })?
            },
            check_threads: {
                let t = try_env_u64("CHECK_THREADS", 3)?;
                if !(1..=4).contains(&t) {
                    return Err(SimError::InvalidConfig {
                        reason: format!("CHECK_THREADS={t} out of range 1..=4"),
                    });
                }
                t as usize
            },
            no_skip: try_env_u64("SMTSIM_NO_SKIP", 0)? != 0,
            check_l2: {
                let l2 = try_env_u64("CHECK_L2", 2)?;
                if !(1..=4).contains(&l2) {
                    return Err(SimError::InvalidConfig {
                        reason: format!("CHECK_L2={l2} out of range 1..=4"),
                    });
                }
                l2 as u8
            },
            spec: env_path("SMTSIM_SPEC"),
            serve_socket: env_path("SMTSIM_SERVE_SOCKET")
                .unwrap_or_else(|| std::env::temp_dir().join("smtsim-serve.sock")),
            serve_cache: env_path("SMTSIM_SERVE_CACHE")
                .unwrap_or_else(|| PathBuf::from("smtsim-serve-cache")),
            serve_queue: {
                let q = try_env_u64("SMTSIM_SERVE_QUEUE", 8)?;
                if q == 0 {
                    return Err(SimError::InvalidConfig {
                        reason: "SMTSIM_SERVE_QUEUE=0: the daemon must admit at least one request"
                            .into(),
                    });
                }
                q as usize
            },
            explicit: ExplicitKnobs::capture(),
        })
    }

    /// Infallible form of [`BenchEnv::from_env`] for the figure
    /// binaries: prints the typed error and exits with status 2.
    pub fn read() -> BenchEnv {
        exit_on_config_error(BenchEnv::from_env())
    }

    /// Builds the experiment driver this environment describes: budgets,
    /// warm-up, seed, job count, integrity knobs and (if any `FAULT_*`
    /// category is on) a lab-wide fault plan.
    pub fn lab(&self) -> Lab {
        let mut lab = Lab::new(self.seed)
            .with_budgets(self.budget, self.st_budget)
            .with_warmup(self.warmup)
            .with_jobs(self.jobs)
            .with_cycle_skip(!self.no_skip);
        lab.machine.deadlock_cycles = self.deadlock_cycles;
        lab.machine.invariant_interval = self.invariant_interval;
        if let Some(plan) = &self.fault {
            lab.set_fault(None, plan.clone());
        }
        lab = lab
            .with_cell_wall_ms(self.cell_timeout_ms)
            .with_cell_cycle_budget(self.cell_cycles)
            .with_retries(self.cell_retries);
        if let Some(path) = &self.journal {
            lab = lab.with_journal(path.clone());
        }
        lab
    }

    /// Merges an experiment spec into this environment under the one
    /// documented precedence: **explicit env knob > spec value (the
    /// `[knobs]` section over its `knobs = "<preset>"` preset) >
    /// built-in default**. Only the spec-overridable knobs
    /// ([`ExplicitKnobs`]) participate; everything else (journal,
    /// watchdogs, faults, jobs…) is environment-only and copied
    /// through.
    ///
    /// `ST_BUDGET` keeps its documented coupling: when neither layer
    /// pins it, it follows the *merged* budget.
    #[must_use]
    pub fn with_spec(&self, spec: &ExperimentSpec) -> BenchEnv {
        let k = spec.knobs();
        let e = self.explicit;
        let pick = |explicit: bool, env_v: u64, spec_v: Option<u64>| {
            if explicit {
                env_v
            } else {
                spec_v.unwrap_or(env_v)
            }
        };
        let mut merged = self.clone();
        merged.budget = pick(e.budget, self.budget, k.budget);
        merged.st_budget = if e.st_budget {
            self.st_budget
        } else {
            k.st_budget.unwrap_or(merged.budget)
        };
        merged.warmup = pick(e.warmup, self.warmup, k.warmup);
        merged.seed = pick(e.seed, self.seed, k.seed);
        if !e.mixes {
            merged.mixes = spec.effective_mixes();
        }
        merged.fuzz_cases = pick(e.fuzz_cases, self.fuzz_cases, k.fuzz_cases);
        merged.fuzz_seed = pick(e.fuzz_seed, self.fuzz_seed, k.fuzz_seed);
        merged.check_threads =
            pick(e.check_threads, self.check_threads as u64, k.check_threads) as usize;
        merged.check_l2 = pick(e.check_l2, u64::from(self.check_l2), k.check_l2) as u8;
        merged
    }

    /// Builds the lab a *merged* environment (see
    /// [`BenchEnv::with_spec`]) describes for `spec`: the usual
    /// [`BenchEnv::lab`] wiring plus the spec's machine (environment
    /// integrity knobs re-applied on top), normalization reference and
    /// content fingerprint (binding any journal to this exact spec).
    #[must_use]
    pub fn lab_for_spec(&self, spec: &ExperimentSpec) -> Lab {
        let mut lab = self.lab();
        lab.machine = spec.machine.clone();
        lab.machine.deadlock_cycles = self.deadlock_cycles;
        lab.machine.invariant_interval = self.invariant_interval;
        lab.with_norm(spec.norm)
            .with_spec_fingerprint(Some(spec.fingerprint.clone()))
    }
}

/// Unwraps a fallible knob read for the figure binaries through the
/// crate-wide exit-code policy (invalid configuration → status 2).
pub(crate) fn exit_on_config_error<T>(r: Result<T, SimError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => crate::exit_bin(&e.into()),
    }
}
