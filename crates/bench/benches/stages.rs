//! Per-stage microbenchmarks of the cycle kernel: each target runs a
//! faithful cycle loop through the `bench-internals` stage hooks
//! (`try_step` order) over the paper's Table 1 machine on Mix 1, but
//! accumulates wall time for *one* stage only — so a regression in,
//! say, the issue stage's select loop shows up in `stage_issue` without
//! being diluted by the memory system. `full_cycle` times the whole
//! loop for reference, and `dod_scan` isolates the masked-popcount DoD
//! kernel itself.
//!
//! Self-contained `harness = false` target (no Criterion; the
//! workspace builds offline). Same protocol as `benches/figures.rs`:
//! one warm-up pass then `BENCH_ITERS` timed passes, min/mean/max
//! reported, substring filter as the first non-flag argument.

use smtsim_pipeline::{MachineConfig, Simulator, DOD_WINDOW};
use smtsim_rob2::{TwoLevelConfig, TwoLevelRob};
use smtsim_workload::mix;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cycles per timed pass: long enough that every structure (ROB, IQ,
/// LSQ, fetch queues) reaches steady-state occupancy.
const CYCLES_PER_PASS: u64 = 20_000;

/// Which stage a pass accumulates time for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Timed {
    Events,
    Commit,
    Issue,
    Dispatch,
    Fetch,
    DodScan,
    FullCycle,
}

fn make_sim() -> Simulator {
    let wls = mix(1).instantiate(42).into_iter().map(Arc::new).collect();
    Simulator::builder(
        MachineConfig::icpp08(),
        wls,
        Box::new(TwoLevelRob::new(TwoLevelConfig::r_rob(16))),
        42,
    )
    .warmup(10_000)
    .build()
    .expect("Table 1 machine on Mix 1 is a valid configuration")
}

/// Runs `f`, adding its wall time to `acc` when `on`.
fn timed_call(acc: &mut Duration, on: bool, f: impl FnOnce()) {
    if on {
        let t0 = Instant::now();
        f();
        *acc += t0.elapsed();
    } else {
        f();
    }
}

/// One pass: `CYCLES_PER_PASS` faithful cycles, returning the time
/// accumulated in the selected stage.
fn pass(sim: &mut Simulator, timed: Timed) -> Duration {
    let mut acc = Duration::ZERO;
    for _ in 0..CYCLES_PER_PASS {
        if timed == Timed::FullCycle {
            let t0 = Instant::now();
            sim.bench_process_events();
            sim.bench_commit_stage();
            sim.bench_issue_stage();
            sim.bench_dispatch_stage();
            sim.bench_fetch_stage();
            sim.bench_cycle_end();
            acc += t0.elapsed();
            continue;
        }
        timed_call(&mut acc, timed == Timed::Events, || {
            sim.bench_process_events();
        });
        timed_call(&mut acc, timed == Timed::Commit, || {
            sim.bench_commit_stage();
        });
        timed_call(&mut acc, timed == Timed::Issue, || sim.bench_issue_stage());
        timed_call(&mut acc, timed == Timed::Dispatch, || {
            sim.bench_dispatch_stage();
        });
        timed_call(&mut acc, timed == Timed::Fetch, || sim.bench_fetch_stage());
        if timed == Timed::DodScan {
            let t0 = Instant::now();
            black_box(sim.bench_dod_scan(DOD_WINDOW));
            acc += t0.elapsed();
        }
        sim.bench_cycle_end();
    }
    acc
}

fn bench(name: &str, filter: Option<&str>, timed: Timed) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    // One long-lived simulator per target: the warm-up pass brings the
    // machine to steady state, then each timed pass continues the same
    // simulation (cycle-loop behavior does not depend on wall time).
    let mut sim = make_sim();
    pass(&mut sim, timed); // warm-up
    let n = smtsim_bench::BenchEnv::read().bench_iters;
    let mut times: Vec<Duration> = Vec::with_capacity(n as usize);
    for _ in 0..n {
        times.push(pass(&mut sim, timed));
    }
    let total: Duration = times.iter().sum();
    let mean = total / n;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<34} min {min:>10.2?}  mean {mean:>10.2?}  max {max:>10.2?}  ({n} iters x {CYCLES_PER_PASS} cycles)"
    );
}

fn main() {
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let filter = filter.as_deref();

    bench("stage_events_writeback", filter, Timed::Events);
    bench("stage_commit", filter, Timed::Commit);
    bench("stage_issue_execute", filter, Timed::Issue);
    bench("stage_dispatch_rename", filter, Timed::Dispatch);
    bench("stage_fetch_predict", filter, Timed::Fetch);
    bench("dod_scan_masked_popcount", filter, Timed::DodScan);
    bench("full_cycle", filter, Timed::FullCycle);
}
