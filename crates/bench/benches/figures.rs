//! Benches: one target per paper artifact, exercising the exact code
//! path that regenerates it (at reduced budgets — these measure
//! simulator performance and keep the figure pipelines continuously
//! exercised; the binaries produce the full-size data).
//!
//! Self-contained `harness = false` target: no Criterion dependency so
//! the workspace benches run offline. Each benchmark runs a warm-up
//! iteration followed by `BENCH_ITERS` timed iterations (override via
//! the environment) and reports min/mean/max wall time. Filter by
//! substring: `cargo bench -p smtsim-bench -- fig2`.

use smtsim_bench::bench_lab;
use smtsim_rob2::{figures, ReleasePolicy, RobConfig, TwoLevelConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Two representative mixes: a memory-bound one (the paper's target
/// workloads) and an execution-bound one (the no-harm case).
const BENCH_MIXES: [usize; 2] = [1, 10];

fn iters() -> u32 {
    smtsim_bench::BenchEnv::read().bench_iters
}

/// Times `f` over a warm-up pass plus `iters()` measured passes.
fn bench(name: &str, filter: Option<&str>, f: impl Fn()) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    f(); // warm-up
    let n = iters();
    let mut times: Vec<Duration> = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    let total: Duration = times.iter().sum();
    let mean = total / n;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    println!("{name:<34} min {min:>10.2?}  mean {mean:>10.2?}  max {max:>10.2?}  ({n} iters)");
}

fn main() {
    // Cargo passes `--bench`; the first non-flag argument filters by
    // substring, mirroring the Criterion CLI.
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let filter = filter.as_deref();

    bench("fig1_dod_histogram_baseline", filter, || {
        let mut lab = bench_lab(42);
        black_box(figures::fig1(&mut lab, &BENCH_MIXES));
    });
    bench("fig2_ft_r_rob", filter, || {
        let mut lab = bench_lab(42);
        black_box(figures::fig2(&mut lab, &BENCH_MIXES));
    });
    bench("fig3_dod_histogram_r_rob", filter, || {
        let mut lab = bench_lab(42);
        black_box(figures::fig3(&mut lab, &BENCH_MIXES));
    });
    bench("fig4_ft_relaxed_r_rob", filter, || {
        let mut lab = bench_lab(42);
        black_box(figures::fig4(&mut lab, &BENCH_MIXES));
    });
    bench("fig5_ft_cdr_rob", filter, || {
        let mut lab = bench_lab(42);
        black_box(figures::fig5(&mut lab, &BENCH_MIXES));
    });
    bench("fig6_ft_p_rob", filter, || {
        let mut lab = bench_lab(42);
        black_box(figures::fig6(&mut lab, &BENCH_MIXES));
    });
    bench("fig7_dod_histogram_p_rob", filter, || {
        let mut lab = bench_lab(42);
        black_box(figures::fig7(&mut lab, &BENCH_MIXES));
    });
    bench("threshold_sweep_r_rob", filter, || {
        let mut lab = bench_lab(42);
        black_box(figures::threshold_sweep(&mut lab, &[1], &[4, 16]));
    });
    bench("ablation_release_policies", filter, || {
        let mut lab = bench_lab(42);
        let mut out = Vec::new();
        for policy in [
            ReleasePolicy::TriggerServiced,
            ReleasePolicy::DrainAndNoMiss,
            ReleasePolicy::DrainOnly,
        ] {
            let mut cfg = TwoLevelConfig::r_rob(16);
            cfg.release = policy;
            out.push(lab.run_mix(1, RobConfig::TwoLevel(cfg)).ft);
        }
        black_box(out);
    });
    // Raw simulator throughput: cycles per second of the Table 1
    // machine under the heaviest mix — the number that bounds every
    // experiment.
    bench("simulator_20k_cycles_mix1", filter, || {
        use smtsim_pipeline::{FixedRob, MachineConfig, Simulator, StopCondition};
        use std::sync::Arc;
        let wls = smtsim_workload::mix(1)
            .instantiate(42)
            .into_iter()
            .map(Arc::new)
            .collect();
        let mut sim = Simulator::new(
            MachineConfig::icpp08(),
            wls,
            Box::new(FixedRob::new(32)),
            42,
        );
        sim.run(StopCondition::Cycles(20_000));
        black_box(sim.stats().total_committed());
    });
}
