//! Criterion benches: one target per paper artifact, exercising the
//! exact code path that regenerates it (at reduced budgets — Criterion
//! measures simulator performance and keeps the figure pipelines
//! continuously exercised; the binaries produce the full-size data).

use criterion::{criterion_group, criterion_main, Criterion};
use smtsim_bench::bench_lab;
use smtsim_rob2::{figures, RobConfig, TwoLevelConfig};
use std::hint::black_box;

/// Two representative mixes: a memory-bound one (the paper's target
/// workloads) and an execution-bound one (the no-harm case).
const BENCH_MIXES: [usize; 2] = [1, 10];

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_dod_histogram_baseline", |b| {
        b.iter(|| {
            let mut lab = bench_lab(42);
            black_box(figures::fig1(&mut lab, &BENCH_MIXES))
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_ft_r_rob", |b| {
        b.iter(|| {
            let mut lab = bench_lab(42);
            black_box(figures::fig2(&mut lab, &BENCH_MIXES))
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_dod_histogram_r_rob", |b| {
        b.iter(|| {
            let mut lab = bench_lab(42);
            black_box(figures::fig3(&mut lab, &BENCH_MIXES))
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_ft_relaxed_r_rob", |b| {
        b.iter(|| {
            let mut lab = bench_lab(42);
            black_box(figures::fig4(&mut lab, &BENCH_MIXES))
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_ft_cdr_rob", |b| {
        b.iter(|| {
            let mut lab = bench_lab(42);
            black_box(figures::fig5(&mut lab, &BENCH_MIXES))
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_ft_p_rob", |b| {
        b.iter(|| {
            let mut lab = bench_lab(42);
            black_box(figures::fig6(&mut lab, &BENCH_MIXES))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_dod_histogram_p_rob", |b| {
        b.iter(|| {
            let mut lab = bench_lab(42);
            black_box(figures::fig7(&mut lab, &BENCH_MIXES))
        })
    });
}

fn bench_threshold_sweep(c: &mut Criterion) {
    c.bench_function("threshold_sweep_r_rob", |b| {
        b.iter(|| {
            let mut lab = bench_lab(42);
            black_box(figures::threshold_sweep(&mut lab, &[1], &[4, 16]))
        })
    });
}

fn bench_ablation_release(c: &mut Criterion) {
    use smtsim_rob2::ReleasePolicy;
    c.bench_function("ablation_release_policies", |b| {
        b.iter(|| {
            let mut lab = bench_lab(42);
            let mut out = Vec::new();
            for policy in [
                ReleasePolicy::TriggerServiced,
                ReleasePolicy::DrainAndNoMiss,
                ReleasePolicy::DrainOnly,
            ] {
                let mut cfg = TwoLevelConfig::r_rob(16);
                cfg.release = policy;
                out.push(lab.run_mix(1, RobConfig::TwoLevel(cfg)).ft);
            }
            black_box(out)
        })
    });
}

/// Raw simulator throughput: cycles per second of the Table 1 machine
/// under the heaviest mix — the number that bounds every experiment.
fn bench_simulator_throughput(c: &mut Criterion) {
    use smtsim_pipeline::{FixedRob, MachineConfig, Simulator, StopCondition};
    use std::sync::Arc;
    c.bench_function("simulator_20k_cycles_mix1", |b| {
        b.iter(|| {
            let wls = smtsim_workload::mix(1)
                .instantiate(42)
                .into_iter()
                .map(Arc::new)
                .collect();
            let mut sim = Simulator::new(
                MachineConfig::icpp08(),
                wls,
                Box::new(FixedRob::new(32)),
                42,
            );
            sim.run(StopCondition::Cycles(20_000));
            black_box(sim.stats().total_committed())
        })
    });
}

criterion_group! {
    name = figures_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig2, bench_fig3, bench_fig4, bench_fig5,
              bench_fig6, bench_fig7, bench_threshold_sweep,
              bench_ablation_release, bench_simulator_throughput
}
criterion_main!(figures_benches);
