//! # smtsim-check — bounded model checking for the two-level ROB
//! transfer protocol
//!
//! The transfer protocol — detect a long-latency L2 miss, request the
//! shared second-level partition, get denied or granted, extend into
//! it, drain, release — is the correctness core of the paper's
//! contribution, and its failure modes (double release, grant while
//! held, a withheld release after a squash) are exactly the ones a
//! cycle-accurate simulator can mask for millions of cycles. This
//! crate attacks it from two sides (DESIGN.md §14):
//!
//! * **Down from the spec** — [`model`] is a small executable abstract
//!   model of the protocol (per-thread episode state machines × the
//!   shared partition), and [`explore`] exhaustively enumerates every
//!   interleaving within bounds, checking safety invariants as
//!   reachability and the lost-wakeup liveness property by backward
//!   reachability, reporting a *minimal* counterexample trace.
//! * **Up from the implementation** — [`monitor`] checks any real
//!   `(cycle, TraceEvent)` stream against the model (global stream
//!   checks + per-episode path acceptance), and [`replay`] drives the
//!   live simulator over paper mixes and the fuzz corpus to feed it.
//!
//! The `seeded-release-bug` feature plants a protocol bug in the
//! abstract model (a squashed trigger never starts the tenure drain);
//! the mutation self-test proves the explorer catches it with a
//! three-step counterexample — evidence the checker actually checks.

pub mod explore;
pub mod model;
pub mod monitor;
pub mod replay;

pub use explore::{explore, ExploreReport, Violation};
pub use model::{
    apply, check_invariants, deny_sound, release_allowed, successors, validate_action, Action,
    Bounds, ModelConfig, Phase, State, Tenure, MAX_MISSES, MAX_THREADS,
};
pub use monitor::{check_episode_path, check_stream, Conformance, Nonconformance};
pub use replay::{
    replay_case, replay_mix, replay_workloads, two_level_configs, ReplayError, ReplayOutcome,
};
