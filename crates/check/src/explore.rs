//! Bounded exhaustive exploration of the abstract protocol model.
//!
//! Plain breadth-first search over every interleaving within
//! [`Bounds`](crate::model::Bounds). BFS order means the first state
//! that violates a property yields a *minimal* counterexample (no
//! shorter action sequence reaches any violation). After the full
//! graph is built, a backward-reachability pass checks the liveness
//! property: from every reachable state, the partition can still be
//! freed — a state from which no quiescent state is reachable is a
//! lost wakeup (the tenure is stuck forever).

use crate::model::{
    check_invariants, successors, validate_action, Action, ModelConfig, Phase, State, MAX_MISSES,
    MAX_THREADS,
};
use std::collections::BTreeMap;
use std::fmt;

/// The bisimulation quotient used as the visited-set key.
///
/// Two groups of phases are behaviorally indistinguishable to every
/// guard, every transition and every invariant, and only multiply the
/// raw state space:
///
/// * the four non-granted terminal phases (`Rejected`, `Filled`,
///   `Squashed`, `Released`) — no enabled actions, all excluded from
///   the `DrainAndNoMiss` in-flight check, all non-granted;
/// * the two serviced-trigger phases (`TriggerFilled`,
///   `TriggerSquashed`) — the drain information that distinguishes
///   their *consequences* lives in `Tenure::draining`, which stays in
///   the key.
///
/// Collapsing each group is therefore an exact reduction: the explorer
/// still visits every behavior, it just stops distinguishing states
/// that cannot differ. Concrete states (and hence counterexample
/// traces) are kept verbatim; only the dedup key is quotiented.
fn canon(state: &State) -> State {
    let mut c = *state;
    for t in 0..MAX_THREADS {
        for e in 0..MAX_MISSES {
            c.phases[t][e] = match c.phases[t][e] {
                Phase::Rejected | Phase::Filled | Phase::Squashed | Phase::Released => {
                    Phase::Rejected
                }
                Phase::TriggerFilled | Phase::TriggerSquashed => Phase::TriggerFilled,
                p => p,
            };
        }
    }
    c
}

/// A property violation with its minimal witness.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated property (invariant name or `lost-wakeup`).
    pub property: String,
    /// Minimal action sequence from the initial state to `state`.
    pub trace: Vec<Action>,
    /// The violating state.
    pub state: State,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation: {}", self.property)?;
        writeln!(f, "counterexample ({} steps):", self.trace.len())?;
        for (i, a) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>2}. {a}", i + 1)?;
        }
        write!(f, "reached state: {:?}", self.state)
    }
}

/// Result of one bounded exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct reachable states.
    pub states: usize,
    /// Explored transitions (edges).
    pub transitions: usize,
    /// BFS depth of the deepest state.
    pub depth: usize,
    /// First violation found, if any (minimal by construction).
    pub violation: Option<Violation>,
}

impl ExploreReport {
    /// Whether the model passed every property at these bounds.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// Reconstructs the action trace from the initial state to `id`.
fn trace_to(parents: &[Option<(u32, Action)>], mut id: u32) -> Vec<Action> {
    let mut trace = Vec::new();
    while let Some((p, a)) = parents[id as usize] {
        trace.push(a);
        id = p;
    }
    trace.reverse();
    trace
}

/// Exhaustively explores the model under `cfg`, checking every state
/// invariant, cross-validating every emitted action, and finally the
/// lost-wakeup liveness property. Stops at the first violation.
///
/// # Errors
/// Invalid bounds (see [`crate::model::Bounds::validate`]).
pub fn explore(cfg: &ModelConfig) -> Result<ExploreReport, String> {
    cfg.bounds.validate()?;
    let init = State::init();
    let mut states = vec![init];
    let mut ids: BTreeMap<State, u32> = BTreeMap::new();
    ids.insert(canon(&init), 0);
    let mut parents: Vec<Option<(u32, Action)>> = vec![None];
    let mut depths: Vec<u32> = vec![0];
    // Reverse adjacency (predecessors) for the backward liveness pass.
    let mut preds: Vec<Vec<u32>> = vec![Vec::new()];
    let mut transitions = 0usize;
    let mut max_depth = 0u32;

    if let Err(property) = check_invariants(cfg, &init) {
        return Ok(ExploreReport {
            states: 1,
            transitions: 0,
            depth: 0,
            violation: Some(Violation {
                property,
                trace: Vec::new(),
                state: init,
            }),
        });
    }

    let mut cursor = 0usize;
    while cursor < states.len() {
        let id = cursor as u32;
        let state = states[cursor];
        cursor += 1;
        for (action, next) in successors(cfg, &state) {
            transitions += 1;
            // Cross-check the two independent encodings of the spec.
            if let Err(why) = validate_action(cfg, &state, action) {
                let mut trace = trace_to(&parents, id);
                trace.push(action);
                return Ok(ExploreReport {
                    states: states.len(),
                    transitions,
                    depth: max_depth as usize,
                    violation: Some(Violation {
                        property: format!("action-validation: {why}"),
                        trace,
                        state: next,
                    }),
                });
            }
            let key = canon(&next);
            let next_id = match ids.get(&key) {
                Some(&n) => n,
                None => {
                    let n = states.len() as u32;
                    states.push(next);
                    ids.insert(key, n);
                    parents.push(Some((id, action)));
                    depths.push(depths[id as usize] + 1);
                    preds.push(Vec::new());
                    max_depth = max_depth.max(depths[n as usize]);
                    if let Err(property) = check_invariants(cfg, &next) {
                        return Ok(ExploreReport {
                            states: states.len(),
                            transitions,
                            depth: max_depth as usize,
                            violation: Some(Violation {
                                property,
                                trace: trace_to(&parents, n),
                                state: next,
                            }),
                        });
                    }
                    n
                }
            };
            preds[next_id as usize].push(id);
        }
    }

    // Liveness: backward reachability from quiescent states. A state
    // outside the closure can never free the partition again — a lost
    // wakeup. (Terminal-state detection alone would miss these: a
    // stuck tenure still has enabled actions, e.g. Busy-deny loops.)
    let mut can_quiesce = vec![false; states.len()];
    let mut work: Vec<u32> = (0..states.len() as u32)
        .filter(|&i| states[i as usize].quiescent())
        .collect();
    for &i in &work {
        can_quiesce[i as usize] = true;
    }
    while let Some(i) = work.pop() {
        for &p in &preds[i as usize] {
            if !can_quiesce[p as usize] {
                can_quiesce[p as usize] = true;
                work.push(p);
            }
        }
    }
    // BFS ids are depth-ordered, so the first stuck id is shallowest.
    let stuck = (0..states.len() as u32).find(|&i| !can_quiesce[i as usize]);
    let violation = stuck.map(|i| Violation {
        property: "lost-wakeup: no path back to a free partition".to_owned(),
        trace: trace_to(&parents, i),
        state: states[i as usize],
    });

    Ok(ExploreReport {
        states: states.len(),
        transitions,
        depth: max_depth as usize,
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Bounds;
    use smtsim_rob2::{ReleasePolicy, SchemeKind};

    fn small(kind: SchemeKind, release: ReleasePolicy) -> ModelConfig {
        ModelConfig {
            kind,
            release,
            bounds: Bounds {
                threads: 2,
                l2: 2,
                misses: 2,
            },
        }
    }

    #[test]
    fn all_schemes_clean_at_small_bounds() {
        for kind in [
            SchemeKind::Reactive,
            SchemeKind::CountDelayed,
            SchemeKind::Predictive,
        ] {
            for release in [
                ReleasePolicy::TriggerServiced,
                ReleasePolicy::DrainAndNoMiss,
                ReleasePolicy::DrainOnly,
            ] {
                let report = explore(&small(kind, release)).expect("valid bounds");
                #[cfg(not(feature = "seeded-release-bug"))]
                assert!(
                    report.clean(),
                    "{kind:?}/{release:?}: {}",
                    report.violation.unwrap()
                );
                #[cfg(feature = "seeded-release-bug")]
                if release == ReleasePolicy::TriggerServiced {
                    assert!(!report.clean(), "{kind:?}/{release:?} must catch the bug");
                }
                assert!(report.states > 1);
                assert!(report.transitions >= report.states - 1);
            }
        }
    }

    #[test]
    fn bounds_are_validated() {
        let mut cfg = small(SchemeKind::Reactive, ReleasePolicy::TriggerServiced);
        cfg.bounds.threads = 9;
        assert!(explore(&cfg).is_err());
    }

    #[test]
    fn trace_reconstruction_is_depth_minimal() {
        // DrainAndNoMiss never consults `draining`, so this holds with
        // or without the seeded release bug.
        let cfg = small(SchemeKind::Reactive, ReleasePolicy::DrainAndNoMiss);
        let report = explore(&cfg).expect("valid bounds");
        // Depth of the graph equals the longest parent chain; spot-check
        // that the deepest recorded depth is attainable.
        assert!(report.depth >= 4, "graph deeper than one episode round");
    }
}
