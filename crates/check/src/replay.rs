//! Replaying real simulator traces through the conformance monitor.
//!
//! Runs the live, cycle-accurate simulator (traced) on paper mixes or
//! fuzz-corpus workload sets under every two-level paper configuration
//! and checks each resulting event stream against the abstract
//! protocol model ([`crate::monitor::check_stream`]).

use crate::monitor::{check_stream, Conformance, Nonconformance};
use smtsim_conform::{case_workloads, CaseSpec};
use smtsim_obs::TraceLog;
use smtsim_pipeline::{MachineConfig, Simulator, StopCondition};
use smtsim_rob2::{RobConfig, TwoLevelConfig};
use smtsim_workload::{mix, Workload};
use std::fmt;
use std::sync::Arc;

/// The four two-level configurations of the paper's §5 evaluation —
/// the matrix every replay covers (baselines have no protocol to
/// check).
#[must_use]
pub fn two_level_configs() -> Vec<TwoLevelConfig> {
    vec![
        TwoLevelConfig::r_rob(16),
        TwoLevelConfig::relaxed_r_rob(15),
        TwoLevelConfig::cdr_rob(15),
        TwoLevelConfig::p_rob(5),
    ]
}

/// One conforming replay: which configuration, how much evidence.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Configuration label (e.g. `2-Level R-ROB16`).
    pub label: String,
    /// Monitor statistics for the stream.
    pub conformance: Conformance,
}

/// Why a replay failed.
#[derive(Clone, Debug)]
pub enum ReplayError {
    /// The simulator could not be built or died mid-run.
    Sim {
        /// Configuration label.
        label: String,
        /// Rendered simulator error.
        error: String,
    },
    /// The trace did not conform to the abstract protocol model.
    Nonconform {
        /// Configuration label.
        label: String,
        /// The violation.
        violation: Nonconformance,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Sim { label, error } => {
                write!(f, "[{label}] simulator failed: {error}")
            }
            ReplayError::Nonconform { label, violation } => {
                write!(f, "[{label}] trace does not conform: {violation}")
            }
        }
    }
}

/// The paper machine sized to `n` hardware threads (mirrors the
/// conformance harness so replays see the same machine the
/// differential oracle runs).
fn machine_for(n: usize) -> MachineConfig {
    let mut cfg = MachineConfig::icpp08();
    cfg.num_threads = n;
    cfg.fetch_threads = n.min(2);
    cfg
}

/// Runs every two-level configuration on `wls` (traced, `warmup`
/// functional instructions, stopping once any thread commits `budget`
/// instructions) and conformance-checks each trace.
///
/// # Errors
/// The first [`ReplayError`], in matrix order.
pub fn replay_workloads(
    wls: &[Arc<Workload>],
    seed: u64,
    budget: u64,
    warmup: u64,
) -> Result<Vec<ReplayOutcome>, ReplayError> {
    let mut outcomes = Vec::new();
    for cfg in two_level_configs() {
        let rob = RobConfig::TwoLevel(cfg);
        let label = rob.label();
        let sim = Simulator::builder(machine_for(wls.len()), wls.to_vec(), rob.build(), seed)
            .warmup(warmup)
            .tracer(TraceLog::new())
            .build();
        let mut sim = match sim {
            Ok(s) => s,
            Err(e) => {
                return Err(ReplayError::Sim {
                    label,
                    error: e.to_string(),
                })
            }
        };
        let run_err = sim.try_run(StopCondition::AnyThreadCommitted(budget)).err();
        let events = sim.into_tracer().into_events();
        if let Some(e) = run_err {
            return Err(ReplayError::Sim {
                label,
                error: e.to_string(),
            });
        }
        match check_stream(&cfg, &events) {
            Ok(conformance) => outcomes.push(ReplayOutcome { label, conformance }),
            Err(violation) => return Err(ReplayError::Nonconform { label, violation }),
        }
    }
    Ok(outcomes)
}

/// Replays one paper mix (Table 2 index) through the matrix.
///
/// # Errors
/// The first [`ReplayError`].
pub fn replay_mix(
    mix_index: usize,
    seed: u64,
    budget: u64,
    warmup: u64,
) -> Result<Vec<ReplayOutcome>, ReplayError> {
    let wls: Vec<Arc<Workload>> = mix(mix_index)
        .instantiate(seed)
        .into_iter()
        .map(Arc::new)
        .collect();
    replay_workloads(&wls, seed, budget, warmup)
}

/// Replays one fuzz-corpus case (its own seed and budget, no warmup —
/// matching how the conformance fuzzer runs it).
///
/// # Errors
/// A `Sim` error naming the case when its workloads cannot be built,
/// else the first [`ReplayError`] from the matrix.
pub fn replay_case(spec: &CaseSpec) -> Result<Vec<ReplayOutcome>, ReplayError> {
    let wls = case_workloads(spec).map_err(|e| ReplayError::Sim {
        label: format!("case seed={}", spec.seed),
        error: e,
    })?;
    replay_workloads(&wls, spec.seed, spec.budget, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_mix_conforms_across_the_matrix() {
        // Mix 1 is the most memory-bound pairing — the densest episode
        // traffic and the hardest test of the monitor's global checks.
        let outcomes = replay_mix(1, 42, 2_000, 0).expect("traces conform");
        assert_eq!(outcomes.len(), two_level_configs().len());
        let grants: usize = outcomes.iter().map(|o| o.conformance.grants).sum();
        assert!(grants > 0, "replay exercised the transfer protocol");
    }

    #[test]
    fn warmup_runs_conform_too() {
        // Warmup shifts cache/predictor state without emitting events;
        // the stream must still open every episode with its detect.
        replay_mix(2, 7, 1_500, 2_000).expect("traces conform");
    }
}
