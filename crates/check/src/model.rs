//! The executable abstract model of the two-level ROB transfer
//! protocol (DESIGN.md §14).
//!
//! The model keeps exactly the protocol-relevant state and forgets the
//! rest of the machine: per thread, a bounded list of miss *episodes*
//! (each a small state machine over [`Phase`]) plus a counter of
//! second-level entries currently occupied (`ext`); globally, the
//! single shared partition ([`Tenure`]). Timing disappears — every
//! interleaving of the remaining moves ([`Action`]) is explored by
//! `explore::explore`, so anything the cycle-accurate simulator can do
//! in *some* schedule is a path here (the soundness argument lives in
//! DESIGN.md §14).
//!
//! The transition relation ([`successors`]) and an independent action
//! validator ([`validate_action`]) both encode the protocol spec, and
//! the explorer cross-checks one against the other on every edge —
//! defense in depth against a bug in either encoding. State invariants
//! ([`check_invariants`]) express the paper's safety properties:
//! occupancy conservation, partition exclusivity, tenure/phase
//! consistency, and (for the default release policy) that a serviced
//! or squashed trigger always starts the drain.

use smtsim_obs::DenyReason;
use smtsim_rob2::{ReleasePolicy, SchemeKind};
use std::fmt;

/// Hard ceilings of the state encoding (fixed-size arrays keep `State`
/// `Copy`-cheap and `Ord` for the visited set).
pub const MAX_THREADS: usize = 4;
/// Per-thread ceiling on modeled miss episodes.
pub const MAX_MISSES: usize = 3;

/// Exploration bounds (must fit the `MAX_*` ceilings).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bounds {
    /// Hardware threads (≤ [`MAX_THREADS`]).
    pub threads: usize,
    /// Shared second-level entries, allocated one at a time (≤ 255).
    pub l2: u8,
    /// Miss episodes per thread (≤ [`MAX_MISSES`]).
    pub misses: usize,
}

impl Bounds {
    /// Validates the bounds against the encoding ceilings.
    ///
    /// # Errors
    /// Describes the out-of-range field.
    pub fn validate(self) -> Result<(), String> {
        if self.threads == 0 || self.threads > MAX_THREADS {
            return Err(format!(
                "threads must be 1..={MAX_THREADS}, got {}",
                self.threads
            ));
        }
        if self.misses == 0 || self.misses > MAX_MISSES {
            return Err(format!(
                "misses must be 1..={MAX_MISSES}, got {}",
                self.misses
            ));
        }
        if self.l2 == 0 {
            return Err("l2 must be at least 1".to_owned());
        }
        Ok(())
    }
}

/// What protocol the model runs: the scheme family decides which deny
/// reasons are reachable, the release policy decides when the
/// partition is handed back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Allocation-scheme family.
    pub kind: SchemeKind,
    /// Release policy.
    pub release: ReleasePolicy,
    /// Exploration bounds.
    pub bounds: Bounds,
}

/// Phase of one abstract miss episode. Terminal phases are absorbing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Not yet detected (episodes detect in program order).
    NotStarted,
    /// Detected, a live allocation candidate (possibly Busy-denied).
    Pending,
    /// Terminally denied (HighDod or ColdPredictor) — candidacy over.
    Rejected,
    /// Fill arrived before any grant — candidacy over.
    Filled,
    /// Squashed before any grant — candidacy over.
    Squashed,
    /// Granted; the trigger load is still in flight.
    Trigger,
    /// Granted; the trigger's fill arrived (tenure draining).
    TriggerFilled,
    /// Granted; the trigger was squashed (tenure draining — unless the
    /// seeded release bug withholds the drain).
    TriggerSquashed,
    /// The tenure anchored on this episode released the partition.
    Released,
}

impl Phase {
    /// Granted phases: the episode anchors the live tenure.
    #[must_use]
    pub fn granted(self) -> bool {
        matches!(
            self,
            Phase::Trigger | Phase::TriggerFilled | Phase::TriggerSquashed
        )
    }
}

/// The live tenure of the shared partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tenure {
    /// Owning thread.
    pub thread: u8,
    /// Index of the trigger episode in the owner's episode array.
    pub episode: u8,
    /// The trigger has been serviced/squashed: no more extension, and
    /// (under `TriggerServiced`) the partition releases once drained.
    pub draining: bool,
}

/// One abstract global state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State {
    /// Episode phases, `phases[thread][episode]`.
    pub phases: [[Phase; MAX_MISSES]; MAX_THREADS],
    /// Second-level entries currently occupied per thread.
    pub ext: [u8; MAX_THREADS],
    /// The shared partition: free or held.
    pub tenure: Option<Tenure>,
}

impl State {
    /// The initial state: nothing detected, partition free.
    #[must_use]
    pub fn init() -> Self {
        State {
            phases: [[Phase::NotStarted; MAX_MISSES]; MAX_THREADS],
            ext: [0; MAX_THREADS],
            tenure: None,
        }
    }

    /// Whether the partition is free (the quiescence target of the
    /// lost-wakeup check: from every reachable state it must be
    /// possible to free the partition again).
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.tenure.is_none()
    }
}

/// One protocol move. `thread`/`episode` index the episode arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// The thread's next miss is detected (becomes a candidate).
    Detect {
        /// Detecting thread.
        thread: u8,
    },
    /// A candidate is denied for `reason` (Busy keeps the candidacy;
    /// HighDod/ColdPredictor are terminal).
    Deny {
        /// Denied thread.
        thread: u8,
        /// Episode index.
        episode: u8,
        /// Deny reason.
        reason: DenyReason,
    },
    /// A candidate is granted the partition (tenure opens).
    Grant {
        /// Granted thread.
        thread: u8,
        /// Episode index (becomes the trigger).
        episode: u8,
    },
    /// The miss data returns for an episode still in flight.
    Fill {
        /// Thread.
        thread: u8,
        /// Episode index.
        episode: u8,
    },
    /// A squash censors all live episodes of `thread` from index
    /// `from` on (program order = index order).
    Squash {
        /// Squashed thread.
        thread: u8,
        /// First censored episode index.
        from: u8,
    },
    /// The owner dispatches one instruction into the second level.
    Extend {
        /// Owning thread.
        thread: u8,
    },
    /// One of the thread's second-level entries drains (commit or
    /// squash reclaims it).
    Drain {
        /// Draining thread.
        thread: u8,
    },
    /// The owner releases the partition (policy guard met).
    Release {
        /// Owning thread.
        thread: u8,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::Detect { thread } => write!(f, "detect(t{thread})"),
            Action::Deny {
                thread,
                episode,
                reason,
            } => write!(f, "deny(t{thread}, e{episode}, {})", reason.name()),
            Action::Grant { thread, episode } => write!(f, "grant(t{thread}, e{episode})"),
            Action::Fill { thread, episode } => write!(f, "fill(t{thread}, e{episode})"),
            Action::Squash { thread, from } => write!(f, "squash(t{thread}, from e{from})"),
            Action::Extend { thread } => write!(f, "extend(t{thread})"),
            Action::Drain { thread } => write!(f, "drain(t{thread})"),
            Action::Release { thread } => write!(f, "release(t{thread})"),
        }
    }
}

/// Whether `reason` can be emitted in `state` under `cfg` — the
/// deny-reason soundness table, matched exhaustively so a new
/// [`DenyReason`] fails compilation here (the model-checker leg of the
/// coverage bridge).
#[must_use]
pub fn deny_sound(cfg: &ModelConfig, state: &State, reason: DenyReason) -> bool {
    match reason {
        // The partition must actually be taken.
        DenyReason::Busy => state.tenure.is_some(),
        // Counting schemes only evaluate the DoD once the partition is
        // free (the busy check comes first); the predictor verdict
        // arrives at detection regardless of the partition.
        DenyReason::HighDod => state.tenure.is_none() || cfg.kind == SchemeKind::Predictive,
        // Only a predictor can be cold.
        DenyReason::ColdPredictor => cfg.kind == SchemeKind::Predictive,
    }
}

/// The release-policy guard: may the owner hand the partition back in
/// `state`? (`thread` must own the tenure.)
#[must_use]
pub fn release_allowed(cfg: &ModelConfig, state: &State, thread: u8) -> bool {
    let Some(t) = state.tenure else { return false };
    if t.thread != thread {
        return false;
    }
    let drained = state.ext[thread as usize] == 0;
    match cfg.release {
        ReleasePolicy::TriggerServiced => t.draining && drained,
        ReleasePolicy::DrainAndNoMiss => {
            // No outstanding detected miss: nothing Pending and the
            // trigger itself no longer in flight.
            let no_miss = state.phases[thread as usize]
                .iter()
                .take(cfg.bounds.misses)
                .all(|p| !matches!(p, Phase::Pending | Phase::Trigger));
            drained && no_miss
        }
        ReleasePolicy::DrainOnly => drained,
    }
}

/// Applies `action` to `state`, assuming its guard holds (callers go
/// through [`successors`], which only emits guarded actions).
#[must_use]
pub fn apply(cfg: &ModelConfig, state: &State, action: Action) -> State {
    let mut s = *state;
    match action {
        Action::Detect { thread } => {
            let t = thread as usize;
            if let Some(e) = (0..cfg.bounds.misses).find(|&e| s.phases[t][e] == Phase::NotStarted) {
                s.phases[t][e] = Phase::Pending;
            }
        }
        Action::Deny {
            thread,
            episode,
            reason,
        } => {
            // Busy keeps the candidacy (recheck); HighDod/Cold end it.
            if reason != DenyReason::Busy {
                s.phases[thread as usize][episode as usize] = Phase::Rejected;
            }
        }
        Action::Grant { thread, episode } => {
            s.phases[thread as usize][episode as usize] = Phase::Trigger;
            s.tenure = Some(Tenure {
                thread,
                episode,
                draining: false,
            });
        }
        Action::Fill { thread, episode } => {
            let t = thread as usize;
            let e = episode as usize;
            match s.phases[t][e] {
                Phase::Pending => s.phases[t][e] = Phase::Filled,
                Phase::Trigger => {
                    s.phases[t][e] = Phase::TriggerFilled;
                    if let Some(ten) = s.tenure.as_mut() {
                        if ten.thread == thread && ten.episode == episode {
                            ten.draining = true;
                        }
                    }
                }
                _ => {}
            }
        }
        Action::Squash { thread, from } => {
            let t = thread as usize;
            for e in (from as usize)..cfg.bounds.misses {
                match s.phases[t][e] {
                    Phase::Pending => s.phases[t][e] = Phase::Squashed,
                    Phase::Trigger => {
                        s.phases[t][e] = Phase::TriggerSquashed;
                        // The seeded bug: withhold the drain on squash,
                        // so a TriggerServiced tenure can never release
                        // — the explorer must find the stuck state.
                        #[cfg(not(feature = "seeded-release-bug"))]
                        if let Some(ten) = s.tenure.as_mut() {
                            if ten.thread == thread && ten.episode == e as u8 {
                                ten.draining = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        Action::Extend { thread } => {
            s.ext[thread as usize] += 1;
        }
        Action::Drain { thread } => {
            s.ext[thread as usize] -= 1;
        }
        Action::Release { thread } => {
            let t = thread as usize;
            if let Some(ten) = s.tenure {
                if ten.thread == thread {
                    s.phases[t][ten.episode as usize] = Phase::Released;
                }
            }
            s.tenure = None;
        }
    }
    s
}

/// Every guarded action from `state`, with its successor, in a fixed
/// deterministic order (threads ascending, then action kind).
#[must_use]
pub fn successors(cfg: &ModelConfig, state: &State) -> Vec<(Action, State)> {
    let mut out = Vec::new();
    let push = |a: Action, out: &mut Vec<(Action, State)>| {
        out.push((a, apply(cfg, state, a)));
    };
    let total_ext: u32 = state.ext.iter().map(|&x| u32::from(x)).sum();
    for thread in 0..cfg.bounds.threads {
        let tu8 = thread as u8;
        let phases = &state.phases[thread];
        // Detect the next episode, if any remain.
        if phases
            .iter()
            .take(cfg.bounds.misses)
            .any(|&p| p == Phase::NotStarted)
        {
            push(Action::Detect { thread: tu8 }, &mut out);
        }
        for (episode, &phase) in phases.iter().enumerate().take(cfg.bounds.misses) {
            let eu8 = episode as u8;
            match phase {
                Phase::Pending => {
                    // Grant only when the partition is free.
                    if state.tenure.is_none() {
                        push(
                            Action::Grant {
                                thread: tu8,
                                episode: eu8,
                            },
                            &mut out,
                        );
                    }
                    // Denials, in reason order, where sound.
                    for reason in DenyReason::ALL {
                        if deny_sound(cfg, state, reason) {
                            push(
                                Action::Deny {
                                    thread: tu8,
                                    episode: eu8,
                                    reason,
                                },
                                &mut out,
                            );
                        }
                    }
                    push(
                        Action::Fill {
                            thread: tu8,
                            episode: eu8,
                        },
                        &mut out,
                    );
                }
                Phase::Trigger => {
                    push(
                        Action::Fill {
                            thread: tu8,
                            episode: eu8,
                        },
                        &mut out,
                    );
                }
                _ => {}
            }
        }
        // Squashes: any suffix of live episodes (a squashed trigger's
        // fill never reaches the allocator, so there is no Fill from
        // TriggerSquashed — that asymmetry is what makes the withheld
        // drain a genuine lost wakeup).
        for from in 0..cfg.bounds.misses {
            let hits = (from..cfg.bounds.misses)
                .any(|e| matches!(phases[e], Phase::Pending | Phase::Trigger));
            if hits {
                push(
                    Action::Squash {
                        thread: tu8,
                        from: from as u8,
                    },
                    &mut out,
                );
            }
        }
        // Occupancy moves.
        if let Some(t) = state.tenure {
            if t.thread == tu8 && !t.draining && total_ext < u32::from(cfg.bounds.l2) {
                push(Action::Extend { thread: tu8 }, &mut out);
            }
        }
        if state.ext[thread] > 0 {
            push(Action::Drain { thread: tu8 }, &mut out);
        }
        if release_allowed(cfg, state, tu8) {
            push(Action::Release { thread: tu8 }, &mut out);
        }
    }
    out
}

/// Independently re-validates that `action` was legal in `state`. The
/// explorer runs this on every edge [`successors`] emits; a mismatch
/// means the transition relation and the spec encoding disagree.
///
/// # Errors
/// A description of the violated guard.
pub fn validate_action(cfg: &ModelConfig, state: &State, action: Action) -> Result<(), String> {
    let phase = |t: u8, e: u8| state.phases[t as usize][e as usize];
    match action {
        Action::Detect { thread } => {
            let t = thread as usize;
            if !state.phases[t]
                .iter()
                .take(cfg.bounds.misses)
                .any(|&p| p == Phase::NotStarted)
            {
                return Err(format!("detect(t{thread}) with no episode left"));
            }
        }
        Action::Deny {
            thread,
            episode,
            reason,
        } => {
            if phase(thread, episode) != Phase::Pending {
                return Err(format!(
                    "deny of non-pending episode t{thread}/e{episode} ({:?})",
                    phase(thread, episode)
                ));
            }
            if !deny_sound(cfg, state, reason) {
                return Err(format!(
                    "deny-reason soundness: {} unreachable for {:?} here",
                    reason.name(),
                    cfg.kind
                ));
            }
        }
        Action::Grant { thread, episode } => {
            if state.tenure.is_some() {
                return Err(format!(
                    "grant(t{thread}, e{episode}) while the partition is held \
                     (grant-while-full)"
                ));
            }
            if phase(thread, episode) != Phase::Pending {
                return Err(format!(
                    "grant of non-pending episode t{thread}/e{episode} ({:?})",
                    phase(thread, episode)
                ));
            }
        }
        Action::Fill { thread, episode } => {
            if !matches!(phase(thread, episode), Phase::Pending | Phase::Trigger) {
                return Err(format!(
                    "fill of episode t{thread}/e{episode} not in flight ({:?})",
                    phase(thread, episode)
                ));
            }
        }
        Action::Squash { thread, from } => {
            let t = thread as usize;
            if !((from as usize)..cfg.bounds.misses)
                .any(|e| matches!(state.phases[t][e], Phase::Pending | Phase::Trigger))
            {
                return Err(format!("squash(t{thread}, e{from}) censors nothing"));
            }
        }
        Action::Extend { thread } => {
            match state.tenure {
                Some(t) if t.thread == thread && !t.draining => {}
                Some(t) if t.thread == thread => {
                    return Err(format!("extend(t{thread}) while draining"));
                }
                _ => return Err(format!("extend(t{thread}) without owning the partition")),
            }
            let total: u32 = state.ext.iter().map(|&x| u32::from(x)).sum();
            if total >= u32::from(cfg.bounds.l2) {
                return Err(format!(
                    "extend(t{thread}) beyond the second level ({} entries)",
                    cfg.bounds.l2
                ));
            }
        }
        Action::Drain { thread } => {
            if state.ext[thread as usize] == 0 {
                return Err(format!("drain(t{thread}) with no second-level entries"));
            }
        }
        Action::Release { thread } => {
            if state.tenure.is_none() {
                return Err(format!(
                    "release(t{thread}) with the partition already free (double release)"
                ));
            }
            if !release_allowed(cfg, state, thread) {
                return Err(format!(
                    "release(t{thread}) before the {:?} guard holds",
                    cfg.release
                ));
            }
        }
    }
    Ok(())
}

/// Checks every state invariant (the safety properties as
/// reachability: a reachable state failing one IS the counterexample).
///
/// # Errors
/// The violated property, by name, with detail.
pub fn check_invariants(cfg: &ModelConfig, state: &State) -> Result<(), String> {
    // Occupancy conservation: the shared second level is never
    // oversubscribed, and only the owner occupies it.
    let total: u32 = state.ext.iter().map(|&x| u32::from(x)).sum();
    if total > u32::from(cfg.bounds.l2) {
        return Err(format!(
            "occupancy-conservation: {total} second-level entries in use, \
             partition has {}",
            cfg.bounds.l2
        ));
    }
    let owner = state.tenure.map(|t| t.thread);
    for t in 0..cfg.bounds.threads {
        if state.ext[t] > 0 && owner != Some(t as u8) {
            return Err(format!(
                "occupancy-conservation: t{t} holds {} second-level entries \
                 without owning the partition (owner={owner:?})",
                state.ext[t]
            ));
        }
    }
    // Tenure/phase consistency: the tenure points at a granted episode
    // and granted episodes exist exactly while the tenure is live.
    let granted: Vec<(usize, usize)> = (0..cfg.bounds.threads)
        .flat_map(|t| (0..cfg.bounds.misses).map(move |e| (t, e)))
        .filter(|&(t, e)| state.phases[t][e].granted())
        .collect();
    match state.tenure {
        Some(ten) => {
            let anchor = (ten.thread as usize, ten.episode as usize);
            if granted != vec![anchor] {
                return Err(format!(
                    "tenure-consistency: tenure anchored at t{}/e{} but granted \
                     phases are {granted:?}",
                    ten.thread, ten.episode
                ));
            }
            // Drain consistency (the property the seeded release bug
            // breaks): once the trigger is serviced or squashed, the
            // TriggerServiced tenure must be draining — otherwise the
            // release is withheld forever.
            if cfg.release == ReleasePolicy::TriggerServiced
                && !ten.draining
                && state.phases[anchor.0][anchor.1] != Phase::Trigger
            {
                return Err(format!(
                    "drain-consistency: trigger t{}/e{} is {:?} but the tenure \
                     is not draining (withheld release)",
                    ten.thread, ten.episode, state.phases[anchor.0][anchor.1]
                ));
            }
        }
        None => {
            if !granted.is_empty() {
                return Err(format!(
                    "tenure-consistency: partition free but granted phases remain \
                     at {granted:?}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: SchemeKind, release: ReleasePolicy) -> ModelConfig {
        ModelConfig {
            kind,
            release,
            bounds: Bounds {
                threads: 2,
                l2: 2,
                misses: 2,
            },
        }
    }

    #[test]
    fn detect_grant_fill_drain_release_roundtrip() {
        let c = cfg(SchemeKind::Reactive, ReleasePolicy::TriggerServiced);
        let mut s = State::init();
        s = apply(&c, &s, Action::Detect { thread: 0 });
        assert_eq!(s.phases[0][0], Phase::Pending);
        s = apply(
            &c,
            &s,
            Action::Grant {
                thread: 0,
                episode: 0,
            },
        );
        assert!(s.tenure.is_some());
        s = apply(&c, &s, Action::Extend { thread: 0 });
        assert_eq!(s.ext[0], 1);
        s = apply(
            &c,
            &s,
            Action::Fill {
                thread: 0,
                episode: 0,
            },
        );
        assert!(s.tenure.unwrap().draining, "fill of the trigger drains");
        assert!(!release_allowed(&c, &s, 0), "still one entry occupied");
        s = apply(&c, &s, Action::Drain { thread: 0 });
        assert!(release_allowed(&c, &s, 0));
        s = apply(&c, &s, Action::Release { thread: 0 });
        assert!(s.quiescent());
        assert_eq!(s.phases[0][0], Phase::Released);
        check_invariants(&c, &s).expect("clean state");
    }

    #[test]
    fn squash_of_trigger_starts_drain_unless_bug_seeded() {
        let c = cfg(SchemeKind::Reactive, ReleasePolicy::TriggerServiced);
        let mut s = State::init();
        s = apply(&c, &s, Action::Detect { thread: 0 });
        s = apply(
            &c,
            &s,
            Action::Grant {
                thread: 0,
                episode: 0,
            },
        );
        s = apply(&c, &s, Action::Squash { thread: 0, from: 0 });
        assert_eq!(s.phases[0][0], Phase::TriggerSquashed);
        #[cfg(not(feature = "seeded-release-bug"))]
        {
            assert!(s.tenure.unwrap().draining);
            assert!(check_invariants(&c, &s).is_ok());
        }
        #[cfg(feature = "seeded-release-bug")]
        {
            assert!(!s.tenure.unwrap().draining, "bug withholds the drain");
            assert!(check_invariants(&c, &s).is_err());
        }
    }

    #[test]
    fn deny_soundness_per_scheme() {
        let free = State::init();
        let mut held = State::init();
        held.phases[1][0] = Phase::Trigger;
        held.tenure = Some(Tenure {
            thread: 1,
            episode: 0,
            draining: false,
        });
        for kind in [
            SchemeKind::Reactive,
            SchemeKind::CountDelayed,
            SchemeKind::Predictive,
        ] {
            let c = cfg(kind, ReleasePolicy::TriggerServiced);
            assert!(!deny_sound(&c, &free, DenyReason::Busy), "{kind:?}");
            assert!(deny_sound(&c, &held, DenyReason::Busy), "{kind:?}");
            assert!(deny_sound(&c, &free, DenyReason::HighDod), "{kind:?}");
            assert_eq!(
                deny_sound(&c, &held, DenyReason::HighDod),
                kind == SchemeKind::Predictive,
                "{kind:?}: counting schemes check busy first"
            );
            assert_eq!(
                deny_sound(&c, &free, DenyReason::ColdPredictor),
                kind == SchemeKind::Predictive,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn successors_all_validate() {
        let c = cfg(SchemeKind::Predictive, ReleasePolicy::TriggerServiced);
        let mut frontier = vec![State::init()];
        for _ in 0..4 {
            let mut next = Vec::new();
            for s in &frontier {
                for (a, n) in successors(&c, s) {
                    validate_action(&c, s, a).expect("generated action validates");
                    // The seeded bug makes squash-of-trigger states violate
                    // drain-consistency on purpose — that's the mutation
                    // self-test's job, not this one's.
                    #[cfg(not(feature = "seeded-release-bug"))]
                    check_invariants(&c, &n).expect("successor invariants hold");
                    next.push(n);
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
    }

    #[test]
    fn drain_only_release_frees_a_live_trigger() {
        let c = cfg(SchemeKind::Reactive, ReleasePolicy::DrainOnly);
        let mut s = State::init();
        s = apply(&c, &s, Action::Detect { thread: 1 });
        s = apply(
            &c,
            &s,
            Action::Grant {
                thread: 1,
                episode: 0,
            },
        );
        assert!(release_allowed(&c, &s, 1), "DrainOnly ignores the trigger");
        s = apply(&c, &s, Action::Release { thread: 1 });
        assert!(s.quiescent());
        assert_eq!(s.phases[1][0], Phase::Released, "candidacy lost by design");
        check_invariants(&c, &s).expect("clean state");
    }

    #[test]
    fn drain_and_no_miss_waits_for_pending_misses() {
        let c = cfg(SchemeKind::Reactive, ReleasePolicy::DrainAndNoMiss);
        let mut s = State::init();
        s = apply(&c, &s, Action::Detect { thread: 0 });
        s = apply(
            &c,
            &s,
            Action::Grant {
                thread: 0,
                episode: 0,
            },
        );
        assert!(!release_allowed(&c, &s, 0), "trigger still outstanding");
        s = apply(
            &c,
            &s,
            Action::Fill {
                thread: 0,
                episode: 0,
            },
        );
        // A second detected miss keeps the partition (MLP chaining).
        let with_miss = apply(&c, &s, Action::Detect { thread: 0 });
        assert!(!release_allowed(&c, &with_miss, 0));
        assert!(release_allowed(&c, &s, 0));
    }
}
