//! Trace-conformance monitoring: is a concrete simulator trace a
//! behaviour the abstract protocol model accepts?
//!
//! Two independent layers, both prefix-closed (a truncated stream that
//! has not violated anything yet passes):
//!
//! 1. **Stream monitor** ([`check_stream`]) — folds the raw
//!    `(cycle, TraceEvent)` stream through the global protocol state
//!    (partition owner, per-episode lifecycle), checking exclusivity,
//!    deny-reason soundness, release matching and occupancy bounds as
//!    each event arrives.
//! 2. **Episode paths** — reconstructs [`Episode`]s and replays each
//!    one's [`Episode::protocol_steps`] projection through the
//!    per-episode acceptance rules of the abstract model
//!    ([`check_episode_path`]).
//!
//! ## Intra-cycle event order
//!
//! The pipeline emits `Squash`/`L2MissDetected`/`L2Fill` (and
//! `RobOccupancy` samples) at the moment they happen, while the
//! allocator's decisions are buffered and folded in once per cycle
//! *afterwards* — so within one cycle, stream order is not decision
//! order. The monitor therefore (a) pre-scans each cycle to learn who
//! owns (or acquires) the partition that cycle before judging
//! occupancy samples, and (b) grants a same-cycle grace window where a
//! decision may race a squash/fill of the same episode. Across cycles
//! the checks are strict.
//!
//! ## Orphan fills
//!
//! A fill may legally arrive for a tag that was never detected:
//! store-to-load forwarding (or a squash/refetch race) resolves the
//! load before its detection event fires, so the core skips detection
//! — but the fill was queued at issue and still lands. The allocator
//! treats such a notification as a no-op, so the monitor accepts the
//! fill as noise while still refusing any allocator *decision* that
//! targets the undetected tag.

use smtsim_obs::{
    Cycle, DenyReason, DodSource, Episode, EpisodeReconstructor, ProtocolStep, ThreadId, TraceEvent,
};
use smtsim_rob2::{ReleasePolicy, SchemeKind, TwoLevelConfig};
use std::collections::BTreeMap;
use std::fmt;

/// A conformance violation: the concrete trace did something the
/// abstract model forbids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Nonconformance {
    /// Cycle of the offending event (or episode step).
    pub cycle: Cycle,
    /// What rule was broken, with context.
    pub detail: String,
}

impl fmt::Display for Nonconformance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.detail)
    }
}

/// Summary of one conforming stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Conformance {
    /// Events folded.
    pub events: usize,
    /// Episodes reconstructed and path-checked.
    pub episodes: usize,
    /// Partition grants observed.
    pub grants: usize,
    /// Denials observed.
    pub denials: usize,
    /// Releases observed.
    pub releases: usize,
}

/// Per-episode bookkeeping for the stream pass.
#[derive(Clone, Copy, Debug, Default)]
struct EpState {
    wrong_path_at_detect: bool,
    terminal_denied: bool,
    granted: bool,
    filled_at: Option<Cycle>,
    squashed_at: Option<Cycle>,
    /// The fill arrived without a detection: store-to-load forwarding
    /// (or a squash/refetch race) resolved the load before its
    /// detection event fired, so the core skipped detection but the
    /// already-queued fill still lands. Legal noise — but the
    /// allocator never saw the miss, so any *decision* targeting the
    /// tag is a violation.
    orphan: bool,
}

/// The abstract state the stream monitor carries between events.
struct StreamMonitor<'a> {
    cfg: &'a TwoLevelConfig,
    kind: SchemeKind,
    owner: Option<(ThreadId, u64)>,
    eps: BTreeMap<(ThreadId, u64), EpState>,
    stats: Conformance,
}

impl StreamMonitor<'_> {
    fn fail<S: Into<String>>(&self, cycle: Cycle, detail: S) -> Nonconformance {
        Nonconformance {
            cycle,
            detail: detail.into(),
        }
    }

    /// The model's deny-soundness table, evaluated on the monitor's
    /// view of the partition (`deny_sound` needs only the tenure, so a
    /// one-field shim state would duplicate logic; inline the rule).
    fn deny_reason_ok(&self, reason: DenyReason) -> bool {
        match reason {
            DenyReason::Busy => self.owner.is_some(),
            DenyReason::HighDod => self.owner.is_none() || self.kind == SchemeKind::Predictive,
            DenyReason::ColdPredictor => self.kind == SchemeKind::Predictive,
        }
    }

    /// A decision (grant/deny) targeting `(thread, tag)` must hit a
    /// live, allocator-visible episode. Same-cycle squash/fill races
    /// are allowed (see the module docs); strictly-earlier ones are
    /// violations.
    fn decision_target(
        &self,
        cycle: Cycle,
        what: &str,
        thread: ThreadId,
        tag: u64,
    ) -> Result<EpState, Nonconformance> {
        let Some(ep) = self.eps.get(&(thread, tag)).copied() else {
            return Err(self.fail(
                cycle,
                format!("{what} for t{thread}/tag{tag} never detected"),
            ));
        };
        if ep.orphan {
            return Err(self.fail(
                cycle,
                format!(
                    "{what} for t{thread}/tag{tag}, whose detection was skipped \
                     (the allocator never saw the miss)"
                ),
            ));
        }
        if ep.wrong_path_at_detect {
            return Err(self.fail(
                cycle,
                format!(
                    "{what} for wrong-path miss t{thread}/tag{tag} (allocator must not see it)"
                ),
            ));
        }
        if ep.terminal_denied {
            return Err(self.fail(
                cycle,
                format!("{what} for t{thread}/tag{tag} after a terminal denial"),
            ));
        }
        if let Some(f) = ep.filled_at {
            if f < cycle {
                return Err(self.fail(
                    cycle,
                    format!("{what} for t{thread}/tag{tag} filled back at cycle {f}"),
                ));
            }
        }
        if let Some(s) = ep.squashed_at {
            if s < cycle {
                return Err(self.fail(
                    cycle,
                    format!("{what} for t{thread}/tag{tag} squashed back at cycle {s}"),
                ));
            }
        }
        Ok(ep)
    }

    fn feed(
        &mut self,
        cycle: Cycle,
        event: &TraceEvent,
        cycle_owners: &[ThreadId],
    ) -> Result<(), Nonconformance> {
        self.stats.events += 1;
        match *event {
            TraceEvent::L2MissDetected {
                thread,
                tag,
                wrong_path,
                ..
            } => {
                if self.eps.contains_key(&(thread, tag)) {
                    return Err(self.fail(
                        cycle,
                        format!(
                            "duplicate miss detection for t{thread}/tag{tag} (tags are unique)"
                        ),
                    ));
                }
                self.eps.insert(
                    (thread, tag),
                    EpState {
                        wrong_path_at_detect: wrong_path,
                        ..EpState::default()
                    },
                );
            }
            TraceEvent::L2Fill { thread, tag, .. } => {
                // A fill for a tag that was never detected is an
                // *orphan*: forwarding (or a squash/refetch race)
                // resolved the load before its detection event fired,
                // so the core skipped detection — but the fill was
                // already queued at issue. The allocator treats the
                // notification as a no-op; the monitor records the tag
                // so a later decision targeting it is still refused.
                let ep = self.eps.entry((thread, tag)).or_insert(EpState {
                    orphan: true,
                    ..EpState::default()
                });
                if let Some(f) = ep.filled_at {
                    return Err(self.fail(
                        cycle,
                        format!("second fill for t{thread}/tag{tag} (first at cycle {f})"),
                    ));
                }
                if let Some(s) = ep.squashed_at {
                    if s < cycle {
                        return Err(self.fail(
                            cycle,
                            format!(
                                "fill for t{thread}/tag{tag} squashed back at cycle {s} \
                                 (squashed loads never fill)"
                            ),
                        ));
                    }
                }
                ep.filled_at = Some(cycle);
            }
            TraceEvent::DodSampled {
                thread,
                tag,
                value,
                source,
            } => {
                let predictive = self.kind == SchemeKind::Predictive;
                match source {
                    DodSource::Predictor => {
                        if !predictive {
                            return Err(self.fail(
                                cycle,
                                format!(
                                    "predictor DoD sample under {:?} (t{thread}/tag{tag})",
                                    self.kind
                                ),
                            ));
                        }
                        if value > 1 {
                            return Err(self.fail(
                                cycle,
                                format!("predictor verdict {value} ∉ {{0,1}} (t{thread}/tag{tag})"),
                            ));
                        }
                    }
                    DodSource::CounterAtDecision => {
                        if predictive {
                            return Err(self.fail(
                                cycle,
                                format!(
                                    "decision-time counter sample under the predictive scheme \
                                     (t{thread}/tag{tag})"
                                ),
                            ));
                        }
                    }
                    // Fill-time counter reads train predictors and
                    // close counting episodes — legal everywhere.
                    DodSource::CounterAtFill => {}
                }
                if source != DodSource::CounterAtFill {
                    // Decision samples target allocator-visible misses.
                    self.decision_target(cycle, "DoD decision sample", thread, tag)?;
                }
            }
            TraceEvent::L2RobAllocated { thread, tag } => {
                if let Some((ot, otag)) = self.owner {
                    return Err(self.fail(
                        cycle,
                        format!(
                            "grant to t{thread}/tag{tag} while t{ot}/tag{otag} holds the \
                             partition (grant-while-full)"
                        ),
                    ));
                }
                let ep = self.decision_target(cycle, "grant", thread, tag)?;
                if ep.granted {
                    return Err(self.fail(
                        cycle,
                        format!("second grant to the same episode t{thread}/tag{tag}"),
                    ));
                }
                self.eps.get_mut(&(thread, tag)).expect("checked").granted = true;
                self.owner = Some((thread, tag));
                self.stats.grants += 1;
            }
            TraceEvent::L2RobDenied {
                thread,
                tag,
                reason,
            } => {
                self.decision_target(cycle, "denial", thread, tag)?;
                if !self.deny_reason_ok(reason) {
                    return Err(self.fail(
                        cycle,
                        format!(
                            "deny-reason soundness: {} for t{thread}/tag{tag} under {:?} \
                             with owner {:?}",
                            reason.name(),
                            self.kind,
                            self.owner
                        ),
                    ));
                }
                if reason != DenyReason::Busy {
                    self.eps
                        .get_mut(&(thread, tag))
                        .expect("checked")
                        .terminal_denied = true;
                }
                self.stats.denials += 1;
            }
            TraceEvent::L2RobReleased {
                thread,
                trigger_tag,
            } => match self.owner {
                Some((ot, otag)) if (ot, otag) == (thread, trigger_tag) => {
                    self.owner = None;
                    self.stats.releases += 1;
                }
                Some((ot, otag)) => {
                    return Err(self.fail(
                        cycle,
                        format!(
                            "release by t{thread}/tag{trigger_tag} but the tenure belongs \
                             to t{ot}/tag{otag}"
                        ),
                    ));
                }
                None => {
                    return Err(self.fail(
                        cycle,
                        format!(
                            "release by t{thread}/tag{trigger_tag} with the partition \
                             already free (double release)"
                        ),
                    ));
                }
            },
            TraceEvent::Squash { thread, first_tag } => {
                for ((t, tag), ep) in self.eps.range_mut((thread, first_tag)..) {
                    if *t != thread {
                        break;
                    }
                    if *tag >= first_tag && ep.squashed_at.is_none() {
                        ep.squashed_at = Some(cycle);
                    }
                }
            }
            TraceEvent::RobOccupancy { thread, occupancy } => {
                let l1 = u32::try_from(self.cfg.l1_entries).unwrap_or(u32::MAX);
                let cap = l1.saturating_add(u32::try_from(self.cfg.l2_entries).unwrap_or(u32::MAX));
                if occupancy > cap {
                    return Err(self.fail(
                        cycle,
                        format!(
                            "occupancy-conservation: t{thread} at {occupancy} entries, \
                             hard bound l1+l2 = {cap}"
                        ),
                    ));
                }
                if occupancy > l1 && !cycle_owners.contains(&thread) {
                    return Err(self.fail(
                        cycle,
                        format!(
                            "occupancy-conservation: t{thread} at {occupancy} > l1 = {l1} \
                             without holding the partition this cycle (owners: {cycle_owners:?})"
                        ),
                    ));
                }
            }
            TraceEvent::ThreadStall { .. }
            | TraceEvent::Commit { .. }
            | TraceEvent::MemFillScheduled { .. } => {}
        }
        Ok(())
    }
}

/// Checks a full `(cycle, TraceEvent)` stream (as produced by a traced
/// simulator run under two-level config `cfg`) against the abstract
/// protocol model: stream-level global checks, then per-episode path
/// acceptance.
///
/// # Errors
/// The first [`Nonconformance`] found.
pub fn check_stream(
    cfg: &TwoLevelConfig,
    events: &[(Cycle, TraceEvent)],
) -> Result<Conformance, Nonconformance> {
    let mut mon = StreamMonitor {
        cfg,
        kind: cfg.scheme.kind(),
        owner: None,
        eps: BTreeMap::new(),
        stats: Conformance::default(),
    };
    let mut i = 0;
    while i < events.len() {
        let cycle = events[i].0;
        let mut j = i;
        while j < events.len() && events[j].0 == cycle {
            j += 1;
        }
        // Pre-scan the cycle: who owns the partition at any point in
        // it? Occupancy samples are emitted before the allocator's
        // buffered grant events of the same cycle, so the owner set
        // must look ahead.
        let mut cycle_owners = Vec::new();
        if let Some((t, _)) = mon.owner {
            cycle_owners.push(t);
        }
        for (_, ev) in &events[i..j] {
            if let TraceEvent::L2RobAllocated { thread, .. } = ev {
                if !cycle_owners.contains(thread) {
                    cycle_owners.push(*thread);
                }
            }
        }
        for (c, ev) in &events[i..j] {
            mon.feed(*c, ev, &cycle_owners)?;
        }
        i = j;
    }

    // Layer 2: per-episode protocol paths.
    let episodes = EpisodeReconstructor::from_events(events);
    mon.stats.episodes = episodes.len();
    for ep in &episodes {
        check_episode_path(cfg.scheme.kind(), cfg.release, ep)?;
    }
    Ok(mon.stats)
}

/// Replays one reconstructed episode's protocol projection through the
/// abstract model's per-episode acceptance rules. The step stream is
/// cycle-sorted with protocol-rank tie-breaks
/// ([`Episode::protocol_steps`]), so same-cycle races arrive in legal
/// order when one exists.
///
/// # Errors
/// The first step the abstract episode machine rejects.
pub fn check_episode_path(
    kind: SchemeKind,
    release: ReleasePolicy,
    ep: &Episode,
) -> Result<(), Nonconformance> {
    let who = format!("t{}/tag{}", ep.thread, ep.tag);
    let steps = ep.protocol_steps();
    let reject = |cycle: Cycle, step: ProtocolStep, why: &str| {
        Err(Nonconformance {
            cycle,
            detail: format!("episode {who}: {} rejected — {why}", step.name()),
        })
    };
    let mut detected = false;
    let mut wrong_path = false;
    let mut terminal = false;
    let mut granted = false;
    let mut filled = false;
    let mut squashed = false;
    let mut released = false;
    for (idx, &(cycle, step)) in steps.iter().enumerate() {
        match step {
            ProtocolStep::Detected { wrong_path: wp } => {
                if idx != 0 {
                    return reject(cycle, step, "detection must open the episode");
                }
                detected = true;
                wrong_path = wp;
            }
            ProtocolStep::Denied(reason) => {
                if !detected || wrong_path {
                    return reject(cycle, step, "denial of an undetected or wrong-path miss");
                }
                if granted || terminal || filled || squashed || released {
                    return reject(cycle, step, "candidacy already over");
                }
                if reason == DenyReason::ColdPredictor && kind != SchemeKind::Predictive {
                    return reject(cycle, step, "cold-predictor denial without a predictor");
                }
                if reason != DenyReason::Busy {
                    terminal = true;
                }
            }
            ProtocolStep::Granted => {
                if !detected || wrong_path {
                    return reject(cycle, step, "grant of an undetected or wrong-path miss");
                }
                if terminal || granted || filled || squashed || released {
                    return reject(cycle, step, "candidacy already over");
                }
                granted = true;
            }
            ProtocolStep::Filled => {
                // A fill with no detection is an orphan (forwarding or
                // a squash/refetch race skipped the detection): legal
                // on its own, and every *decision* step for an
                // undetected episode is rejected by its own arm.
                if filled {
                    return reject(cycle, step, "second fill");
                }
                if squashed {
                    return reject(cycle, step, "squashed loads never fill");
                }
                filled = true;
            }
            ProtocolStep::Squashed => {
                if !detected {
                    return reject(cycle, step, "squash without detection");
                }
                if squashed {
                    return reject(cycle, step, "second squash of the same load");
                }
                squashed = true;
            }
            ProtocolStep::Released => {
                if !granted {
                    return reject(cycle, step, "release without a grant");
                }
                if released {
                    return reject(cycle, step, "double release");
                }
                // TriggerServiced and DrainAndNoMiss both require the
                // trigger itself to be out of flight; only DrainOnly
                // may hand the partition back under a live trigger.
                if release != ReleasePolicy::DrainOnly && !filled && !squashed {
                    return reject(cycle, step, "trigger still in flight at release");
                }
                released = true;
            }
        }
    }
    // An undetected episode may carry *only* orphan fills; anything
    // protocol-shaped (decisions, squashes, releases) needs detection.
    if !detected {
        if let Some(&(cycle, step)) = steps
            .iter()
            .find(|(_, s)| !matches!(s, ProtocolStep::Filled))
        {
            return reject(cycle, step, "episode never detected");
        }
    }
    Ok(())
}

/// Shared sanity bridge: the monitor's deny table must agree with the
/// abstract model's [`deny_sound`] on a free and a held partition.
#[cfg(test)]
mod deny_table_bridge {
    use super::*;
    use crate::model::{deny_sound, Bounds, ModelConfig, Phase, State, Tenure};

    #[test]
    fn monitor_and_model_deny_tables_agree() {
        let free = State::init();
        let mut held = State::init();
        held.phases[0][0] = Phase::Trigger;
        held.tenure = Some(Tenure {
            thread: 0,
            episode: 0,
            draining: false,
        });
        for kind in [
            SchemeKind::Reactive,
            SchemeKind::CountDelayed,
            SchemeKind::Predictive,
        ] {
            let mcfg = ModelConfig {
                kind,
                release: ReleasePolicy::TriggerServiced,
                bounds: Bounds {
                    threads: 2,
                    l2: 2,
                    misses: 2,
                },
            };
            for (state, owner) in [(&free, None), (&held, Some((0usize, 0u64)))] {
                let cfg = TwoLevelConfig::r_rob(16);
                let mon = StreamMonitor {
                    cfg: &cfg,
                    kind,
                    owner,
                    eps: BTreeMap::new(),
                    stats: Conformance::default(),
                };
                for reason in DenyReason::ALL {
                    assert_eq!(
                        mon.deny_reason_ok(reason),
                        deny_sound(&mcfg, state, reason),
                        "{kind:?}/{reason:?}/owner={owner:?}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect(thread: ThreadId, tag: u64) -> TraceEvent {
        TraceEvent::L2MissDetected {
            thread,
            tag,
            pc: 0x100,
            wrong_path: false,
        }
    }

    fn cfg() -> TwoLevelConfig {
        TwoLevelConfig::r_rob(16)
    }

    #[test]
    fn clean_grant_fill_release_stream_conforms() {
        let events = vec![
            (10, detect(0, 1)),
            (10, TraceEvent::L2RobAllocated { thread: 0, tag: 1 }),
            (
                300,
                TraceEvent::L2Fill {
                    thread: 0,
                    tag: 1,
                    wrong_path: false,
                },
            ),
            (
                320,
                TraceEvent::L2RobReleased {
                    thread: 0,
                    trigger_tag: 1,
                },
            ),
        ];
        let stats = check_stream(&cfg(), &events).expect("conforms");
        assert_eq!((stats.grants, stats.releases, stats.episodes), (1, 1, 1));
    }

    #[test]
    fn grant_while_full_is_caught() {
        let events = vec![
            (10, detect(0, 1)),
            (10, TraceEvent::L2RobAllocated { thread: 0, tag: 1 }),
            (20, detect(1, 9)),
            (20, TraceEvent::L2RobAllocated { thread: 1, tag: 9 }),
        ];
        let err = check_stream(&cfg(), &events).unwrap_err();
        assert!(err.detail.contains("grant-while-full"), "{err}");
    }

    #[test]
    fn double_release_is_caught() {
        let events = vec![
            (10, detect(0, 1)),
            (10, TraceEvent::L2RobAllocated { thread: 0, tag: 1 }),
            (
                30,
                TraceEvent::L2RobReleased {
                    thread: 0,
                    trigger_tag: 1,
                },
            ),
            (
                31,
                TraceEvent::L2RobReleased {
                    thread: 0,
                    trigger_tag: 1,
                },
            ),
        ];
        let err = check_stream(&cfg(), &events).unwrap_err();
        assert!(err.detail.contains("double release"), "{err}");
    }

    #[test]
    fn busy_denial_with_free_partition_is_unsound() {
        let events = vec![
            (10, detect(0, 1)),
            (
                10,
                TraceEvent::L2RobDenied {
                    thread: 0,
                    tag: 1,
                    reason: DenyReason::Busy,
                },
            ),
        ];
        let err = check_stream(&cfg(), &events).unwrap_err();
        assert!(err.detail.contains("deny-reason soundness"), "{err}");
    }

    #[test]
    fn cold_predictor_denial_requires_the_predictive_scheme() {
        let events = vec![
            (10, detect(0, 1)),
            (
                10,
                TraceEvent::L2RobDenied {
                    thread: 0,
                    tag: 1,
                    reason: DenyReason::ColdPredictor,
                },
            ),
        ];
        assert!(check_stream(&cfg(), &events).is_err());
        assert!(check_stream(&TwoLevelConfig::p_rob(5), &events).is_ok());
    }

    #[test]
    fn grant_to_wrong_path_miss_is_caught() {
        let events = vec![
            (
                10,
                TraceEvent::L2MissDetected {
                    thread: 0,
                    tag: 1,
                    pc: 0x100,
                    wrong_path: true,
                },
            ),
            (12, TraceEvent::L2RobAllocated { thread: 0, tag: 1 }),
        ];
        let err = check_stream(&cfg(), &events).unwrap_err();
        assert!(err.detail.contains("wrong-path"), "{err}");
    }

    #[test]
    fn same_cycle_squash_race_is_tolerated_but_later_grant_is_not() {
        let squash = TraceEvent::Squash {
            thread: 0,
            first_tag: 1,
        };
        let grant = TraceEvent::L2RobAllocated { thread: 0, tag: 1 };
        // Same cycle: the allocator decided before it saw the squash.
        let racy = vec![(10, detect(0, 1)), (20, squash), (20, grant)];
        assert!(check_stream(&cfg(), &racy).is_ok());
        // Later cycle: the candidate must be gone.
        let stale = vec![(10, detect(0, 1)), (20, squash), (21, grant)];
        let err = check_stream(&cfg(), &stale).unwrap_err();
        assert!(err.detail.contains("squashed back"), "{err}");
    }

    #[test]
    fn occupancy_above_l1_requires_the_partition_even_before_the_grant_event() {
        let c = cfg();
        let l1 = u32::try_from(c.l1_entries).unwrap();
        // The occupancy sample lands in the stream before the same
        // cycle's buffered grant event: the lookahead owner set must
        // absorb it.
        let events = vec![
            (10, detect(0, 1)),
            (
                10,
                TraceEvent::RobOccupancy {
                    thread: 0,
                    occupancy: l1 + 1,
                },
            ),
            (10, TraceEvent::L2RobAllocated { thread: 0, tag: 1 }),
        ];
        assert!(check_stream(&c, &events).is_ok());
        // Without any grant in the cycle it is a conservation breach.
        let events = vec![
            (10, detect(0, 1)),
            (
                10,
                TraceEvent::RobOccupancy {
                    thread: 0,
                    occupancy: l1 + 1,
                },
            ),
        ];
        let err = check_stream(&c, &events).unwrap_err();
        assert!(err.detail.contains("occupancy-conservation"), "{err}");
    }

    #[test]
    fn release_with_live_trigger_needs_drain_only() {
        let events = vec![
            (10, detect(0, 1)),
            (10, TraceEvent::L2RobAllocated { thread: 0, tag: 1 }),
            (
                40,
                TraceEvent::L2RobReleased {
                    thread: 0,
                    trigger_tag: 1,
                },
            ),
        ];
        let err = check_stream(&cfg(), &events).unwrap_err();
        assert!(err.detail.contains("still in flight"), "{err}");
        let mut drain_only = cfg();
        drain_only.release = ReleasePolicy::DrainOnly;
        assert!(check_stream(&drain_only, &events).is_ok());
    }

    #[test]
    fn fill_after_squash_is_caught_across_cycles() {
        let events = vec![
            (10, detect(0, 1)),
            (
                20,
                TraceEvent::Squash {
                    thread: 0,
                    first_tag: 1,
                },
            ),
            (
                30,
                TraceEvent::L2Fill {
                    thread: 0,
                    tag: 1,
                    wrong_path: false,
                },
            ),
        ];
        let err = check_stream(&cfg(), &events).unwrap_err();
        assert!(err.detail.contains("never fill"), "{err}");
    }

    #[test]
    fn orphan_fill_is_legal_noise() {
        // Forwarding resolved the load before its detection event
        // fired: the fill (and its fill-time DoD sample) arrive for a
        // tag that was never detected. Both are accepted.
        let events = vec![
            (10, detect(0, 1)),
            (
                12,
                TraceEvent::L2Fill {
                    thread: 0,
                    tag: 7,
                    wrong_path: false,
                },
            ),
            (
                12,
                TraceEvent::DodSampled {
                    thread: 0,
                    tag: 7,
                    value: 3,
                    source: DodSource::CounterAtFill,
                },
            ),
        ];
        let report = check_stream(&cfg(), &events).expect("orphan fill conforms");
        assert_eq!(report.episodes, 2);
    }

    #[test]
    fn decision_on_an_orphan_fill_is_refused() {
        // The allocator never saw the miss (detection was skipped), so
        // granting its tag the partition cannot happen.
        let events = vec![
            (
                12,
                TraceEvent::L2Fill {
                    thread: 0,
                    tag: 7,
                    wrong_path: false,
                },
            ),
            (14, TraceEvent::L2RobAllocated { thread: 0, tag: 7 }),
        ];
        let err = check_stream(&cfg(), &events).unwrap_err();
        assert!(err.detail.contains("detection was skipped"), "{err}");
    }
}
