//! Slow-tests sweep: larger exploration bounds and the full paper-mix
//! conformance matrix. The default `cargo test` covers the small
//! bounds; this target (gated behind `--features slow-tests`) pushes
//! the state space an order of magnitude further and replays every
//! mix of Table 2 through the live simulator.

#![cfg(not(feature = "seeded-release-bug"))]

use smtsim_check::{explore, replay_mix, Bounds, ModelConfig};
use smtsim_rob2::{ReleasePolicy, SchemeKind};

const KINDS: [SchemeKind; 3] = [
    SchemeKind::Reactive,
    SchemeKind::CountDelayed,
    SchemeKind::Predictive,
];

const RELEASES: [ReleasePolicy; 3] = [
    ReleasePolicy::TriggerServiced,
    ReleasePolicy::DrainAndNoMiss,
    ReleasePolicy::DrainOnly,
];

fn assert_clean(bounds: Bounds) {
    for kind in KINDS {
        for release in RELEASES {
            let report = explore(&ModelConfig {
                kind,
                release,
                bounds,
            })
            .expect("valid bounds");
            assert!(
                report.clean(),
                "{kind:?}/{release:?} at {bounds:?}:\n{}",
                report.violation.unwrap()
            );
        }
    }
}

#[test]
fn three_threads_full_misses_full_l2_is_clean() {
    // ~118k quotient states per scheme × policy.
    assert_clean(Bounds {
        threads: 3,
        l2: 4,
        misses: 3,
    });
}

#[test]
fn four_threads_two_misses_full_l2_is_clean() {
    // ~71k quotient states per scheme × policy; the 4-thread × 3-miss
    // product (~2.3M states, ~30 s release per combo) is exhaustive
    // too — run it by hand via `CHECK_THREADS=4` on the `check` bin.
    assert_clean(Bounds {
        threads: 4,
        l2: 4,
        misses: 2,
    });
}

#[test]
fn every_paper_mix_conforms() {
    for m in 1..=11 {
        let outcomes = replay_mix(m, 42, 1_200, 1_000)
            .unwrap_or_else(|e| panic!("mix {m} failed conformance:\n{e}"));
        assert_eq!(outcomes.len(), 4, "mix {m}: all four schemes replay");
        assert!(
            outcomes.iter().any(|o| o.conformance.grants > 0),
            "mix {m}: no scheme ever granted a transfer — trace too short to check anything"
        );
    }
}
