//! Mutation self-test: does the bounded explorer actually check?
//!
//! Run without features, this file asserts the abstract model is clean
//! at CI bounds for every scheme × release policy. Run with
//! `--features seeded-release-bug`, the model withholds the tenure
//! drain when the granted trigger is squashed, and this file asserts
//! the explorer reports the *minimal* counterexample:
//!
//! ```text
//! detect(t0); grant(t0, e0); squash(t0, from e0)
//! ```
//!
//! (three steps — BFS guarantees nothing shorter reaches a violation),
//! caught by the `drain-consistency` invariant under the paper's
//! default `TriggerServiced` release policy. `cargo xtask check` runs
//! both sides back to back, so a checker that silently stopped
//! checking fails CI.

#[cfg(feature = "seeded-release-bug")]
use smtsim_check::Action;
use smtsim_check::{explore, Bounds, ModelConfig};
use smtsim_rob2::{ReleasePolicy, SchemeKind};

const KINDS: [SchemeKind; 3] = [
    SchemeKind::Reactive,
    SchemeKind::CountDelayed,
    SchemeKind::Predictive,
];

#[cfg(not(feature = "seeded-release-bug"))]
const RELEASES: [ReleasePolicy; 3] = [
    ReleasePolicy::TriggerServiced,
    ReleasePolicy::DrainAndNoMiss,
    ReleasePolicy::DrainOnly,
];

fn cfg(kind: SchemeKind, release: ReleasePolicy) -> ModelConfig {
    ModelConfig {
        kind,
        release,
        bounds: Bounds {
            threads: 2,
            l2: 2,
            misses: 2,
        },
    }
}

#[cfg(not(feature = "seeded-release-bug"))]
#[test]
fn pristine_model_is_clean_everywhere() {
    for kind in KINDS {
        for release in RELEASES {
            let report = explore(&cfg(kind, release)).expect("valid bounds");
            assert!(
                report.clean(),
                "{kind:?}/{release:?} found a violation in the pristine model:\n{}",
                report.violation.unwrap()
            );
        }
    }
}

#[cfg(feature = "seeded-release-bug")]
#[test]
fn seeded_bug_yields_the_minimal_three_step_counterexample() {
    let report =
        explore(&cfg(SchemeKind::Reactive, ReleasePolicy::TriggerServiced)).expect("valid bounds");
    let v = report
        .violation
        .expect("the seeded release bug must be caught");
    assert!(
        v.property.contains("drain-consistency"),
        "wrong property: {}",
        v.property
    );
    assert_eq!(
        v.trace,
        vec![
            Action::Detect { thread: 0 },
            Action::Grant {
                thread: 0,
                episode: 0
            },
            Action::Squash { thread: 0, from: 0 },
        ],
        "BFS must report the depth-3 minimal witness, got: {:?}",
        v.trace
    );
}

#[cfg(feature = "seeded-release-bug")]
#[test]
fn seeded_bug_is_caught_under_every_scheme() {
    // The bug lives in the squash transition, which is scheme-agnostic;
    // only the TriggerServiced drain-consistency invariant observes it.
    for kind in KINDS {
        let report = explore(&cfg(kind, ReleasePolicy::TriggerServiced)).expect("valid bounds");
        assert!(
            !report.clean(),
            "{kind:?}: the explorer missed the seeded release bug"
        );
    }
}

#[cfg(feature = "seeded-release-bug")]
#[test]
fn counterexample_is_deterministic_across_runs() {
    let a = explore(&cfg(
        SchemeKind::CountDelayed,
        ReleasePolicy::TriggerServiced,
    ))
    .expect("valid bounds");
    let b = explore(&cfg(
        SchemeKind::CountDelayed,
        ReleasePolicy::TriggerServiced,
    ))
    .expect("valid bounds");
    let (va, vb) = (a.violation.unwrap(), b.violation.unwrap());
    assert_eq!(va.trace, vb.trace);
    assert_eq!(va.property, vb.property);
    assert_eq!(va.state, vb.state);
    assert_eq!((a.states, a.transitions), (b.states, b.transitions));
}
