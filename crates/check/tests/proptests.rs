//! Property tests bridging the abstract model and the conformance
//! monitor: random walks through the model's own transition relation,
//! rendered as concrete `TraceEvent` streams (with wrong-path and
//! squash-censored noise the allocator never sees), must always pass
//! the monitor — and locally perturbed streams must always fail it.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use smtsim_check::{check_stream, explore, successors, Action, Bounds, ModelConfig, Phase, State};
use smtsim_obs::{Cycle, TraceEvent};
use smtsim_rob2::{ReleasePolicy, SchemeKind, TwoLevelConfig};

const THREADS: usize = 3;
const MISSES: usize = 3;

fn model_config(kind: SchemeKind, release: ReleasePolicy) -> ModelConfig {
    ModelConfig {
        kind,
        release,
        bounds: Bounds {
            threads: THREADS,
            l2: 2,
            misses: MISSES,
        },
    }
}

/// The concrete paper configuration matching a model scheme family.
fn concrete_config(kind: SchemeKind, release: ReleasePolicy) -> TwoLevelConfig {
    let mut cfg = match kind {
        SchemeKind::Reactive => TwoLevelConfig::r_rob(16),
        SchemeKind::CountDelayed => TwoLevelConfig::cdr_rob(15),
        SchemeKind::Predictive => TwoLevelConfig::p_rob(5),
    };
    cfg.release = release;
    cfg
}

/// A wrong-path episode the allocator never sees: pure stream noise.
struct Noise {
    thread: usize,
    tag: u64,
    filled: bool,
    squashed: bool,
}

/// Renders a random walk through the abstract model as a concrete
/// event stream: model actions become protocol events with fresh
/// per-thread tags and (mostly) advancing cycles, interleaved with
/// wrong-path detect/fill noise that squashes can censor.
fn random_model_stream(cfg: &ModelConfig, seed: u64, steps: usize) -> Vec<(Cycle, TraceEvent)> {
    let mut rng = TestRng::with_seed(seed);
    let mut state = State::init();
    let mut cycle: Cycle = 10;
    let mut next_tag = [1u64; THREADS];
    let mut tag_of = [[None::<u64>; MISSES]; THREADS];
    let mut noise: Vec<Noise> = Vec::new();
    let mut events: Vec<(Cycle, TraceEvent)> = Vec::new();

    let emit = |cycle: &mut Cycle, rng: &mut TestRng, ev: TraceEvent, out: &mut Vec<_>| {
        // Mostly advance the clock; sometimes pile events on one cycle
        // to exercise the monitor's intra-cycle ordering rules.
        if rng.below(5) > 0 {
            *cycle += 1 + rng.below(6);
        }
        out.push((*cycle, ev));
    };

    for _ in 0..steps {
        // Wrong-path noise the abstract model has no alphabet for.
        if rng.below(6) == 0 {
            if rng.below(2) == 0 {
                let thread = rng.below(THREADS as u64) as usize;
                let tag = next_tag[thread];
                next_tag[thread] += 1;
                emit(
                    &mut cycle,
                    &mut rng,
                    TraceEvent::L2MissDetected {
                        thread,
                        tag,
                        pc: 0x4000 + tag * 4,
                        wrong_path: true,
                    },
                    &mut events,
                );
                noise.push(Noise {
                    thread,
                    tag,
                    filled: false,
                    squashed: false,
                });
            } else if let Some(n) = noise.iter_mut().find(|n| !n.filled && !n.squashed) {
                n.filled = true;
                let (thread, tag) = (n.thread, n.tag);
                emit(
                    &mut cycle,
                    &mut rng,
                    TraceEvent::L2Fill {
                        thread,
                        tag,
                        wrong_path: true,
                    },
                    &mut events,
                );
            }
        }

        let succ = successors(cfg, &state);
        if succ.is_empty() {
            break;
        }
        let (action, next) = succ[rng.below(succ.len() as u64) as usize];
        match action {
            Action::Detect { thread } => {
                let t = thread as usize;
                let e = (0..MISSES)
                    .find(|&e| tag_of[t][e].is_none())
                    .expect("model had a NotStarted episode");
                let tag = next_tag[t];
                next_tag[t] += 1;
                tag_of[t][e] = Some(tag);
                emit(
                    &mut cycle,
                    &mut rng,
                    TraceEvent::L2MissDetected {
                        thread: t,
                        tag,
                        pc: 0x1000 + tag * 4,
                        wrong_path: false,
                    },
                    &mut events,
                );
            }
            Action::Deny {
                thread,
                episode,
                reason,
            } => {
                let t = thread as usize;
                let tag = tag_of[t][episode as usize].expect("denied episode has a tag");
                emit(
                    &mut cycle,
                    &mut rng,
                    TraceEvent::L2RobDenied {
                        thread: t,
                        tag,
                        reason,
                    },
                    &mut events,
                );
            }
            Action::Grant { thread, episode } => {
                let t = thread as usize;
                let tag = tag_of[t][episode as usize].expect("granted episode has a tag");
                emit(
                    &mut cycle,
                    &mut rng,
                    TraceEvent::L2RobAllocated { thread: t, tag },
                    &mut events,
                );
            }
            Action::Fill { thread, episode } => {
                let t = thread as usize;
                let tag = tag_of[t][episode as usize].expect("filled episode has a tag");
                emit(
                    &mut cycle,
                    &mut rng,
                    TraceEvent::L2Fill {
                        thread: t,
                        tag,
                        wrong_path: false,
                    },
                    &mut events,
                );
            }
            Action::Squash { thread, from } => {
                let t = thread as usize;
                let first_tag = ((from as usize)..MISSES)
                    .filter(|&e| matches!(state.phases[t][e], Phase::Pending | Phase::Trigger))
                    .filter_map(|e| tag_of[t][e])
                    .min()
                    .expect("squash censors a live, detected episode");
                for n in noise.iter_mut().filter(|n| n.thread == t) {
                    if n.tag >= first_tag && !n.filled {
                        n.squashed = true;
                    }
                }
                emit(
                    &mut cycle,
                    &mut rng,
                    TraceEvent::Squash {
                        thread: t,
                        first_tag,
                    },
                    &mut events,
                );
            }
            // Occupancy moves have no event vocabulary of their own.
            Action::Extend { .. } | Action::Drain { .. } => {}
            Action::Release { thread } => {
                let ten = state.tenure.expect("release implies a live tenure");
                let t = thread as usize;
                let trigger_tag =
                    tag_of[t][ten.episode as usize].expect("tenure episode has a tag");
                emit(
                    &mut cycle,
                    &mut rng,
                    TraceEvent::L2RobReleased {
                        thread: t,
                        trigger_tag,
                    },
                    &mut events,
                );
            }
        }
        state = next;
    }
    events
}

fn arb_kind() -> impl Strategy<Value = SchemeKind> {
    prop::sample::select(vec![
        SchemeKind::Reactive,
        SchemeKind::CountDelayed,
        SchemeKind::Predictive,
    ])
}

fn arb_release() -> impl Strategy<Value = ReleasePolicy> {
    prop::sample::select(vec![
        ReleasePolicy::TriggerServiced,
        ReleasePolicy::DrainAndNoMiss,
        ReleasePolicy::DrainOnly,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_model_paths_always_conform(
        kind in arb_kind(),
        release in arb_release(),
        seed in 0u64..1u64 << 48,
        steps in 8usize..90,
    ) {
        let mcfg = model_config(kind, release);
        let events = random_model_stream(&mcfg, seed, steps);
        let ccfg = concrete_config(kind, release);
        match check_stream(&ccfg, &events) {
            Ok(_) => {}
            Err(v) => prop_assert!(
                false,
                "model-generated stream rejected ({kind:?}/{release:?}, seed {seed}): {v}\n\
                 stream: {events:?}"
            ),
        }
    }

    #[test]
    fn perturbed_streams_are_always_rejected(
        kind in arb_kind(),
        release in arb_release(),
        seed in 0u64..1u64 << 48,
        steps in 20usize..90,
    ) {
        let mcfg = model_config(kind, release);
        let events = random_model_stream(&mcfg, seed, steps);
        let ccfg = concrete_config(kind, release);
        prop_assert!(check_stream(&ccfg, &events).is_ok());
        let last_cycle = events.last().map_or(0, |&(c, _)| c);

        // Replay a past grant or release verbatim at the end of the
        // stream: a double release, a re-grant of a finished episode or
        // a grant-while-held — the monitor must reject every variant.
        let dup = events
            .iter()
            .rev()
            .map(|&(_, ev)| ev)
            .find(|ev| matches!(
                ev,
                TraceEvent::L2RobReleased { .. } | TraceEvent::L2RobAllocated { .. }
            ));
        if let Some(ev) = dup {
            let mut mutated = events.clone();
            mutated.push((last_cycle + 1, ev));
            prop_assert!(
                check_stream(&ccfg, &mutated).is_err(),
                "duplicated {ev:?} went unnoticed ({kind:?}/{release:?}, seed {seed})"
            );
        }

        // A fill for a load squashed on an earlier cycle must be
        // rejected (squashed loads never fill).
        let squashed = events.iter().find_map(|&(c, ev)| match ev {
            TraceEvent::Squash { thread, first_tag } => Some((c, thread, first_tag)),
            _ => None,
        });
        if let Some((c, thread, tag)) = squashed {
            // Only valid if the tag was actually detected and never
            // filled before the squash (otherwise the monitor may
            // reject for a different, equally sound reason — still an
            // error, so asserting is_err stays correct).
            let mut mutated = events.clone();
            mutated.retain(|&(ec, ev)| !(ec >= c && ev == TraceEvent::L2Fill {
                thread,
                tag,
                wrong_path: false,
            }));
            mutated.push((last_cycle + 2, TraceEvent::L2Fill {
                thread,
                tag,
                wrong_path: false,
            }));
            let already_filled = events
                .iter()
                .any(|&(ec, ev)| ec < c && ev == TraceEvent::L2Fill {
                    thread,
                    tag,
                    wrong_path: false,
                });
            let detected = events.iter().any(|&(_, ev)| matches!(
                ev,
                TraceEvent::L2MissDetected { thread: t, tag: g, .. } if t == thread && g == tag
            ));
            if detected && !already_filled {
                prop_assert!(
                    check_stream(&ccfg, &mutated).is_err(),
                    "fill-after-squash went unnoticed ({kind:?}/{release:?}, seed {seed})"
                );
            }
        }
    }

    #[test]
    fn exploration_is_deterministic(
        kind in arb_kind(),
        release in arb_release(),
    ) {
        let cfg = ModelConfig {
            kind,
            release,
            bounds: Bounds { threads: 2, l2: 2, misses: 2 },
        };
        let a = explore(&cfg).expect("valid bounds");
        let b = explore(&cfg).expect("valid bounds");
        prop_assert_eq!(a.states, b.states);
        prop_assert_eq!(a.transitions, b.transitions);
        prop_assert_eq!(a.depth, b.depth);
        prop_assert_eq!(a.violation.is_none(), b.violation.is_none());
    }
}
