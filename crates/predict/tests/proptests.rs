//! Property tests for the predictors: table containment, history
//! masking, and training semantics under arbitrary stimulus.

use proptest::prelude::*;
use smtsim_predict::{
    Btb, DodPredictor, Gshare, LastValueDod, LoadHitPredictor, PathDod, ThresholdBitDod,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gshare_history_stays_within_bits(bits in 1u32..16, updates in proptest::collection::vec(any::<bool>(), 0..100)) {
        let mut g = Gshare::new(1024, bits);
        for (i, &taken) in updates.iter().enumerate() {
            let t = i % 4;
            g.spec_update(t, taken);
            prop_assert!(g.history(t) < (1u16 << bits));
        }
    }

    #[test]
    fn gshare_restore_is_exact(bits in 2u32..12, pre in any::<u16>(), actual in any::<bool>()) {
        let mut g = Gshare::new(512, bits);
        let mask = (1u16 << bits) - 1;
        g.set_history(0, pre);
        let snapshot = g.history(0);
        // Arbitrary speculative pollution...
        for i in 0..17 {
            g.spec_update(0, i % 3 == 0);
        }
        // ...is fully repaired by restore.
        g.restore(0, snapshot, actual);
        prop_assert_eq!(g.history(0), ((snapshot << 1) | actual as u16) & mask);
    }

    #[test]
    fn gshare_training_saturates(pc in 0u64..1 << 30, n in 1usize..40) {
        let mut g = Gshare::new(2048, 10);
        for _ in 0..n {
            let (_, h) = g.predict(0, pc);
            g.train(pc, h, true);
        }
        let (pred, _) = g.predict(0, pc);
        prop_assert!(pred, "after consistent taken training, predict taken");
    }

    #[test]
    fn btb_remembers_last_target(pcs in proptest::collection::vec((0u64..1 << 20, 0u64..1 << 20), 1..64)) {
        let mut b = Btb::new(2048, 2);
        for &(pc, tgt) in &pcs {
            b.update(pc, tgt);
            prop_assert_eq!(b.predict(pc), Some(tgt), "just-updated entry must hit");
        }
    }

    #[test]
    fn last_value_round_trips_any_count(pc in 0u64..1 << 40, count in 0u32..256) {
        let mut p = LastValueDod::new(2048);
        p.update(pc, 0, count);
        prop_assert_eq!(p.lookup(pc & !3 | (pc & 3)), p.lookup(pc)); // stable
        prop_assert_eq!(p.lookup(pc), Some(count));
        for t in [1u32, 4, 16, 64, 255] {
            prop_assert_eq!(p.predict_below(pc, 0, t), Some(count < t));
        }
    }

    #[test]
    fn threshold_bit_agrees_with_direct_compare(thr in 1u32..32, counts in proptest::collection::vec((0u64..1 << 16, 0u32..64), 1..64)) {
        let mut p = ThresholdBitDod::new(4096, thr);
        for &(pcraw, c) in &counts {
            let pc = pcraw << 2;
            p.update(pc, 0, c);
            prop_assert_eq!(p.predict_below(pc, 0, thr), Some(c < thr));
            prop_assert_eq!(p.predict_below(pc, 0, thr + 1), None, "foreign threshold refused");
        }
    }

    #[test]
    fn path_dod_separates_histories(pc in 0u64..1 << 20, h1 in 0u16..1024, h2 in 0u16..1024, c1 in 0u32..32, c2 in 0u32..32) {
        prop_assume!(h1 != h2);
        let mut p = PathDod::new(4096);
        let pc = pc << 2;
        p.update(pc, h1, c1);
        p.update(pc, h2, c2);
        // Index collisions are possible (xor-indexed table); when the two
        // histories map to different slots both predictions must be
        // faithful to their own training.
        if (pc >> 2 ^ h1 as u64) & 4095 != (pc >> 2 ^ h2 as u64) & 4095 {
            prop_assert_eq!(p.predict_below(pc, h1, 16), Some(c1 < 16));
            prop_assert_eq!(p.predict_below(pc, h2, 16), Some(c2 < 16));
        }
    }

    #[test]
    fn loadhit_accuracy_bounded(outcomes in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut p = LoadHitPredictor::icpp08();
        for (i, &hit) in outcomes.iter().enumerate() {
            p.predict(0, (i as u64 % 37) << 2);
            p.update(0, (i as u64 % 37) << 2, hit);
        }
        let acc = p.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert_eq!(p.updates, outcomes.len() as u64);
    }

    #[test]
    fn constant_behaviour_is_learned_perfectly(hit in any::<bool>(), n in 32usize..128) {
        let mut p = LoadHitPredictor::new(1024);
        let pc = 0x4000;
        for _ in 0..n {
            p.update(0, pc, hit);
        }
        prop_assert_eq!(p.predict(0, pc), hit);
    }
}
