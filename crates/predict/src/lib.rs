//! # smtsim-predict
//!
//! Hardware predictors for the two-level-ROB reproduction (Loew &
//! Ponomarev, ICPP 2008): the Table 1 front-end predictors (gshare,
//! BTB, load-hit) and the paper's §4.2 Degree-of-Dependence predictors
//! (last-value, threshold-bit, and path-qualified designs).

pub mod btb;
pub mod dod;
pub mod gshare;
pub mod loadhit;

pub use btb::Btb;
pub use dod::{DodPredictor, LastValueDod, PathDod, ThresholdBitDod};
pub use gshare::Gshare;
pub use loadhit::LoadHitPredictor;
