//! Load-hit predictor (Table 1: "2-bit bimodal: 1k entries, 8-bit
//! global history per thread").
//!
//! Predicts whether a load will hit the L1 D-cache. The scheduler uses
//! it for speculative wakeup of load dependents: on a predicted hit,
//! dependents are woken assuming the L1 hit latency; if the load
//! actually misses, speculatively issued dependents are replayed.

const MAX_THREADS: usize = 8;

/// Load L1-hit predictor: 2-bit counters indexed by PC xor a per-thread
/// history of recent load hit/miss outcomes.
#[derive(Clone, Debug)]
pub struct LoadHitPredictor {
    table: Vec<u8>,
    hist: [u8; MAX_THREADS],
    index_mask: u64,
    /// Lookups performed.
    pub lookups: u64,
    /// Training updates where the prediction was correct.
    pub correct: u64,
    /// Training updates total.
    pub updates: u64,
}

impl LoadHitPredictor {
    /// Creates a predictor with `entries` counters (power of two).
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        LoadHitPredictor {
            // Bias towards "hit": most loads hit.
            table: vec![3u8; entries],
            hist: [0; MAX_THREADS],
            index_mask: entries as u64 - 1,
            lookups: 0,
            correct: 0,
            updates: 0,
        }
    }

    /// The paper's Table 1 configuration (1k entries, 8-bit history).
    pub fn icpp08() -> Self {
        LoadHitPredictor::new(1024)
    }

    #[inline]
    fn index(&self, thread: usize, pc: u64) -> usize {
        (((pc >> 2) ^ self.hist[thread] as u64) & self.index_mask) as usize
    }

    /// Predicts whether the load at `pc` will hit the L1.
    pub fn predict(&mut self, thread: usize, pc: u64) -> bool {
        self.lookups += 1;
        self.table[self.index(thread, pc)] >= 2
    }

    /// Trains with the actual outcome and shifts it into the thread's
    /// history.
    pub fn update(&mut self, thread: usize, pc: u64, hit: bool) {
        self.updates += 1;
        let idx = self.index(thread, pc);
        let c = &mut self.table[idx];
        if (*c >= 2) == hit {
            self.correct += 1;
        }
        if hit {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.hist[thread] = self.hist[thread] << 1 | hit as u8;
    }

    /// Prediction accuracy over trained loads, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.correct as f64 / self.updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predicts_hit() {
        let mut p = LoadHitPredictor::icpp08();
        assert!(p.predict(0, 0x1000));
    }

    #[test]
    fn learns_persistent_misser() {
        let mut p = LoadHitPredictor::icpp08();
        let pc = 0x2000;
        for _ in 0..300 {
            p.update(0, pc, false);
        }
        // With history mixing the index moves around, but a persistent
        // misser drives many counters down; spot-check post-training.
        let mut misses_predicted = 0;
        for _ in 0..16 {
            if !p.predict(0, pc) {
                misses_predicted += 1;
            }
            p.update(0, pc, false);
        }
        assert!(misses_predicted >= 12, "{misses_predicted}/16");
    }

    #[test]
    fn threads_do_not_share_history() {
        let mut p = LoadHitPredictor::icpp08();
        for _ in 0..8 {
            p.update(0, 0x100, false);
        }
        assert_eq!(p.hist[0], 0);
        assert_eq!(p.hist[1], 0);
        p.update(1, 0x100, true);
        assert_eq!(p.hist[1], 1);
    }

    #[test]
    fn accuracy_tracking() {
        let mut p = LoadHitPredictor::icpp08();
        p.update(0, 0x10, true); // predicted hit, was hit
        assert!((p.accuracy() - 1.0).abs() < 1e-12);
    }
}
