//! Degree-of-Dependence (DoD) predictors — §4.2 of the paper.
//!
//! The predictive second-level-ROB scheme (2-Level P-ROB) needs, at L2
//! miss *detection* time, an estimate of how many in-flight instructions
//! depend on the missing load. The paper proposes three designs, all
//! implemented here behind the [`DodPredictor`] trait:
//!
//! 1. **Last-value** ([`LastValueDod`]): a PC-indexed table holding the
//!    dependent count observed at the previous dynamic instance of the
//!    same static load.
//! 2. **Threshold-bit** ([`ThresholdBitDod`]): stores only one bit per
//!    entry — whether the count was below the (fixed) threshold.
//! 3. **Path-qualified** ([`PathDod`]): gshare-style, indexed by PC xor
//!    the thread's branch history, so different control-flow paths after
//!    the load get separate predictions ("in this case ... predictions
//!    will always be accurate").

/// Interface of a DoD predictor.
///
/// `hist` is the thread's global branch history at the load (only the
/// path-qualified design uses it). Predictions return `None` when the
/// predictor has no information for the load (cold entry / tag
/// mismatch); the allocation scheme then falls back to *not* allocating
/// (conservative) and lets the verification count train the predictor.
pub trait DodPredictor {
    /// Predicts whether the load's dependent count is below `threshold`.
    fn predict_below(&mut self, pc: u64, hist: u16, threshold: u32) -> Option<bool>;
    /// Trains with the verified dependent count.
    fn update(&mut self, pc: u64, hist: u16, count: u32);
    /// `(lookups, hits)` — how often prediction information existed.
    fn coverage(&self) -> (u64, u64);
}

#[derive(Clone, Copy, Debug, Default)]
struct TaggedCount {
    tag: u32,
    count: u32,
    valid: bool,
}

/// Last-value DoD predictor: direct-mapped, partially tagged,
/// PC-indexed table storing the last observed dependent count.
#[derive(Clone, Debug)]
pub struct LastValueDod {
    table: Vec<TaggedCount>,
    index_mask: u64,
    lookups: u64,
    hits: u64,
}

impl LastValueDod {
    /// Creates a table of `entries` (power of two).
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        LastValueDod {
            table: vec![TaggedCount::default(); entries],
            index_mask: entries as u64 - 1,
            lookups: 0,
            hits: 0,
        }
    }

    /// Default sizing used in the evaluation: 2k entries.
    pub fn icpp08() -> Self {
        LastValueDod::new(2048)
    }

    #[inline]
    fn slot(&self, pc: u64) -> (usize, u32) {
        let idx = ((pc >> 2) & self.index_mask) as usize;
        let tag = ((pc >> 2) >> self.index_mask.count_ones()) as u32;
        (idx, tag)
    }

    /// Raw lookup of the last observed count for `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u32> {
        self.lookups += 1;
        let (idx, tag) = self.slot(pc);
        let e = self.table[idx];
        if e.valid && e.tag == tag {
            self.hits += 1;
            Some(e.count)
        } else {
            None
        }
    }

    /// Stores the observed count for `pc`.
    pub fn store(&mut self, pc: u64, count: u32) {
        let (idx, tag) = self.slot(pc);
        self.table[idx] = TaggedCount {
            tag,
            count,
            valid: true,
        };
    }
}

impl DodPredictor for LastValueDod {
    fn predict_below(&mut self, pc: u64, _hist: u16, threshold: u32) -> Option<bool> {
        self.lookup(pc).map(|c| c < threshold)
    }

    fn update(&mut self, pc: u64, _hist: u16, count: u32) {
        self.store(pc, count);
    }

    fn coverage(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

/// Threshold-bit DoD predictor: one valid bit plus one below-threshold
/// bit per entry — the minimal §4.2 design ("prediction information can
/// amount to just a single bit").
///
/// The threshold is fixed at construction; predictions for a different
/// threshold are refused (`None`), mirroring the hardware constraint.
#[derive(Clone, Debug)]
pub struct ThresholdBitDod {
    /// 2 bits per entry packed as bytes: bit0 = valid, bit1 = below.
    table: Vec<u8>,
    index_mask: u64,
    threshold: u32,
    lookups: u64,
    hits: u64,
}

impl ThresholdBitDod {
    /// Creates a table of `entries` (power of two) for a fixed
    /// `threshold`.
    pub fn new(entries: usize, threshold: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        ThresholdBitDod {
            table: vec![0u8; entries],
            index_mask: entries as u64 - 1,
            threshold,
            lookups: 0,
            hits: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }

    /// The fixed threshold this predictor was built for.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

impl DodPredictor for ThresholdBitDod {
    fn predict_below(&mut self, pc: u64, _hist: u16, threshold: u32) -> Option<bool> {
        self.lookups += 1;
        if threshold != self.threshold {
            return None;
        }
        let e = self.table[self.index(pc)];
        if e & 1 == 1 {
            self.hits += 1;
            Some(e & 2 != 0)
        } else {
            None
        }
    }

    fn update(&mut self, pc: u64, _hist: u16, count: u32) {
        let below = (count < self.threshold) as u8;
        let idx = self.index(pc);
        self.table[idx] = 1 | below << 1;
    }

    fn coverage(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

/// Path-qualified (gshare-style) DoD predictor: last-value table indexed
/// by PC xor branch history.
#[derive(Clone, Debug)]
pub struct PathDod {
    table: Vec<TaggedCount>,
    index_mask: u64,
    lookups: u64,
    hits: u64,
}

impl PathDod {
    /// Creates a table of `entries` (power of two).
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        PathDod {
            table: vec![TaggedCount::default(); entries],
            index_mask: entries as u64 - 1,
            lookups: 0,
            hits: 0,
        }
    }

    #[inline]
    fn slot(&self, pc: u64, hist: u16) -> (usize, u32) {
        let key = (pc >> 2) ^ hist as u64;
        let idx = (key & self.index_mask) as usize;
        // Tag on the PC (not the xor) to limit destructive aliasing.
        let tag = ((pc >> 2) >> self.index_mask.count_ones()) as u32;
        (idx, tag)
    }
}

impl DodPredictor for PathDod {
    fn predict_below(&mut self, pc: u64, hist: u16, threshold: u32) -> Option<bool> {
        self.lookups += 1;
        let (idx, tag) = self.slot(pc, hist);
        let e = self.table[idx];
        if e.valid && e.tag == tag {
            self.hits += 1;
            Some(e.count < threshold)
        } else {
            None
        }
    }

    fn update(&mut self, pc: u64, hist: u16, count: u32) {
        let (idx, tag) = self.slot(pc, hist);
        self.table[idx] = TaggedCount {
            tag,
            count,
            valid: true,
        };
    }

    fn coverage(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_round_trips() {
        let mut p = LastValueDod::icpp08();
        assert_eq!(p.lookup(0x100), None);
        p.store(0x100, 7);
        assert_eq!(p.lookup(0x100), Some(7));
        assert_eq!(p.predict_below(0x100, 0, 8), Some(true));
        assert_eq!(p.predict_below(0x100, 0, 7), Some(false));
    }

    #[test]
    fn last_value_tag_rejects_aliases() {
        let mut p = LastValueDod::new(16);
        p.store(0x100, 3);
        // Same index (idx bits = (pc>>2) & 15), different tag.
        let alias = 0x100 + (16 << 2) * 7;
        assert_eq!(p.lookup(alias), None);
    }

    #[test]
    fn last_value_overwrites() {
        let mut p = LastValueDod::icpp08();
        p.store(0x40, 2);
        p.store(0x40, 9);
        assert_eq!(p.lookup(0x40), Some(9));
    }

    #[test]
    fn threshold_bit_basic() {
        let mut p = ThresholdBitDod::new(1024, 16);
        assert_eq!(p.predict_below(0x200, 0, 16), None);
        p.update(0x200, 0, 5);
        assert_eq!(p.predict_below(0x200, 0, 16), Some(true));
        p.update(0x200, 0, 20);
        assert_eq!(p.predict_below(0x200, 0, 16), Some(false));
    }

    #[test]
    fn threshold_bit_refuses_other_thresholds() {
        let mut p = ThresholdBitDod::new(1024, 16);
        p.update(0x200, 0, 5);
        assert_eq!(p.predict_below(0x200, 0, 8), None);
        assert_eq!(p.threshold(), 16);
    }

    #[test]
    fn path_qualified_separates_paths() {
        let mut p = PathDod::new(4096);
        let pc = 0x3000;
        p.update(pc, 0b1010, 2);
        p.update(pc, 0b0101, 12);
        assert_eq!(p.predict_below(pc, 0b1010, 8), Some(true));
        assert_eq!(p.predict_below(pc, 0b0101, 8), Some(false));
    }

    #[test]
    fn coverage_counts() {
        let mut p = LastValueDod::icpp08();
        p.predict_below(0x10, 0, 4);
        p.update(0x10, 0, 1);
        p.predict_below(0x10, 0, 4);
        let (lookups, hits) = p.coverage();
        assert_eq!(lookups, 2);
        assert_eq!(hits, 1);
    }

    #[test]
    fn last_value_alias_store_evicts_prior_entry() {
        let mut p = LastValueDod::new(16);
        let pc = 0x100;
        let alias = pc + (16 << 2) * 7; // same index, different tag
        p.store(pc, 3);
        p.store(alias, 9);
        // Direct-mapped: the alias displaced the original static load,
        // which must now read as cold rather than return the alias's
        // count.
        assert_eq!(p.lookup(pc), None);
        assert_eq!(p.lookup(alias), Some(9));
        assert_eq!(p.predict_below(pc, 0, 31), None);
    }

    #[test]
    fn cold_entries_predict_none_across_designs() {
        let mut predictors: Vec<Box<dyn DodPredictor>> = vec![
            Box::new(LastValueDod::new(64)),
            Box::new(ThresholdBitDod::new(64, 16)),
            Box::new(PathDod::new(64)),
        ];
        for p in &mut predictors {
            assert_eq!(p.predict_below(0x700, 5, 16), None, "cold entry");
            let (lookups, hits) = p.coverage();
            assert_eq!((lookups, hits), (1, 0), "cold lookup counted, no hit");
        }
    }

    #[test]
    fn threshold_bit_retrains_and_respects_constructor_threshold() {
        let mut p = ThresholdBitDod::new(64, 16);
        let pc = 0x200;
        p.update(pc, 0, 20);
        assert_eq!(p.predict_below(pc, 0, 16), Some(false));
        // A query at a foreign threshold is refused without disturbing
        // the trained bit.
        assert_eq!(p.predict_below(pc, 0, 8), None);
        assert_eq!(p.predict_below(pc, 0, 16), Some(false));
        // Retraining with a small count flips the stored bit.
        p.update(pc, 0, 3);
        assert_eq!(p.predict_below(pc, 0, 16), Some(true));
        // Changing thresholds means building a new predictor: the same
        // count classifies differently against a tighter threshold.
        let mut q = ThresholdBitDod::new(64, 4);
        q.update(pc, 0, 5);
        assert_eq!(q.predict_below(pc, 0, 4), Some(false));
        assert_eq!(q.predict_below(pc, 0, 16), None, "foreign threshold");
    }

    #[test]
    fn path_qualified_tag_rejects_cross_pc_aliases() {
        let mut p = PathDod::new(16);
        // (0x100>>2) & 15 == (0x200>>2) & 15 == 0, but the PC tags
        // differ: the second update evicts the first.
        p.update(0x100, 0, 2);
        p.update(0x200, 0, 2);
        assert_eq!(p.predict_below(0x100, 0, 8), None, "evicted by alias");
        assert_eq!(p.predict_below(0x200, 0, 8), Some(true));
        // Same PC, two histories that xor into the same slot: the tag
        // matches, so the entry is shared and the last training wins.
        p.update(0x100, 0, 2);
        p.update(0x100, 16, 12);
        assert_eq!(p.predict_below(0x100, 0, 8), Some(false));
    }

    #[test]
    fn trait_objects_work() {
        let mut predictors: Vec<Box<dyn DodPredictor>> = vec![
            Box::new(LastValueDod::new(64)),
            Box::new(ThresholdBitDod::new(64, 16)),
            Box::new(PathDod::new(64)),
        ];
        for p in &mut predictors {
            p.update(0x500, 3, 4);
            assert_eq!(p.predict_below(0x500, 3, 16), Some(true));
        }
    }
}
