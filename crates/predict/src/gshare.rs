//! gshare conditional branch predictor (Table 1: 2K-entry, 2-bit
//! counters, 10-bit global history per thread, shared table).

/// Maximum hardware threads sharing the predictor.
const MAX_THREADS: usize = 8;

/// A gshare predictor with per-thread global history and a shared
/// pattern table.
///
/// History is updated *speculatively* at prediction time (standard
/// practice); on a misprediction the pipeline restores the history it
/// saved with the branch and shifts in the actual outcome via
/// [`Gshare::restore`].
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    hist: [u16; MAX_THREADS],
    hist_bits: u32,
    index_mask: u64,
    /// Predictions made.
    pub lookups: u64,
    /// Training updates that found the prediction correct.
    pub correct: u64,
    /// Training updates total.
    pub updates: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` 2-bit counters (power of two)
    /// and `hist_bits` of global history per thread.
    pub fn new(entries: usize, hist_bits: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        assert!(hist_bits <= 16);
        Gshare {
            // Initialize to weakly taken: loops predict well from cold.
            table: vec![2u8; entries],
            hist: [0; MAX_THREADS],
            hist_bits,
            index_mask: entries as u64 - 1,
            lookups: 0,
            correct: 0,
            updates: 0,
        }
    }

    /// The paper's Table 1 configuration.
    pub fn icpp08() -> Self {
        Gshare::new(2048, 10)
    }

    #[inline]
    fn index(&self, pc: u64, hist: u16) -> usize {
        (((pc >> 2) ^ hist as u64) & self.index_mask) as usize
    }

    /// Current global history of `thread` (exposed so the Degree-of-
    /// Dependence path-qualified predictor can share it, as §4.2
    /// suggests).
    pub fn history(&self, thread: usize) -> u16 {
        self.hist[thread]
    }

    /// Predicts the branch at `pc` for `thread`. Returns the direction
    /// and the history snapshot to carry with the branch for training
    /// and recovery.
    pub fn predict(&mut self, thread: usize, pc: u64) -> (bool, u16) {
        self.lookups += 1;
        let hist = self.hist[thread];
        let taken = self.table[self.index(pc, hist)] >= 2;
        (taken, hist)
    }

    /// Speculatively shifts `predicted` into the thread's history
    /// (called at fetch, right after [`Gshare::predict`]).
    pub fn spec_update(&mut self, thread: usize, predicted: bool) {
        let mask = (1u32 << self.hist_bits) - 1;
        self.hist[thread] = (((self.hist[thread] as u32) << 1 | predicted as u32) & mask) as u16;
    }

    /// Trains the counter the prediction was made with.
    pub fn train(&mut self, pc: u64, hist: u16, taken: bool) {
        self.updates += 1;
        let idx = self.index(pc, hist);
        let c = &mut self.table[idx];
        let predicted = *c >= 2;
        if predicted == taken {
            self.correct += 1;
        }
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Repairs the thread's history after squashing a mispredicted
    /// branch: restores the pre-branch snapshot and shifts in the
    /// actual outcome.
    pub fn restore(&mut self, thread: usize, hist_at_branch: u16, actual: bool) {
        let mask = (1u32 << self.hist_bits) - 1;
        self.hist[thread] = (((hist_at_branch as u32) << 1 | actual as u32) & mask) as u16;
    }

    /// Overwrites the thread's history with a saved snapshot (used when
    /// squashing *correct-path* instructions, e.g. under the FLUSH
    /// policy, where the snapshot of the oldest squashed branch is the
    /// right state to refetch from).
    pub fn set_history(&mut self, thread: usize, hist: u16) {
        let mask = ((1u32 << self.hist_bits) - 1) as u16;
        self.hist[thread] = hist & mask;
    }

    /// Prediction accuracy over trained branches, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.correct as f64 / self.updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut g = Gshare::icpp08();
        let pc = 0x4000;
        for _ in 0..8 {
            let (p, h) = g.predict(0, pc);
            g.spec_update(0, p);
            g.train(pc, h, true);
        }
        let (p, _) = g.predict(0, pc);
        assert!(p);
    }

    #[test]
    fn learns_alternating_pattern_with_history() {
        // T,N,T,N ... is perfectly predictable with 1+ history bits.
        let mut g = Gshare::new(1 << 12, 10);
        let pc = 0x1234_5678;
        let mut correct_tail = 0;
        for i in 0..600 {
            let taken = i % 2 == 0;
            let (p, h) = g.predict(0, pc);
            g.spec_update(0, p);
            // Simulate immediate resolution: repair history if wrong.
            if p != taken {
                g.restore(0, h, taken);
            }
            g.train(pc, h, taken);
            if i >= 500 && p == taken {
                correct_tail += 1;
            }
        }
        assert!(correct_tail >= 95, "tail accuracy {correct_tail}/100");
    }

    #[test]
    fn threads_have_separate_history() {
        let mut g = Gshare::icpp08();
        g.spec_update(0, true);
        g.spec_update(0, true);
        assert_eq!(g.history(0), 0b11);
        assert_eq!(g.history(1), 0);
    }

    #[test]
    fn history_wraps_at_hist_bits() {
        let mut g = Gshare::new(2048, 4);
        for _ in 0..16 {
            g.spec_update(0, true);
        }
        assert_eq!(g.history(0), 0xF);
    }

    #[test]
    fn restore_rewrites_history() {
        let mut g = Gshare::icpp08();
        g.spec_update(0, true); // hist = 1
        let (_, h) = g.predict(0, 0x100);
        g.spec_update(0, true); // speculative, wrong
        g.spec_update(0, false); // deeper speculation, all squashed
        g.restore(0, h, false);
        assert_eq!(g.history(0), 0b10);
    }

    #[test]
    fn accuracy_accounting() {
        let mut g = Gshare::icpp08();
        let (_, h) = g.predict(0, 0x10);
        g.train(0x10, h, true); // init weakly-taken ⇒ correct
        assert!((g.accuracy() - 1.0).abs() < 1e-12);
        let (_, h) = g.predict(0, 0x10);
        g.train(0x10, h, false); // now predicts taken ⇒ wrong
        assert!((g.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn non_pow2_rejected() {
        let _ = Gshare::new(1000, 10);
    }
}
