//! Branch target buffer (Table 1: 2048-entry, 2-way set-associative).

/// One BTB way.
#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    target: u64,
    valid: bool,
    stamp: u64,
}

/// A set-associative branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    ways: Vec<Way>,
    assoc: usize,
    set_mask: u64,
    clock: u64,
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that found a target.
    pub hits: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `assoc` ways.
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(assoc > 0 && entries.is_multiple_of(assoc));
        let sets = entries / assoc;
        assert!(sets.is_power_of_two());
        Btb {
            ways: vec![Way::default(); entries],
            assoc,
            set_mask: sets as u64 - 1,
            clock: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// The paper's Table 1 configuration.
    pub fn icpp08() -> Self {
        Btb::new(2048, 2)
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        (((pc >> 2) & self.set_mask) as usize) * self.assoc
    }

    #[inline]
    fn tag_of(&self, pc: u64) -> u64 {
        (pc >> 2) >> self.set_mask.count_ones()
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> Option<u64> {
        self.lookups += 1;
        self.clock += 1;
        let base = self.set_of(pc);
        let tag = self.tag_of(pc);
        for w in &mut self.ways[base..base + self.assoc] {
            if w.valid && w.tag == tag {
                w.stamp = self.clock;
                self.hits += 1;
                return Some(w.target);
            }
        }
        None
    }

    /// Installs/updates the target of a taken branch.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.clock += 1;
        let base = self.set_of(pc);
        let tag = self.tag_of(pc);
        let clock = self.clock;
        // Update in place if present.
        for w in &mut self.ways[base..base + self.assoc] {
            if w.valid && w.tag == tag {
                w.target = target;
                w.stamp = clock;
                return;
            }
        }
        // Fill a free way or evict LRU.
        let idx = (base..base + self.assoc)
            .find(|&i| !self.ways[i].valid)
            .unwrap_or_else(|| {
                (base..base + self.assoc)
                    .min_by_key(|&i| self.ways[i].stamp)
                    .expect("assoc > 0")
            });
        self.ways[idx] = Way {
            tag,
            target,
            valid: true,
            stamp: clock,
        };
    }

    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_update_then_hit() {
        let mut b = Btb::icpp08();
        assert_eq!(b.predict(0x100), None);
        b.update(0x100, 0x400);
        assert_eq!(b.predict(0x100), Some(0x400));
    }

    #[test]
    fn update_in_place_changes_target() {
        let mut b = Btb::icpp08();
        b.update(0x100, 0x400);
        b.update(0x100, 0x800);
        assert_eq!(b.predict(0x100), Some(0x800));
    }

    #[test]
    fn lru_within_set() {
        let mut b = Btb::new(4, 2); // 2 sets
        let sets = 2u64;
        // Three PCs mapping to set 0: pc>>2 multiples of 2.
        let (p1, p2, p3) = (0x0, (4 * sets), (8 * sets));
        b.update(p1, 0xA);
        b.update(p2, 0xB);
        assert_eq!(b.predict(p1), Some(0xA)); // p1 MRU
        b.update(p3, 0xC); // evicts p2
        assert_eq!(b.predict(p2), None);
        assert_eq!(b.predict(p1), Some(0xA));
        assert_eq!(b.predict(p3), Some(0xC));
    }

    #[test]
    fn distinct_sets_no_conflict() {
        let mut b = Btb::new(4, 2);
        b.update(0x0, 0x1);
        b.update(0x4, 0x2); // different set (pc>>2 = 1)
        assert_eq!(b.predict(0x0), Some(0x1));
        assert_eq!(b.predict(0x4), Some(0x2));
    }

    #[test]
    fn hit_ratio_accounting() {
        let mut b = Btb::icpp08();
        b.predict(0x10);
        b.update(0x10, 0x20);
        b.predict(0x10);
        assert!((b.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_rejected() {
        let _ = Btb::new(6, 4);
    }
}
