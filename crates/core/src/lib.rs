//! # smtsim-rob2 — Two-Level Reorder Buffers for SMT processors
//!
//! A from-scratch Rust reproduction of *"Two-Level Reorder Buffers:
//! Accelerating Memory-Bound Applications on SMT Architectures"*
//! (Jason Loew and Dmitry Ponomarev, ICPP 2008).
//!
//! This crate contains the paper's contribution and its evaluation
//! harness:
//!
//! * [`TwoLevelRob`] — the two-level ROB allocator with all four
//!   schemes (reactive R-ROB, relaxed R-ROB, count-delayed CDR-ROB and
//!   predictive P-ROB), including the low-complexity
//!   Degree-of-Dependence counter and the §4.2 DoD predictors;
//! * [`metrics`] — weighted IPC and the Fair Throughput (harmonic-mean)
//!   metric the paper reports;
//! * [`Lab`] / [`figures`] — the experiment driver regenerating every
//!   figure and table of §5 over the Table 2 benchmark mixes;
//! * [`report`] — text rendering in the paper's row/series layout.
//!
//! The substrates live in sibling crates: the cycle-level SMT pipeline
//! (`smtsim-pipeline`), memory hierarchy (`smtsim-mem`), predictors
//! (`smtsim-predict`) and synthetic SPEC-2000-like workloads
//! (`smtsim-workload`).
//!
//! ```
//! use smtsim_rob2::{Lab, RobConfig, TwoLevelConfig};
//!
//! let mut lab = Lab::new(42).with_budgets(5_000, 5_000);
//! let base = lab.run_mix(1, RobConfig::Baseline(32));
//! let two = lab.run_mix(1, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)));
//! println!("FT {:.3} -> {:.3}", base.ft, two.ft);
//! ```

pub mod experiment;
pub mod figures;
pub mod journal;
pub mod metrics;
pub mod report;
pub mod spec;
pub mod twolevel;

pub use experiment::{
    CellOutcome, Lab, MixRun, NormTable, RobConfig, SweepCell, SweepHealth, SweepReport,
    TracedMixRun,
};
pub use figures::{AccuracyData, AccuracyRow, FigureData, HistogramData, Series, ALL_MIXES};
pub use journal::{Journal, JournalEntry, JournalError};
pub use metrics::{fair_throughput, harmonic_mean, improvement, mean, weighted_ipc};
pub use spec::{ExperimentSpec, SpecError, SpecKind, SpecKnobs, SpecVariant};
pub use twolevel::{
    DodPredictorKind, ReleasePolicy, Scheme, SchemeKind, TenureView, TwoLevelConfig, TwoLevelRob,
    TwoLevelStats,
};
