//! Text rendering of figures and tables, in the row/series layout the
//! paper's charts use.

use crate::figures::{AccuracyData, FigureData, HistogramData};
use smtsim_pipeline::MachineConfig;
use smtsim_workload::paper_mixes;
use std::fmt::Write;

/// Renders an FT bar-chart figure as an aligned text table: one row per
/// mix plus the Average row, one column per configuration.
pub fn render_figure(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", fig.title);
    let width = fig
        .series
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(8)
        .max(8);
    let _ = write!(out, "{:<10}", "");
    for s in &fig.series {
        let _ = write!(out, " {:>w$}", s.label, w = width);
    }
    let _ = writeln!(out);
    let nrows = fig.series.first().map_or(0, |s| s.points.len());
    let cell = |v: Option<f64>| match v {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "n/a".to_string(),
    };
    for row in 0..nrows {
        let _ = write!(out, "{:<10}", fig.series[0].points[row].0);
        for s in &fig.series {
            let _ = write!(out, " {:>w$}", cell(s.points[row].1), w = width);
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<10}", "Average");
    for s in &fig.series {
        let _ = write!(out, " {:>w$}", cell(Some(s.average)), w = width);
    }
    let _ = writeln!(out);
    // Relative improvements over the first series (the paper reports
    // them against Baseline_32). `n/a` for series whose average is
    // poisoned by failed cells — and for a starved (zero) baseline,
    // which used to render as a misleading percentage.
    if fig.series.len() > 1 {
        let base = fig.series[0].average;
        for s in &fig.series[1..] {
            match crate::metrics::improvement(s.average, base) {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "{} vs {}: {:+.2}%",
                        s.label,
                        fig.series[0].label,
                        d * 100.0
                    );
                }
                None => {
                    let _ = writeln!(out, "{} vs {}: n/a", s.label, fig.series[0].label);
                }
            }
        }
    }
    for f in &fig.failures {
        let _ = writeln!(out, "failed: {f}");
    }
    if let Some(h) = &fig.health {
        let _ = writeln!(out, "{h}");
    }
    out
}

/// Renders a DoD histogram figure: one row per dependent count
/// (1..=31, matching the paper's x-axis), one column per mix.
pub fn render_histogram(fig: &HistogramData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", fig.title);
    let _ = write!(out, "{:>4}", "#dep");
    for (name, _) in &fig.mixes {
        let _ = write!(out, " {:>8}", name.replace("Mix ", "Mix"));
    }
    let _ = writeln!(out);
    for dep in 1..=31usize {
        let _ = write!(out, "{dep:>4}");
        for (_, h) in &fig.mixes {
            let _ = write!(out, " {:>8}", h.bins().get(dep).copied().unwrap_or(0));
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:>4}", "mean");
    for (_, h) in &fig.mixes {
        let _ = write!(out, " {:>8.2}", h.mean());
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "pooled mean dependents: {:.3}", fig.pooled_mean());
    for f in &fig.failures {
        let _ = writeln!(out, "failed: {f}");
    }
    if let Some(h) = &fig.health {
        let _ = writeln!(out, "{h}");
    }
    out
}

/// Renders the DoD-accuracy table: one row per mix × configuration,
/// with the oracle cross-check (checked fills, bound violations, mean
/// exact dependents, mean counter error) and — for predictive
/// configurations — the §4.2 predictor's accuracy and coverage.
pub fn render_accuracy(acc: &AccuracyData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", acc.title);
    let _ = writeln!(
        out,
        "{:<8} {:<22} {:>8} {:>5} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "mix", "config", "checked", "viol", "exact", "ctr-err", "overshoot", "pred-acc", "coverage"
    );
    let ratio = |v: Option<f64>| match v {
        Some(v) => format!("{:.1}%", v * 100.0),
        None => "-".to_string(),
    };
    for r in &acc.rows {
        let o = &r.oracle;
        let _ = writeln!(
            out,
            "{:<8} {:<22} {:>8} {:>5} {:>8.2} {:>8.2} {:>9} {:>8} {:>8}",
            r.mix,
            r.config,
            o.checked,
            o.violations,
            o.mean_exact(),
            o.mean_counter_error(),
            o.counter_overshoot,
            ratio(r.pred_accuracy),
            ratio(r.pred_coverage),
        );
    }
    let _ = writeln!(
        out,
        "total bound violations: {} (exact dependents must stay within the static bound)",
        acc.total_violations()
    );
    for f in &acc.failures {
        let _ = writeln!(out, "failed: {f}");
    }
    if let Some(h) = &acc.health {
        let _ = writeln!(out, "{h}");
    }
    out
}

/// Renders Table 1 (the machine configuration).
pub fn render_table1(cfg: &MachineConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: Configuration of the Simulation Environment");
    let _ = writeln!(
        out,
        "Machine width      | {}-wide fetch, {}-wide issue, {}-wide commit",
        cfg.fetch_width, cfg.issue_width, cfg.commit_width
    );
    let _ = writeln!(
        out,
        "Window size        | Per Thread: 32 entry 1st level ROB, {} entry LSQ; Shared: {} entry IQ",
        cfg.lsq_size, cfg.iq_size
    );
    let _ = writeln!(
        out,
        "Physical registers | {} integer + {} floating-point",
        cfg.int_regs, cfg.fp_regs
    );
    let _ = writeln!(
        out,
        "L1 I-cache         | {} KB, {}-way, {} B line, {} cycle hit",
        cfg.l1i.size >> 10,
        cfg.l1i.assoc,
        cfg.l1i.line,
        cfg.l1i.hit_lat
    );
    let _ = writeln!(
        out,
        "L1 D-cache         | {} KB, {}-way, {} B line, {} cycle hit",
        cfg.l1d.size >> 10,
        cfg.l1d.assoc,
        cfg.l1d.line,
        cfg.l1d.hit_lat
    );
    let _ = writeln!(
        out,
        "L2 unified         | {} MB, {}-way, {} B line, {} cycle hit",
        cfg.l2.size >> 20,
        cfg.l2.assoc,
        cfg.l2.line,
        cfg.l2.hit_lat
    );
    let _ = writeln!(
        out,
        "Memory             | {} bit wide, {} cycle first chunk, {} cycle interchunk",
        cfg.mem.bus_bytes * 8,
        cfg.mem.first_chunk,
        cfg.mem.inter_chunk
    );
    let _ = writeln!(out, "Fetch policy       | {:?}", cfg.fetch_policy);
    out
}

/// Renders Table 2 (the simulated benchmark mixes).
pub fn render_table2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: Simulated Benchmark Mixes");
    for m in paper_mixes() {
        let _ = writeln!(
            out,
            "{:<7} | {:?} | {}",
            m.name,
            m.class,
            m.benchmarks.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    #[test]
    fn figure_rendering_includes_rows_and_average() {
        let fig = FigureData {
            title: "Test figure".into(),
            series: vec![
                Series {
                    label: "Baseline_32".into(),
                    points: vec![("Mix 1".into(), Some(0.5)), ("Mix 2".into(), Some(0.6))],
                    average: 0.55,
                },
                Series {
                    label: "R-ROB16".into(),
                    points: vec![("Mix 1".into(), Some(0.7)), ("Mix 2".into(), Some(0.8))],
                    average: 0.75,
                },
            ],
            failures: vec![],
            health: None,
        };
        let s = render_figure(&fig);
        assert!(s.contains("Mix 1"));
        assert!(s.contains("Average"));
        assert!(s.contains("R-ROB16 vs Baseline_32"));
        assert!(s.contains("+36.36%"));
        assert!(!s.contains("n/a"));
        assert!(!s.contains("failed:"));
    }

    #[test]
    fn failed_cells_render_as_na_with_notes() {
        let fig = FigureData {
            title: "Test figure".into(),
            series: vec![
                Series {
                    label: "Baseline_32".into(),
                    points: vec![("Mix 1".into(), Some(0.5)), ("Mix 2".into(), Some(0.6))],
                    average: 0.55,
                },
                Series {
                    label: "R-ROB16".into(),
                    points: vec![("Mix 1".into(), None), ("Mix 2".into(), None)],
                    average: f64::NAN,
                },
            ],
            failures: vec![
                "Mix 1 / R-ROB16: deadlock: no commit for 3000 cycles".into(),
                "Mix 2 / R-ROB16: deadlock: no commit for 3000 cycles".into(),
            ],
            health: None,
        };
        let s = render_figure(&fig);
        // Healthy cells still render; poisoned cells and the poisoned
        // average render as n/a; the improvement line degrades too.
        assert!(s.contains("0.5000"));
        assert!(s.contains("n/a"));
        assert!(s.contains("R-ROB16 vs Baseline_32: n/a"));
        assert_eq!(s.matches("failed:").count(), 2);
    }

    #[test]
    fn starved_baseline_renders_improvement_as_na() {
        // A baseline whose average is 0 (every thread starved) used to
        // make the improvement line claim "+0 %"; it must be n/a.
        let fig = FigureData {
            title: "Test figure".into(),
            series: vec![
                Series {
                    label: "Baseline_32".into(),
                    points: vec![("Mix 1".into(), Some(0.0))],
                    average: 0.0,
                },
                Series {
                    label: "R-ROB16".into(),
                    points: vec![("Mix 1".into(), Some(0.7))],
                    average: 0.7,
                },
            ],
            failures: vec![],
            health: None,
        };
        let s = render_figure(&fig);
        assert!(s.contains("R-ROB16 vs Baseline_32: n/a"), "{s}");
        assert!(
            !s.contains('%'),
            "no percentage against a starved baseline: {s}"
        );
    }

    #[test]
    fn histogram_rendering_has_31_rows() {
        let mut h = smtsim_pipeline::DodHistogram::default();
        h.record(3);
        h.record(3);
        let fig = HistogramData {
            title: "Hist".into(),
            mixes: vec![("Mix 1".into(), h)],
            failures: vec![],
            health: None,
        };
        let s = render_histogram(&fig);
        assert_eq!(
            s.lines()
                .filter(|l| l
                    .trim_start()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit()))
                .count(),
            31
        );
        assert!(s.contains("pooled mean"));
    }

    #[test]
    fn accuracy_rendering_shows_oracle_and_predictor_columns() {
        use crate::figures::{AccuracyData, AccuracyRow};
        use smtsim_pipeline::DodOracleStats;
        let acc = AccuracyData {
            title: "DoD accuracy".into(),
            rows: vec![
                AccuracyRow {
                    mix: "Mix 1".into(),
                    config: "2-Level R-ROB16".into(),
                    oracle: DodOracleStats {
                        checked: 100,
                        violations: 0,
                        exact_sum: 250,
                        counter_err_sum: 50,
                        counter_overshoot: 30,
                    },
                    pred_accuracy: None,
                    pred_coverage: None,
                },
                AccuracyRow {
                    mix: "Mix 1".into(),
                    config: "2-Level P-ROB5".into(),
                    oracle: DodOracleStats {
                        checked: 80,
                        violations: 1,
                        exact_sum: 160,
                        counter_err_sum: 0,
                        counter_overshoot: 0,
                    },
                    pred_accuracy: Some(0.875),
                    pred_coverage: Some(0.5),
                },
            ],
            failures: vec!["Mix 2 / 2-Level P-ROB5: deadlock".into()],
            health: None,
        };
        let s = render_accuracy(&acc);
        assert!(s.contains("2.50"), "mean exact: {s}");
        assert!(s.contains("0.50"), "mean counter error: {s}");
        assert!(s.contains("87.5%"), "prediction accuracy: {s}");
        assert!(s.contains("50.0%"), "coverage: {s}");
        // The reactive row has no predictor: both ratios render as '-'.
        let reactive = s.lines().find(|l| l.contains("R-ROB16")).unwrap();
        assert_eq!(reactive.matches(" -").count(), 2, "{reactive}");
        assert!(s.contains("total bound violations: 1"));
        assert_eq!(s.matches("failed:").count(), 1);
    }

    #[test]
    fn tables_render() {
        let t1 = render_table1(&MachineConfig::icpp08());
        assert!(t1.contains("8-wide fetch"));
        assert!(t1.contains("224 integer"));
        assert!(t1.contains("500 cycle first chunk"));
        let t2 = render_table2();
        assert!(t2.contains("Mix 11"));
        assert!(t2.contains("ammp, art, mgrid, apsi"));
    }
}
